"""Legacy setup shim.

The project is fully described by ``pyproject.toml``; this file exists only
so that editable installs work in environments whose packaging toolchain
predates PEP 660 editable wheels (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
