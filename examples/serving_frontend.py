#!/usr/bin/env python3
"""Multi-tenant serving: many clients, one dynamically batched engine.

This example puts the engine behind :class:`repro.QueryService` — the
inference-server-style frontend from ``repro/serve/``.  Client threads
submit individual range queries; the service coalesces them into batches
(flushing on whichever fires first: ``max_batch`` queries or a
``max_delay_ms`` deadline), drains each batch through
``SpaceOdyssey.query_batch(..., workers=K)`` on one dispatcher thread,
and routes every answer back through its per-request future.

The determinism contract: whatever the thread interleaving, each client
receives byte-for-byte the answers it would get by issuing the same
queries sequentially in arrival order.  ``tests/test_serve_differential.py``
enforces this with a differential oracle; here we just demonstrate it by
replaying one client's queries on a fresh fork.

Run it with:

    python examples/serving_frontend.py
"""

from __future__ import annotations

import threading
import time

from repro import Box, OdysseyConfig, SpaceOdyssey, build_benchmark_suite
from repro.serve import run_open_loop

N_CLIENTS = 4
QUERIES_PER_CLIENT = 24


def main() -> None:
    # 1. A shared engine over the synthetic neuroscience suite, with a
    #    sharded buffer pool so the batch workers stripe cache contention.
    suite = build_benchmark_suite(
        n_datasets=6,
        objects_per_dataset=4_000,
        seed=7,
        buffer_pages=0,
        buffer_shards=8,
    )
    odyssey = SpaceOdyssey(suite.catalog, OdysseyConfig())
    print(f"datasets: {len(suite.catalog)}, objects: {suite.catalog.total_objects():,}")

    # 2. Per-client query streams over the microcircuit centers.
    centers = suite.generator.microcircuit_centers
    def client_queries(index: int):
        for round_no in range(QUERIES_PER_CLIENT):
            center = centers[(index + round_no) % len(centers)]
            region = Box.cube(tuple(center), side=50.0 + 4 * index).clamp(
                suite.catalog.universe
            )
            yield region, [index % 6, (index + 2) % 6, (round_no) % 6]

    # 3. Serve: clients hammer the service concurrently; the dispatcher
    #    batches their arrivals and answers through per-request futures.
    answers: dict[int, list[int]] = {}
    recorded: dict[int, list] = {index: [] for index in range(N_CLIENTS)}
    with odyssey.serve(max_batch=16, max_delay_ms=3.0, workers=2) as service:

        def client(index: int) -> None:
            counts = []
            for box, ids in client_queries(index):
                submission = service.submit(box, ids)
                recorded[index].append((box, ids))
                counts.append(len(submission.result(timeout=60)))
            answers[index] = counts

        threads = [
            threading.Thread(target=client, args=(index,)) for index in range(N_CLIENTS)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start

    stats = service.stats
    total = N_CLIENTS * QUERIES_PER_CLIENT
    print(
        f"\nserved {stats.completed}/{total} queries from {N_CLIENTS} clients "
        f"in {elapsed * 1e3:.0f} ms"
    )
    print(
        f"batches: {stats.batches} (mean size {stats.mean_batch_size:.1f}, "
        f"max {stats.max_batch_size}) — flushes: {stats.size_flushes} size / "
        f"{stats.deadline_flushes} deadline / {stats.drain_flushes} drain"
    )

    # 4. The contract, demonstrated: client 0's answers equal a sequential
    #    replay of its exact queries on a fresh fork of the same data.
    replay = SpaceOdyssey(suite.fork().catalog, OdysseyConfig())
    replayed = [len(replay.query(box, ids)) for box, ids in recorded[0]]
    assert answers[0] == replayed, "served answers must match sequential replay"
    print("client 0's answers match a sequential replay — determinism holds")

    # 5. An open-loop load test: arrivals on a fixed wall-clock schedule
    #    (independent of completions), latency from scheduled arrival to
    #    future resolution — the methodology behind `repro.cli serve-bench`.
    workload = [query for index in range(N_CLIENTS) for query in client_queries(index)]
    with odyssey.serve(max_batch=16, max_delay_ms=3.0, workers=2) as service:
        report = run_open_loop(service, workload, rate_qps=300.0, n_clients=N_CLIENTS)
    print(
        f"\nopen loop @ {report.offered_qps:.0f} q/s offered: "
        f"sustained {report.sustained_qps:.0f} q/s, "
        f"p50 {report.latency.p50_ms:.1f} ms, p99 {report.latency.p99_ms:.1f} ms"
    )


if __name__ == "__main__":
    main()
