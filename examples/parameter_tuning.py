#!/usr/bin/env python3
"""Tuning Space Odyssey: refinement threshold, fan-out and merging policy.

The paper fixes ``rt = 4``, ``ppl = 64`` and ``mt = 2`` and explicitly lists
"a cost model that adapts the parameters at runtime" as future work.  This
example sweeps the two structural parameters and compares the paper's static
merging trigger with the cost-model-driven adaptive policy shipped as an
extension in this reproduction (``OdysseyConfig.adaptive_merge_threshold``).

For each configuration it reports, over the same exploration workload:

* total simulated processing time,
* how many partitions were materialised (index footprint),
* how many merge operations were performed and how much merge space used.

Run it with:

    python examples/parameter_tuning.py
"""

from __future__ import annotations

from repro import SpaceOdyssey
from repro.bench.runner import run_approach
from repro.core.config import OdysseyConfig
from repro.data.suite import build_benchmark_suite
from repro.storage.cost_model import DiskModel
from repro.workload import ClusteredRangeGenerator, CombinationGenerator, WorkloadBuilder


def build_environment():
    suite = build_benchmark_suite(
        n_datasets=8,
        objects_per_dataset=4_000,
        seed=5,
        buffer_pages=512,
        model=DiskModel(seek_time_s=1e-4),
    )
    ranges = ClusteredRangeGenerator(
        universe=suite.universe,
        volume_fraction=1e-4,
        seed=11,
        n_cluster_centers=6,
        cluster_centers=suite.generator.microcircuit_centers,
    )
    combinations = CombinationGenerator(
        dataset_ids=suite.catalog.dataset_ids(),
        datasets_per_query=4,
        distribution="zipf",
        seed=12,
    )
    workload = WorkloadBuilder(ranges, combinations).build(80)
    return suite, workload


def evaluate(suite, workload, label: str, config: OdysseyConfig) -> dict:
    fork = suite.fork()
    odyssey = SpaceOdyssey(fork.catalog, config)
    result = run_approach(odyssey, workload, fork.disk)
    summary = odyssey.summary()
    return {
        "label": label,
        "total_s": result.total_seconds,
        "partitions": summary.total_partitions,
        "depth": summary.max_tree_depth,
        "merge_ops": summary.merges_performed,
        "merge_pages": summary.merge_pages,
    }


def main() -> None:
    suite, workload = build_environment()
    rows = []

    # 1. Refinement threshold sweep (rt): lower = more eager refinement.
    for rt in (1.0, 4.0, 16.0):
        rows.append(
            evaluate(suite, workload, f"rt={rt:g}", OdysseyConfig(refinement_threshold=rt))
        )

    # 2. Partitions per level (ppl): 8 = plain Octree, 64 = the paper's choice.
    for ppl in (8, 64):
        rows.append(
            evaluate(suite, workload, f"ppl={ppl}", OdysseyConfig(partitions_per_level=ppl))
        )

    # 3. Merging policy: off, the paper's static trigger, and the adaptive
    #    cost-model extension (the paper's "open issue").
    rows.append(evaluate(suite, workload, "merging off", OdysseyConfig(enable_merging=False)))
    rows.append(evaluate(suite, workload, "merging static mt=2", OdysseyConfig()))
    rows.append(
        evaluate(
            suite,
            workload,
            "merging adaptive",
            OdysseyConfig(adaptive_merge_threshold=True),
        )
    )

    header = (
        f"{'configuration':<22}{'total sim. s':>14}{'partitions':>12}{'depth':>7}"
        f"{'merge ops':>11}{'merge pages':>13}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['label']:<22}{row['total_s']:>14.3f}{row['partitions']:>12}"
            f"{row['depth']:>7}{row['merge_ops']:>11}{row['merge_pages']:>13}"
        )

    print(
        "\nReading the table: a lower rt or higher ppl refines more aggressively "
        "(more partitions, deeper trees) which costs time up front and pays off "
        "only if the same areas keep being queried; the adaptive merging policy "
        "delays copies until the estimated break-even point is reached."
    )


if __name__ == "__main__":
    main()
