#!/usr/bin/env python3
"""Quickstart: explore several spatial datasets without indexing them first.

This example builds a small synthetic neuroscience benchmark (several raw,
*unindexed* datasets sharing one brain volume on a simulated disk), then
issues a handful of range queries through Space Odyssey and shows how the
engine adapts: partition trees appear only for the datasets that were
actually queried, hot areas get refined, and frequently co-queried dataset
combinations get merged on disk.

Run it with:

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Box, OdysseyConfig, SpaceOdyssey, build_benchmark_suite


def main() -> None:
    # 1. Create the raw datasets (10 datasets, one shared brain volume).
    #    In a real deployment these would be existing files on disk; here a
    #    synthetic generator stands in for the Human Brain Project data.
    suite = build_benchmark_suite(n_datasets=10, objects_per_dataset=3_000, seed=42)
    catalog = suite.catalog
    print(f"universe: {catalog.universe}")
    print(f"datasets: {len(catalog)}, total objects: {catalog.total_objects():,}, "
          f"raw pages on disk: {catalog.total_pages():,}")

    # 2. Open an exploration session.  No indexing happens here — that is the
    #    whole point: data-to-query time is (close to) zero.
    odyssey = SpaceOdyssey(catalog, OdysseyConfig())  # paper defaults: rt=4, ppl=64, mt=2

    # 3. A scientist inspects one brain region across three datasets.  We aim
    #    the query at a populated region (one of the synthetic microcircuits)
    #    the way a real exploration session would target interesting tissue.
    microcircuits = suite.generator.microcircuit_centers
    region = Box.cube(center=tuple(microcircuits[0]), side=60.0).clamp(catalog.universe)
    hits = odyssey.query(region, dataset_ids=[0, 2, 5])
    report = odyssey.last_report
    print(f"\nquery 1: {len(hits)} objects from datasets {report.requested}")
    print(f"  first touch initialised datasets: {report.initialized_datasets}")
    print(f"  partitions read: {report.partitions_read}, refinements: {report.refinements}")

    # 4. The same area keeps being interesting — Space Odyssey refines it and,
    #    because the same combination is queried repeatedly, merges the hot
    #    partitions of the three datasets into one sequentially readable file.
    for step in range(6):
        hits = odyssey.query(region, dataset_ids=[0, 2, 5])
    report = odyssey.last_report
    print(f"\nafter 7 queries on the same region:")
    print(f"  route for the last query: {report.route!r} "
          f"(partitions served from merge file: {report.partitions_from_merge})")

    # 5. A different area and a different combination: untouched datasets are
    #    initialised lazily, previously refined areas are unaffected.
    other_region = Box.cube(center=tuple(microcircuits[3]), side=60.0).clamp(catalog.universe)
    hits = odyssey.query(other_region, dataset_ids=[1, 7])
    print(f"\nquery in a new area over datasets (1, 7): {len(hits)} objects")

    # 6. Inspect the adaptive state and the simulated I/O cost.
    summary = odyssey.summary()
    print("\nexploration summary:")
    print(f"  queries executed:        {summary.queries_executed}")
    print(f"  datasets initialised:    {summary.datasets_initialized} of {len(catalog)}")
    print(f"  partitions materialised: {summary.total_partitions}")
    print(f"  deepest refinement:      level {summary.max_tree_depth}")
    print(f"  merge files:             {summary.merge_files} "
          f"({summary.merge_pages} pages, {summary.merges_performed} merge operations)")
    stats = suite.disk.stats
    print(f"  simulated disk time:     {stats.simulated_seconds:.3f} s "
          f"({stats.pages_read:,} pages read, {stats.pages_written:,} written, "
          f"{stats.seeks:,} seeks)")


if __name__ == "__main__":
    main()
