#!/usr/bin/env python3
"""Thread-parallel batched exploration: a worker-count sweep.

This example extends ``batched_exploration.py`` with the thread-parallel
executor (:meth:`SpaceOdyssey.query_batch` with ``workers=K``): the batch's
read-only phases — overlap resolution per combination group, page decode +
vectorized filtering per query — fan out across K threads over a sharded
buffer pool, while statistics, refinement and merging replay through a
single deterministic writer phase.  Results, reports, adaptive state and
on-disk bytes are bit-identical at every worker count; only the wall
clock changes.

Run it with:

    python examples/parallel_exploration.py
"""

from __future__ import annotations

import os
import time

from repro import Box, OdysseyConfig, SpaceOdyssey, build_benchmark_suite

WORKER_SWEEP = (1, 2, 4, 8)
BATCH_SIZE = 32


def main() -> None:
    # 1. The synthetic neuroscience benchmark on a disk whose buffer pool
    #    is split into 8 lock-striped shards — concurrent readers stripe
    #    their cache contention instead of serializing on one lock.
    suite = build_benchmark_suite(
        n_datasets=8,
        objects_per_dataset=8_000,
        seed=42,
        buffer_pages=0,
        buffer_shards=8,
    )
    catalog = suite.catalog
    print(f"datasets: {len(catalog)}, total objects: {catalog.total_objects():,}")
    print(f"host cpus: {os.cpu_count()}, buffer shards: 8, batch size: {BATCH_SIZE}")

    # 2. A dashboard-style sweep: many windows over a few combinations.
    microcircuits = suite.generator.microcircuit_centers
    queries = []
    for repeat in range(4):
        for center in microcircuits:
            region = Box.cube(tuple(center), side=55.0 + repeat * 5).clamp(
                catalog.universe
            )
            queries.append((region, [0, 2, 5]))
            queries.append((region, [1, 3, 7]))
    print(f"workload: {len(queries)} queries in batches of {BATCH_SIZE}")

    # 3. The sweep.  Every worker count runs on its own fork of the same
    #    data, converges identically (that is the executor's guarantee),
    #    and is timed on a second, steady-state pass.
    def run_batched(odyssey: SpaceOdyssey, workers: int) -> list[int]:
        counts: list[int] = []
        for start in range(0, len(queries), BATCH_SIZE):
            result = odyssey.query_batch(
                queries[start : start + BATCH_SIZE], workers=workers
            )
            counts.extend(result.hit_counts())
        return counts

    print(f"\n{'workers':>8}{'wall ms':>10}{'queries/s':>12}{'speedup':>9}")
    baseline_ms = None
    reference_counts = None
    for workers in WORKER_SWEEP:
        odyssey = SpaceOdyssey(suite.fork().catalog, OdysseyConfig())
        counts = run_batched(odyssey, workers)  # converge + warm
        if reference_counts is None:
            reference_counts = counts
        assert counts == reference_counts, "worker counts must not change answers"
        start = time.perf_counter()
        run_batched(odyssey, workers)
        elapsed_ms = (time.perf_counter() - start) * 1e3
        if baseline_ms is None:
            baseline_ms = elapsed_ms
        print(
            f"{workers:>8}{elapsed_ms:>10.1f}"
            f"{len(queries) / (elapsed_ms / 1e3):>12.0f}"
            f"{baseline_ms / elapsed_ms:>8.2f}x"
        )

    print(
        "\nanswers, reports and adaptive state are bit-identical at every "
        "worker count\n(the differential oracles in tests/ enforce this); "
        "speedups need real cores —\non a single-cpu host the sweep only "
        "shows the thread fan-out overhead."
    )


if __name__ == "__main__":
    main()
