#!/usr/bin/env python3
"""A neuroscience-style exploration session compared against the baselines.

This example reproduces the paper's motivating scenario end to end:

* ten datasets (subsets of neurons of the same brain volume) exist only as
  raw files;
* a scientist explores particular brain regions across changing subsets of
  the datasets, without knowing the areas or the combinations in advance;
* we measure (in simulated disk seconds) how long it takes to get answers
  with Space Odyssey versus first building a static index (uniform Grid and
  FLAT) and then querying it.

The output is a small "data-to-insight" table: after how much total time was
each of the first N answers available under each approach?

Run it with:

    python examples/neuroscience_exploration.py
"""

from __future__ import annotations

from repro import SpaceOdyssey
from repro.baselines.flat import FLATIndex
from repro.baselines.grid import GridIndex
from repro.baselines.strategies import AllInOne, OneForEach
from repro.bench.runner import run_approach
from repro.workload import ClusteredRangeGenerator, CombinationGenerator, WorkloadBuilder
from repro.data.suite import build_benchmark_suite
from repro.storage.cost_model import DiskModel

N_DATASETS = 10
OBJECTS_PER_DATASET = 4_000
N_QUERIES = 60
CHECKPOINTS = (1, 5, 10, 25, 50)


def build_workload(suite):
    """Clustered ranges over Zipf-distributed combinations of 4 datasets."""
    ranges = ClusteredRangeGenerator(
        universe=suite.universe,
        volume_fraction=1e-4,
        seed=2,
        n_cluster_centers=8,
        cluster_centers=suite.generator.microcircuit_centers,
    )
    combinations = CombinationGenerator(
        dataset_ids=suite.catalog.dataset_ids(),
        datasets_per_query=4,
        distribution="zipf",
        seed=3,
    )
    return WorkloadBuilder(ranges, combinations).build(
        N_QUERIES, description="neuroscience exploration session"
    )


def time_to_answer(result, n: int) -> float:
    """Total simulated time until the n-th query of the session is answered."""
    per_query = result.per_query_seconds()
    return result.indexing_seconds + sum(per_query[:n])


def main() -> None:
    model = DiskModel(seek_time_s=1e-4)
    master = build_benchmark_suite(
        n_datasets=N_DATASETS,
        objects_per_dataset=OBJECTS_PER_DATASET,
        seed=7,
        buffer_pages=512,
        model=model,
    )
    workload = build_workload(master)
    print(
        f"{len(master.catalog)} datasets x {OBJECTS_PER_DATASET:,} objects, "
        f"{len(workload)} queries over {workload.n_combinations_queried()} distinct combinations\n"
    )

    approaches = {
        "Odyssey": lambda suite: SpaceOdyssey(suite.catalog),
        "Grid-1fE": lambda suite: OneForEach(
            suite.catalog,
            lambda name: GridIndex(suite.disk, name, suite.universe, cells_per_dim=10),
            "Grid-1fE",
        ),
        "FLAT-Ain1": lambda suite: AllInOne(
            suite.catalog,
            lambda name: FLATIndex(suite.disk, name, suite.universe, build_memory_pages=64),
            "FLAT-Ain1",
        ),
    }

    results = {}
    for name, factory in approaches.items():
        suite = master.fork()
        approach = factory(suite)
        results[name] = run_approach(approach, workload, suite.disk)

    header = f"{'answer ready after (sim. s)':<30}" + "".join(f"{n:>12}" for n in CHECKPOINTS)
    print(header)
    print("-" * len(header))
    for name, result in results.items():
        row = f"{name + ' (index: %.2fs)' % result.indexing_seconds:<30}"
        for checkpoint in CHECKPOINTS:
            row += f"{time_to_answer(result, checkpoint):>12.3f}"
        print(row)

    odyssey = results["Odyssey"]
    for static_name in ("Grid-1fE", "FLAT-Ain1"):
        static = results[static_name]
        answered = odyssey.queries_answered_within(static.indexing_seconds)
        print(
            f"\nby the time {static_name} finished indexing "
            f"({static.indexing_seconds:.2f} s simulated), Space Odyssey had already "
            f"answered {answered} of {len(workload)} queries"
        )


if __name__ == "__main__":
    main()
