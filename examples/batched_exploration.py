#!/usr/bin/env python3
"""Batched exploration: execute groups of range queries in one call.

This example mirrors ``quickstart.py`` but drives Space Odyssey through its
batched execution engine (:meth:`SpaceOdyssey.query_batch`): a dashboard or
scripted sweep that has several exploration queries in hand submits them
together, and the engine amortises the work — partition overlap tests for
the whole batch run through vectorized NumPy kernels, page reads are
deduplicated across the batch, and object filtering is a columnar mask.
Results and the adaptive behaviour (refinement, statistics, merging) are
guaranteed identical to issuing the same queries one at a time.

Run it with:

    python examples/batched_exploration.py
"""

from __future__ import annotations

import time

from repro import Box, OdysseyConfig, SpaceOdyssey, build_benchmark_suite


def main() -> None:
    # 1. The same synthetic neuroscience benchmark as the quickstart: raw,
    #    unindexed datasets sharing one brain volume on a simulated disk.
    suite = build_benchmark_suite(n_datasets=10, objects_per_dataset=3_000, seed=42)
    catalog = suite.catalog
    print(f"universe: {catalog.universe}")
    print(f"datasets: {len(catalog)}, total objects: {catalog.total_objects():,}")

    # 2. A scripted sweep: inspect three microcircuits across a couple of
    #    dataset combinations, several times each (as a refreshing dashboard
    #    would).  All twelve queries are submitted as ONE batch.
    microcircuits = suite.generator.microcircuit_centers
    regions = [
        Box.cube(center=tuple(microcircuits[i]), side=60.0).clamp(catalog.universe)
        for i in (0, 3, 6)
    ]
    queries = []
    for _ in range(3):  # the sweep repeats - duplicate queries are fine
        for region in regions:
            queries.append((region, [0, 2, 5]))
            queries.append((region, [1, 7]))

    odyssey = SpaceOdyssey(catalog, OdysseyConfig())
    batch = odyssey.query_batch(queries)

    print(f"\nexecuted {len(batch)} queries in one batch")
    print(f"  hits per query:          {batch.hit_counts()}")
    print(f"  partition-group reads:   {batch.group_reads} "
          f"({batch.group_reads_deduped} served from the shared read set)")
    report = batch.reports[0]
    print(f"  first query initialised: datasets {report.initialized_datasets}")
    print(f"  last query's route:      {batch.reports[-1].route!r}")

    # 3. The adaptive state is exactly what sequential execution would have
    #    produced: trees only for queried datasets, refined hot areas, and
    #    merge files for the combination queried repeatedly.
    summary = odyssey.summary()
    print("\nexploration summary after the batch:")
    print(f"  queries executed:        {summary.queries_executed}")
    print(f"  datasets initialised:    {summary.datasets_initialized} of {len(catalog)}")
    print(f"  partitions materialised: {summary.total_partitions}")
    print(f"  merge files:             {summary.merge_files} "
          f"({summary.merges_performed} merge operations)")

    # 4. Steady-state wall-clock comparison on a fresh fork of the same
    #    data: the identical query list once sequentially, once batched.
    sequential = SpaceOdyssey(suite.fork().catalog, OdysseyConfig())
    for box, ids in queries:  # converge the adaptive state first
        sequential.query(box, ids)
    start = time.perf_counter()
    for box, ids in queries:
        sequential.query(box, ids)
    sequential_ms = (time.perf_counter() - start) * 1e3

    batched = SpaceOdyssey(suite.fork().catalog, OdysseyConfig())
    batched.query_batch(queries)  # converge identically
    start = time.perf_counter()
    batched.query_batch(queries)
    batched_ms = (time.perf_counter() - start) * 1e3
    print(f"\nsteady-state wall time for the {len(queries)}-query sweep:")
    print(f"  sequential: {sequential_ms:6.1f} ms")
    print(f"  batched:    {batched_ms:6.1f} ms "
          f"({sequential_ms / batched_ms:.1f}x faster)")


if __name__ == "__main__":
    main()
