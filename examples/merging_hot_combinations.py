#!/usr/bin/env python3
"""The effect of merging: co-locating partitions queried together.

Section 3.2 of the paper is about the second adaptation Space Odyssey
performs: when the *same combination* of (three or more) datasets keeps
being queried over the same areas, the partitions involved are copied into
an append-only merge file in which every dataset's objects are laid out
sequentially, so the combination can be read with (mostly) sequential I/O.

This example makes the mechanism visible:

* a hot 3-dataset combination is queried repeatedly over a few brain
  regions, with merging enabled and disabled;
* we print when the merge file appears, how queries are routed (exact /
  superset / subset / none), and the per-query simulated cost before and
  after merging.

Run it with:

    python examples/merging_hot_combinations.py
"""

from __future__ import annotations

from statistics import mean

from repro import Box, SpaceOdyssey
from repro.bench.approaches import odyssey_config_for
from repro.bench.scales import SCALES
from repro.data.suite import build_benchmark_suite


def run_session(suite, enable_merging: bool):
    """Query the same 3-dataset combination over 4 hot regions, 12 rounds."""
    scale = SCALES["small"]
    config = odyssey_config_for(scale, enable_merging=enable_merging)
    odyssey = SpaceOdyssey(suite.catalog, config)
    combination = [1, 4, 8]
    query_side = (suite.universe.volume() * 1e-4) ** (1 / 3)
    hot_regions = [
        Box.cube(tuple(center), query_side).clamp(suite.universe)
        for center in suite.generator.microcircuit_centers[:4]
    ]
    per_round_cost = []
    merge_created_at = None
    for round_index in range(12):
        before = suite.disk.stats_snapshot()
        for region in hot_regions:
            suite.disk.clear_cache()
            suite.disk.reset_head()
            odyssey.query(region, combination)
            if merge_created_at is None and odyssey.last_report.merged:
                merge_created_at = round_index
        delta = suite.disk.stats.delta_since(before)
        per_round_cost.append(delta.simulated_seconds)
    return odyssey, per_round_cost, merge_created_at


def main() -> None:
    master = build_benchmark_suite(
        n_datasets=10,
        objects_per_dataset=6_000,
        seed=21,
        buffer_pages=512,
        model=SCALES["small"].disk_model(),
    )

    print("=== merging enabled (paper configuration: mt = 2, |C| >= 3) ===")
    suite = master.fork()
    odyssey, with_merging, created_at = run_session(suite, enable_merging=True)
    summary = odyssey.summary()
    print(f"merge file first created during round {created_at}")
    print(f"merge files: {summary.merge_files}, pages: {summary.merge_pages}, "
          f"merge operations: {summary.merges_performed}")
    print(f"last query routing: {odyssey.last_report.route!r}, "
          f"partitions served from the merge file: {odyssey.last_report.partitions_from_merge}")

    print("\n=== merging disabled (ablation, as in Figure 5c) ===")
    suite = master.fork()
    _, without_merging, _ = run_session(suite, enable_merging=False)

    print("\nper-round simulated cost of the hot combination (seconds):")
    print(f"{'round':>6}{'with merging':>16}{'without merging':>18}")
    for index, (with_m, without_m) in enumerate(zip(with_merging, without_merging)):
        marker = "  <- merge file in use" if created_at is not None and index > created_at else ""
        print(f"{index:>6}{with_m:>16.4f}{without_m:>18.4f}{marker}")

    steady_with = mean(with_merging[-5:])
    steady_without = mean(without_merging[-5:])
    gain = (steady_without - steady_with) / steady_without * 100
    print(f"\nsteady-state gain from merging over the last 5 rounds: {gain:.1f}% "
          f"(the paper reports ~25% on average for merged queries)")


if __name__ == "__main__":
    main()
