"""LRU buffer pool.

The paper restricts every approach to the same main-memory footprint and
explicitly drops OS caches before each query, so the buffer pool here serves
two purposes: it models the bounded memory budget during index construction
(e.g. the Grid baseline buffers cells in memory and flushes when full) and it
gives the benchmark harness an explicit :meth:`BufferPool.clear` hook that
mirrors the paper's cache-dropping methodology.

The pool is write-through: pages written through the
:class:`~repro.storage.disk.Disk` are immediately persisted to the backend,
so eviction never loses data.
"""

from __future__ import annotations

from collections import OrderedDict


class BufferPool:
    """A bounded, least-recently-used cache of page bytes.

    Keys are ``(file_name, page_no)`` pairs.  A ``capacity_pages`` of zero
    disables caching entirely (every read goes to the simulated disk).
    """

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 0:
            raise ValueError("capacity_pages must be non-negative")
        self._capacity = capacity_pages
        self._pages: OrderedDict[tuple[str, int], bytes] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- core operations -------------------------------------------------- #

    def get(self, file_name: str, page_no: int) -> bytes | None:
        """Return the cached page or ``None``; refreshes LRU position on hit."""
        key = (file_name, page_no)
        data = self._pages.get(key)
        if data is None:
            self._misses += 1
            return None
        self._pages.move_to_end(key)
        self._hits += 1
        return data

    def put(self, file_name: str, page_no: int, data: bytes) -> None:
        """Insert or refresh a page, evicting the least recently used if full."""
        if self._capacity == 0:
            return
        key = (file_name, page_no)
        if key in self._pages:
            self._pages.move_to_end(key)
        self._pages[key] = data
        while len(self._pages) > self._capacity:
            self._pages.popitem(last=False)
            self._evictions += 1

    def invalidate_file(self, file_name: str) -> None:
        """Drop every cached page belonging to one file (used on delete)."""
        stale = [key for key in self._pages if key[0] == file_name]
        for key in stale:
            del self._pages[key]

    def clear(self) -> None:
        """Drop every cached page (the paper's per-query cache clearing)."""
        self._pages.clear()

    # -- introspection ---------------------------------------------------- #

    @property
    def capacity_pages(self) -> int:
        """Maximum number of pages the pool may hold."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, key: tuple[str, int]) -> bool:
        return key in self._pages

    @property
    def hits(self) -> int:
        """Number of successful lookups since construction."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of failed lookups since construction."""
        return self._misses

    @property
    def evictions(self) -> int:
        """Number of pages evicted due to capacity pressure."""
        return self._evictions
