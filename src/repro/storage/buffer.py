"""LRU buffer pool.

The paper restricts every approach to the same main-memory footprint and
explicitly drops OS caches before each query, so the buffer pool here serves
two purposes: it models the bounded memory budget during index construction
(e.g. the Grid baseline buffers cells in memory and flushes when full) and it
gives the benchmark harness an explicit :meth:`BufferPool.clear` hook that
mirrors the paper's cache-dropping methodology.

The pool is write-through: pages written through the
:class:`~repro.storage.disk.Disk` are immediately persisted to the backend,
so eviction never loses data.

Decoded-array layer
-------------------
On top of the byte cache the pool keeps a *decoded-array* layer: the
structured-array decoding of a cached page, keyed exactly like the bytes.
It is strictly a CPU-work cache — a decoded entry exists only while its
byte page is resident, so it never changes which disk accesses happen or
how they are charged; it only lets hot partitions skip re-running
``np.frombuffer`` page decoding.  Entries are dropped together with their
byte page (eviction, overwrite, file invalidation, :meth:`clear`).

Each decoded entry additionally remembers the *exact bytes object* it was
decoded from, and a lookup only hits when the caller presents that same
object (``is`` identity, not equality).  This closes a concurrency window:
a reader that fetched page bytes, lost the CPU while the page was
overwritten and re-decoded by another thread, and then asked the decoded
layer, must not be served the decoding of the *newer* bytes.  Identity
also keeps epoch-snapshot readers honest — pre-images retained by the
MVCC layer (:mod:`repro.core.epoch`) are distinct bytes objects, so they
can never alias a decoding of the live page.

Lock ordering
-------------
The pool sits strictly *below* the :class:`~repro.storage.disk.Disk` in
the lock hierarchy: the disk calls into the pool (``invalidate_file``
runs under the disk lock, byte-layer get/put run under it too) but no
pool method ever calls back into the disk, so disk-lock → shard-lock is
the only nesting that occurs and a cycle is impossible.  Within the
sharded pool, the multi-shard operations (``invalidate_file``, ``clear``,
``__len__``, ``shard_counters``) all acquire shard locks one at a time in
ascending index order and never hold two shard locks at once — so they
cannot deadlock against each other or against single-shard operations.

Sharding
--------
:class:`ShardedBufferPool` splits the page budget over N independent
:class:`BufferPool` shards, each guarded by its own lock, with pages routed
to shards by a deterministic hash of ``(file_name, page_no)``.  It exists
for the thread-parallel batch executor (:mod:`repro.core.parallel`): with
lock striping, concurrent readers touching different pages never contend
on one global cache lock.  Routing uses ``zlib.crc32`` rather than Python's
``hash`` so shard assignment — and therefore eviction behaviour and the
simulated I/O trace — is reproducible run-to-run regardless of
``PYTHONHASHSEED``.  Note that per-shard LRU is not globally identical to
one big LRU: a sharded pool of the same total capacity may evict different
pages than ``BufferPool`` would, so differential tests always compare
engines running the *same* pool configuration.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass, fields
from collections import OrderedDict
from typing import Any


@dataclass(frozen=True, slots=True)
class BufferCounters:
    """A point-in-time snapshot of the pool's hit/miss/eviction counters.

    ``decoded_*`` describe the decoded-array layer; the plain fields
    describe the byte cache.  Snapshots are cumulative since pool
    construction; use :meth:`delta_since` for per-query attribution.

    Decoded entries leave the cache by exactly two counted paths:
    ``decoded_evictions`` (dropped with an LRU-evicted byte page) and
    ``decoded_invalidations`` (dropped because their file was deleted,
    e.g. a merge file being replaced).  :meth:`BufferPool.clear` — the
    paper's explicit cache-dropping protocol — is deliberately uncounted
    on both layers, exactly like byte-page drops on ``clear``.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    decoded_hits: int = 0
    decoded_misses: int = 0
    decoded_evictions: int = 0
    decoded_invalidations: int = 0

    def delta_since(self, earlier: "BufferCounters") -> "BufferCounters":
        """Counter increments between ``earlier`` and this snapshot."""
        return BufferCounters(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    def __add__(self, other: "BufferCounters") -> "BufferCounters":
        return BufferCounters(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )


class BufferPool:
    """A bounded, least-recently-used cache of page bytes.

    Keys are ``(file_name, page_no)`` pairs.  A ``capacity_pages`` of zero
    disables caching entirely (every read goes to the simulated disk).
    """

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 0:
            raise ValueError("capacity_pages must be non-negative")
        self._capacity = capacity_pages
        self._pages: OrderedDict[tuple[str, int], bytes] = OrderedDict()
        # Decoded layer: key -> (source bytes object, decoded value).  The
        # bytes object is kept so lookups can verify identity (see module
        # docstring) — it is the same object as self._pages[key] at insert
        # time, so this holds no extra page memory.
        self._decoded: dict[tuple[str, int], tuple[bytes, Any]] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._decoded_hits = 0
        self._decoded_misses = 0
        self._decoded_evictions = 0
        self._decoded_invalidations = 0

    # -- core operations -------------------------------------------------- #

    def get(self, file_name: str, page_no: int) -> bytes | None:
        """Return the cached page or ``None``; refreshes LRU position on hit."""
        key = (file_name, page_no)
        data = self._pages.get(key)
        if data is None:
            self._misses += 1
            return None
        self._pages.move_to_end(key)
        self._hits += 1
        return data

    def put(self, file_name: str, page_no: int, data: bytes) -> None:
        """Insert or refresh a page, evicting the least recently used if full."""
        if self._capacity == 0:
            return
        key = (file_name, page_no)
        if key in self._pages:
            self._pages.move_to_end(key)
        # Any overwrite OR insert invalidates a decoding of older bytes.
        # For fresh inserts the pop is normally a no-op ("decoded only
        # while resident"), but under concurrency a put_decoded can race
        # with eviction or file invalidation and orphan an entry; popping
        # here guarantees such an orphan can never serve a stale decode
        # after the page is re-cached (possibly with new bytes).
        self._decoded.pop(key, None)
        self._pages[key] = data
        while len(self._pages) > self._capacity:
            victim, _ = self._pages.popitem(last=False)
            self._evictions += 1
            if self._decoded.pop(victim, None) is not None:
                self._decoded_evictions += 1

    def get_decoded(self, file_name: str, page_no: int, page_bytes: bytes) -> Any | None:
        """The cached decoding of exactly ``page_bytes``, or ``None``.

        The caller passes the bytes object it is about to decode; the
        lookup hits only when the cached entry was decoded from that same
        object (identity comparison), so a decoding of different bytes —
        a concurrent overwrite, or an MVCC pre-image — can never be
        served by mistake.
        """
        entry = self._decoded.get((file_name, page_no))
        if entry is None or entry[0] is not page_bytes:
            self._decoded_misses += 1
            return None
        self._decoded_hits += 1
        return entry[1]

    def put_decoded(
        self, file_name: str, page_no: int, page_bytes: bytes, value: Any
    ) -> None:
        """Attach the decoding of ``page_bytes`` to its byte-cached page.

        Silently ignored unless the resident byte page *is* ``page_bytes``
        (identity, covering the not-resident and capacity-zero cases): the
        decoded layer never outlives — or mismatches — the bytes it was
        decoded from, so every byte-invalidation path also covers it.
        """
        key = (file_name, page_no)
        if self._pages.get(key) is page_bytes:
            self._decoded[key] = (page_bytes, value)

    def invalidate_file(self, file_name: str) -> None:
        """Drop every cached page belonging to one file (used on delete).

        Decoded-array entries dropped here count as
        ``decoded_invalidations`` (the eviction path counts its drops as
        ``decoded_evictions``), so every decoded drop outside
        :meth:`clear` is accounted for by exactly one counter.
        """
        stale = [key for key in self._pages if key[0] == file_name]
        for key in stale:
            del self._pages[key]
            if self._decoded.pop(key, None) is not None:
                self._decoded_invalidations += 1

    def invalidate_page(self, file_name: str, page_no: int) -> None:
        """Drop one page from both layers (used when its bytes become
        unreliable: an in-place overwrite is about to change them, or a
        re-read after a write failed).  Decoded drops count as
        ``decoded_invalidations``, same as :meth:`invalidate_file`.
        """
        key = (file_name, page_no)
        self._pages.pop(key, None)
        if self._decoded.pop(key, None) is not None:
            self._decoded_invalidations += 1

    def clear(self) -> None:
        """Drop every cached page (the paper's per-query cache clearing)."""
        self._pages.clear()
        self._decoded.clear()

    # -- introspection ---------------------------------------------------- #

    @property
    def capacity_pages(self) -> int:
        """Maximum number of pages the pool may hold."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, key: tuple[str, int]) -> bool:
        return key in self._pages

    @property
    def hits(self) -> int:
        """Number of successful lookups since construction."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of failed lookups since construction."""
        return self._misses

    @property
    def evictions(self) -> int:
        """Number of pages evicted due to capacity pressure."""
        return self._evictions

    @property
    def decoded_hits(self) -> int:
        """Decoded-array lookups served from the cache."""
        return self._decoded_hits

    @property
    def decoded_misses(self) -> int:
        """Decoded-array lookups that had to decode page bytes."""
        return self._decoded_misses

    @property
    def decoded_evictions(self) -> int:
        """Decoded arrays dropped because their byte page was evicted."""
        return self._decoded_evictions

    @property
    def decoded_invalidations(self) -> int:
        """Decoded arrays dropped because their file was invalidated."""
        return self._decoded_invalidations

    def counters(self) -> BufferCounters:
        """A snapshot of all counters (byte layer and decoded layer)."""
        return BufferCounters(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            decoded_hits=self._decoded_hits,
            decoded_misses=self._decoded_misses,
            decoded_evictions=self._decoded_evictions,
            decoded_invalidations=self._decoded_invalidations,
        )


class ShardedBufferPool:
    """N lock-striped :class:`BufferPool` shards behind the pool interface.

    The page budget is distributed as evenly as possible over the shards
    (the first ``capacity_pages % n_shards`` shards get one extra page);
    every page deterministically belongs to one shard, so all
    invalidation, counting and LRU bookkeeping for it happens under that
    shard's lock only.  The facade exposes the same surface as
    :class:`BufferPool` — byte layer, decoded-array layer, aggregated
    counters — so the :class:`~repro.storage.disk.Disk` and
    :class:`~repro.storage.pagedfile.PagedFile` use either interchangeably.

    The effective shard count is clamped to ``min(n_shards,
    capacity_pages)`` (and to one shard for the capacity-zero pool):
    splitting fewer pages than shards would leave the tail shards with
    capacity 0, and a zero-capacity :class:`BufferPool` never caches —
    pages routed there would silently miss forever.  Clamping guarantees
    every shard holds at least one page, trading a little lock striping
    for never disabling caching by accident; :attr:`n_shards` reports the
    effective count.
    """

    def __init__(self, capacity_pages: int, n_shards: int = 8) -> None:
        if capacity_pages < 0:
            raise ValueError("capacity_pages must be non-negative")
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self._capacity = capacity_pages
        n_shards = max(1, min(n_shards, capacity_pages))
        base, extra = divmod(capacity_pages, n_shards)
        self._shards = [
            BufferPool(base + (1 if index < extra else 0)) for index in range(n_shards)
        ]
        self._locks = [threading.Lock() for _ in range(n_shards)]

    # -- routing ----------------------------------------------------------- #

    def shard_of(self, file_name: str, page_no: int) -> int:
        """The shard index one page belongs to (deterministic run-to-run)."""
        return (zlib.crc32(file_name.encode()) + page_no * 2654435761) % len(
            self._shards
        )

    # -- core operations --------------------------------------------------- #

    def get(self, file_name: str, page_no: int) -> bytes | None:
        """Return the cached page or ``None``; refreshes LRU position on hit."""
        index = self.shard_of(file_name, page_no)
        with self._locks[index]:
            return self._shards[index].get(file_name, page_no)

    def put(self, file_name: str, page_no: int, data: bytes) -> None:
        """Insert or refresh a page in its shard, evicting LRU pages if full."""
        index = self.shard_of(file_name, page_no)
        with self._locks[index]:
            self._shards[index].put(file_name, page_no, data)

    def get_decoded(self, file_name: str, page_no: int, page_bytes: bytes) -> Any | None:
        """The cached decoding of exactly ``page_bytes``, or ``None``."""
        index = self.shard_of(file_name, page_no)
        with self._locks[index]:
            return self._shards[index].get_decoded(file_name, page_no, page_bytes)

    def put_decoded(
        self, file_name: str, page_no: int, page_bytes: bytes, value: Any
    ) -> None:
        """Attach the decoding of ``page_bytes`` to its shard's byte page."""
        index = self.shard_of(file_name, page_no)
        with self._locks[index]:
            self._shards[index].put_decoded(file_name, page_no, page_bytes, value)

    def invalidate_file(self, file_name: str) -> None:
        """Drop every cached page of one file, across all shards.

        Shard locks are taken one at a time in ascending index order —
        never two at once — matching ``clear``/``__len__``/
        ``shard_counters`` (see the module docstring's lock-ordering
        section), so concurrent readers iterating the same shards cannot
        deadlock against an invalidation.
        """
        for lock, shard in zip(self._locks, self._shards):
            with lock:
                shard.invalidate_file(file_name)

    def invalidate_page(self, file_name: str, page_no: int) -> None:
        """Drop one page from both layers of its shard."""
        index = self.shard_of(file_name, page_no)
        with self._locks[index]:
            self._shards[index].invalidate_page(file_name, page_no)

    def clear(self) -> None:
        """Drop every cached page in every shard."""
        for lock, shard in zip(self._locks, self._shards):
            with lock:
                shard.clear()

    # -- introspection ----------------------------------------------------- #

    @property
    def capacity_pages(self) -> int:
        """Total page budget across all shards."""
        return self._capacity

    @property
    def n_shards(self) -> int:
        """Number of lock-striped shards."""
        return len(self._shards)

    def __len__(self) -> int:
        # Like every other facade method, read shard state only under the
        # shard's lock — an unlocked read races with concurrent mutation.
        # Locks are acquired one at a time in ascending index order (the
        # same discipline as invalidate_file/clear/shard_counters), and
        # never nested, so introspection can run concurrently with an
        # invalidation without any deadlock surface.
        total = 0
        for lock, shard in zip(self._locks, self._shards):
            with lock:
                total += len(shard)
        return total

    def __contains__(self, key: tuple[str, int]) -> bool:
        # Single-shard lookup under that shard's lock only; nests under
        # nothing and holds nothing while returning.
        file_name, page_no = key
        index = self.shard_of(file_name, page_no)
        with self._locks[index]:
            return key in self._shards[index]

    @property
    def hits(self) -> int:
        """Successful byte-layer lookups, summed over shards."""
        return sum(shard.hits for shard in self._shards)

    @property
    def misses(self) -> int:
        """Failed byte-layer lookups, summed over shards."""
        return sum(shard.misses for shard in self._shards)

    @property
    def evictions(self) -> int:
        """Pages evicted under capacity pressure, summed over shards."""
        return sum(shard.evictions for shard in self._shards)

    @property
    def decoded_hits(self) -> int:
        """Decoded-array lookups served from the cache, summed over shards."""
        return sum(shard.decoded_hits for shard in self._shards)

    @property
    def decoded_misses(self) -> int:
        """Decoded-array lookups that had to decode, summed over shards."""
        return sum(shard.decoded_misses for shard in self._shards)

    @property
    def decoded_evictions(self) -> int:
        """Decoded arrays dropped with their byte page, summed over shards."""
        return sum(shard.decoded_evictions for shard in self._shards)

    @property
    def decoded_invalidations(self) -> int:
        """Decoded arrays dropped by file invalidation, summed over shards."""
        return sum(shard.decoded_invalidations for shard in self._shards)

    def shard_counters(self) -> list[BufferCounters]:
        """Per-shard counter snapshots (each taken under its shard's lock)."""
        snapshots = []
        for lock, shard in zip(self._locks, self._shards):
            with lock:
                snapshots.append(shard.counters())
        return snapshots

    def counters(self) -> BufferCounters:
        """An aggregated snapshot of all shards' counters."""
        total = BufferCounters()
        for snapshot in self.shard_counters():
            total = total + snapshot
        return total
