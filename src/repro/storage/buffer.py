"""LRU buffer pool.

The paper restricts every approach to the same main-memory footprint and
explicitly drops OS caches before each query, so the buffer pool here serves
two purposes: it models the bounded memory budget during index construction
(e.g. the Grid baseline buffers cells in memory and flushes when full) and it
gives the benchmark harness an explicit :meth:`BufferPool.clear` hook that
mirrors the paper's cache-dropping methodology.

The pool is write-through: pages written through the
:class:`~repro.storage.disk.Disk` are immediately persisted to the backend,
so eviction never loses data.

Decoded-array layer
-------------------
On top of the byte cache the pool keeps a *decoded-array* layer: the
structured-array decoding of a cached page, keyed exactly like the bytes.
It is strictly a CPU-work cache — a decoded entry exists only while its
byte page is resident, so it never changes which disk accesses happen or
how they are charged; it only lets hot partitions skip re-running
``np.frombuffer`` page decoding.  Entries are dropped together with their
byte page (eviction, overwrite, file invalidation, :meth:`clear`).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from collections import OrderedDict
from typing import Any


@dataclass(frozen=True, slots=True)
class BufferCounters:
    """A point-in-time snapshot of the pool's hit/miss/eviction counters.

    ``decoded_*`` describe the decoded-array layer; the plain fields
    describe the byte cache.  Snapshots are cumulative since pool
    construction; use :meth:`delta_since` for per-query attribution.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    decoded_hits: int = 0
    decoded_misses: int = 0
    decoded_evictions: int = 0

    def delta_since(self, earlier: "BufferCounters") -> "BufferCounters":
        """Counter increments between ``earlier`` and this snapshot."""
        return BufferCounters(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    def __add__(self, other: "BufferCounters") -> "BufferCounters":
        return BufferCounters(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )


class BufferPool:
    """A bounded, least-recently-used cache of page bytes.

    Keys are ``(file_name, page_no)`` pairs.  A ``capacity_pages`` of zero
    disables caching entirely (every read goes to the simulated disk).
    """

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 0:
            raise ValueError("capacity_pages must be non-negative")
        self._capacity = capacity_pages
        self._pages: OrderedDict[tuple[str, int], bytes] = OrderedDict()
        self._decoded: dict[tuple[str, int], Any] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._decoded_hits = 0
        self._decoded_misses = 0
        self._decoded_evictions = 0

    # -- core operations -------------------------------------------------- #

    def get(self, file_name: str, page_no: int) -> bytes | None:
        """Return the cached page or ``None``; refreshes LRU position on hit."""
        key = (file_name, page_no)
        data = self._pages.get(key)
        if data is None:
            self._misses += 1
            return None
        self._pages.move_to_end(key)
        self._hits += 1
        return data

    def put(self, file_name: str, page_no: int, data: bytes) -> None:
        """Insert or refresh a page, evicting the least recently used if full."""
        if self._capacity == 0:
            return
        key = (file_name, page_no)
        if key in self._pages:
            self._pages.move_to_end(key)
            # Overwrites invalidate any stale decoding of the old bytes.
            self._decoded.pop(key, None)
        self._pages[key] = data
        while len(self._pages) > self._capacity:
            victim, _ = self._pages.popitem(last=False)
            self._evictions += 1
            if self._decoded.pop(victim, None) is not None:
                self._decoded_evictions += 1

    def get_decoded(self, file_name: str, page_no: int) -> Any | None:
        """The cached decoded array of one page, or ``None``."""
        value = self._decoded.get((file_name, page_no))
        if value is None:
            self._decoded_misses += 1
            return None
        self._decoded_hits += 1
        return value

    def put_decoded(self, file_name: str, page_no: int, value: Any) -> None:
        """Attach a decoded array to a page that is currently byte-cached.

        Silently ignored when the byte page is not resident (including the
        capacity-zero pool): the decoded layer never outlives the bytes it
        was decoded from, so every byte-invalidation path also covers it.
        """
        key = (file_name, page_no)
        if key in self._pages:
            self._decoded[key] = value

    def invalidate_file(self, file_name: str) -> None:
        """Drop every cached page belonging to one file (used on delete)."""
        stale = [key for key in self._pages if key[0] == file_name]
        for key in stale:
            del self._pages[key]
            self._decoded.pop(key, None)

    def clear(self) -> None:
        """Drop every cached page (the paper's per-query cache clearing)."""
        self._pages.clear()
        self._decoded.clear()

    # -- introspection ---------------------------------------------------- #

    @property
    def capacity_pages(self) -> int:
        """Maximum number of pages the pool may hold."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, key: tuple[str, int]) -> bool:
        return key in self._pages

    @property
    def hits(self) -> int:
        """Number of successful lookups since construction."""
        return self._hits

    @property
    def misses(self) -> int:
        """Number of failed lookups since construction."""
        return self._misses

    @property
    def evictions(self) -> int:
        """Number of pages evicted due to capacity pressure."""
        return self._evictions

    @property
    def decoded_hits(self) -> int:
        """Decoded-array lookups served from the cache."""
        return self._decoded_hits

    @property
    def decoded_misses(self) -> int:
        """Decoded-array lookups that had to decode page bytes."""
        return self._decoded_misses

    @property
    def decoded_evictions(self) -> int:
        """Decoded arrays dropped because their byte page was evicted."""
        return self._decoded_evictions

    def counters(self) -> BufferCounters:
        """A snapshot of all counters (byte layer and decoded layer)."""
        return BufferCounters(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            decoded_hits=self._decoded_hits,
            decoded_misses=self._decoded_misses,
            decoded_evictions=self._decoded_evictions,
        )
