"""Deterministic fault injection for storage backends.

:class:`FaultInjectingBackend` wraps any :class:`~repro.storage.backend.
StorageBackend` and perturbs its operations according to a seeded
:class:`FaultPlan`:

* **transient errors** — reads/writes raise
  :class:`~repro.storage.errors.TransientIOError` *before* touching the
  inner backend, so the stored bytes are intact and a retry succeeds;
* **bit-flip read corruption** — a read returns the stored page with one
  bit flipped (the store itself is untouched, modelling in-flight
  corruption on the bus: a re-read returns good bytes);
* **torn writes** — an in-place write persists only a random prefix of
  the new page (the tail keeps the old bytes) and then raises
  :class:`~repro.storage.errors.TransientIOError`.  A retry overwrites
  the whole page, so torn writes are invisible under retries — unless the
  process dies first, which is exactly what the checksum trailer catches;
* **crashes** — after a scheduled number of mutations, or at a named
  crash point (:meth:`FaultInjectingBackend.maybe_crash`), the backend
  raises :class:`~repro.storage.errors.SimulatedCrash`.  A crashing
  in-place write may first persist a torn page (``torn_crash=True``),
  modelling power loss mid-sector.

Everything is driven by one ``random.Random(seed)``: the same plan over
the same operation sequence injects the same faults, so every failing
scenario is replayable from its seed.  Faults only ever apply to page
*data* operations — ``exists``/``num_pages``/``list_files`` metadata
stays reliable, keeping the fault model about I/O, not catalog loss.

:meth:`FaultInjectingBackend.disarm` turns all injection off (counters
are kept); recovery tests disarm after the simulated crash, exactly like
restarting the process on healthy hardware.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, fields

from repro.storage.backend import StorageBackend
from repro.storage.errors import SimulatedCrash, TransientIOError


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A seeded schedule of faults to inject.

    Rates are independent per-operation probabilities in ``[0, 1]``.
    ``crash_after_mutations=N`` crashes on the Nth mutating operation
    (1-based; writes and appends count); ``crash_points`` arms named
    sites checked via :meth:`FaultInjectingBackend.maybe_crash`.
    """

    seed: int = 0
    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    corrupt_read_rate: float = 0.0
    torn_write_rate: float = 0.0
    crash_after_mutations: int | None = None
    crash_points: frozenset[str] = field(default_factory=frozenset)
    torn_crash: bool = True

    def __post_init__(self) -> None:
        for name in (
            "read_error_rate",
            "write_error_rate",
            "corrupt_read_rate",
            "torn_write_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.crash_after_mutations is not None and self.crash_after_mutations < 1:
            raise ValueError("crash_after_mutations is 1-based and must be >= 1")


@dataclass(frozen=True, slots=True)
class FaultCounters:
    """How many faults of each kind have been injected so far."""

    transient_read_errors: int = 0
    transient_write_errors: int = 0
    reads_corrupted: int = 0
    torn_writes: int = 0
    crashes: int = 0

    def delta_since(self, earlier: "FaultCounters") -> "FaultCounters":
        return FaultCounters(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )


class FaultInjectingBackend(StorageBackend):
    """A composable backend wrapper that injects deterministic faults."""

    def __init__(self, inner: StorageBackend, plan: FaultPlan | None = None) -> None:
        super().__init__(inner.page_size)
        self._inner = inner
        self._plan = plan or FaultPlan()
        self._rng = random.Random(self._plan.seed)
        self._armed = True
        self._mutations = 0
        self._transient_read_errors = 0
        self._transient_write_errors = 0
        self._reads_corrupted = 0
        self._torn_writes = 0
        self._crashes = 0

    # -- introspection ---------------------------------------------------- #

    @property
    def inner(self) -> StorageBackend:
        """The wrapped backend holding the actual bytes."""
        return self._inner

    @property
    def plan(self) -> FaultPlan:
        """The fault schedule in force."""
        return self._plan

    @property
    def armed(self) -> bool:
        """Whether faults are currently being injected."""
        return self._armed

    @property
    def mutations_seen(self) -> int:
        """Mutating operations (writes + appends) observed so far."""
        return self._mutations

    def counters(self) -> FaultCounters:
        """A snapshot of the injected-fault counters."""
        return FaultCounters(
            transient_read_errors=self._transient_read_errors,
            transient_write_errors=self._transient_write_errors,
            reads_corrupted=self._reads_corrupted,
            torn_writes=self._torn_writes,
            crashes=self._crashes,
        )

    def disarm(self) -> None:
        """Stop injecting faults (simulates restarting on healthy hardware)."""
        self._armed = False

    def rearm(self) -> None:
        """Resume injecting faults from the plan."""
        self._armed = True

    # -- crash machinery -------------------------------------------------- #

    def maybe_crash(self, point: str) -> None:
        """Crash if the named point is armed in the plan.

        Call sites thread this through components that want crash
        coverage at places the backend cannot see (e.g. the journal's
        write-temp/fsync/rename steps).
        """
        if self._armed and point in self._plan.crash_points:
            self._crashes += 1
            raise SimulatedCrash(point)

    def _count_mutation(self) -> bool:
        """Advance the mutation counter; True when this op must crash."""
        self._mutations += 1
        return self._mutations == self._plan.crash_after_mutations

    def _roll(self, rate: float) -> bool:
        return rate > 0.0 and self._rng.random() < rate

    def _flip_bit(self, data: bytes) -> bytes:
        corrupted = bytearray(data)
        bit = self._rng.randrange(len(corrupted) * 8)
        corrupted[bit // 8] ^= 1 << (bit % 8)
        return bytes(corrupted)

    def _torn(self, name: str, page_no: int | None, data: bytes) -> bytes:
        """The bytes a torn write would persist: new prefix, old tail."""
        cut = self._rng.randrange(1, max(2, len(data)))
        if page_no is None:  # torn append: the tail was never written
            return data[:cut]
        old = self._inner.read(name, page_no)
        return data[:cut] + old[cut:]

    # -- file lifecycle (metadata stays reliable) -------------------------- #

    def create(self, name: str) -> None:
        self._inner.create(name)

    def delete(self, name: str) -> None:
        self._inner.delete(name)

    def exists(self, name: str) -> bool:
        return self._inner.exists(name)

    def list_files(self) -> list[str]:
        return self._inner.list_files()

    def num_pages(self, name: str) -> int:
        return self._inner.num_pages(name)

    def clone(self) -> "FaultInjectingBackend":
        """A clone of the stored bytes under a fresh copy of the plan.

        The clone's RNG restarts from the plan seed: two clones fed the
        same operation sequence see the same faults.
        """
        return FaultInjectingBackend(self._inner.clone(), self._plan)

    # -- page access ------------------------------------------------------ #

    def read(self, name: str, page_no: int) -> bytes:
        if self._armed and self._roll(self._plan.read_error_rate):
            self._transient_read_errors += 1
            raise TransientIOError(f"injected read fault: {name!r} page {page_no}")
        data = self._inner.read(name, page_no)
        if self._armed and self._roll(self._plan.corrupt_read_rate):
            self._reads_corrupted += 1
            data = self._flip_bit(data)
        return data

    def write(self, name: str, page_no: int, data: bytes) -> None:
        data = self._check_page_data(data)
        if self._armed:
            if self._count_mutation():
                self._crashes += 1
                if self._plan.torn_crash:
                    self._inner.write(name, page_no, self._torn(name, page_no, data))
                raise SimulatedCrash(f"write:{name}:{page_no}")
            if self._roll(self._plan.write_error_rate):
                self._transient_write_errors += 1
                raise TransientIOError(f"injected write fault: {name!r} page {page_no}")
            if self._roll(self._plan.torn_write_rate):
                self._torn_writes += 1
                self._inner.write(name, page_no, self._torn(name, page_no, data))
                raise TransientIOError(f"injected torn write: {name!r} page {page_no}")
        self._inner.write(name, page_no, data)

    def append(self, name: str, data: bytes) -> int:
        data = self._check_page_data(data)
        if self._armed:
            if self._count_mutation():
                self._crashes += 1
                if self._plan.torn_crash:
                    self._inner.append(name, self._torn(name, None, data))
                raise SimulatedCrash(f"append:{name}")
            # Appends only fail *before* taking effect: a failed-then-
            # retried append must not leave a duplicate page behind.
            if self._roll(self._plan.write_error_rate):
                self._transient_write_errors += 1
                raise TransientIOError(f"injected append fault: {name!r}")
        return self._inner.append(name, data)
