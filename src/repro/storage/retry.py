"""Bounded retry with exponential backoff for transient storage faults.

:class:`RetryingBackend` wraps any :class:`~repro.storage.backend.
StorageBackend` and absorbs :func:`~repro.storage.errors.is_transient`
failures of page reads and writes by retrying with exponential backoff
and deterministic seeded jitter.  It additionally verifies the page
checksum trailer on every read (``verify_reads=True``): a corrupt page is
re-read — in-flight corruption (a bit-flip on the bus) disappears on
retry, while corruption persisted by a torn write survives every attempt
and surfaces as :class:`~repro.storage.errors.CorruptPageError` after the
budget is spent.

Retry scope
-----------
Only idempotent operations are retried: reads always, in-place page
writes always (rewriting the same page is harmless), and appends under
the documented fault model that a failed append did not take effect
(:class:`~repro.storage.faults.FaultInjectingBackend` guarantees this by
raising before mutating).  ``create``/``delete`` are never retried — a
successful-but-reported-failed attempt would make the retry raise a
confusing "already exists"/"no such file" error; their failures pass
through for the caller to classify.

Observability
-------------
Every retry, checksum-triggered re-read and exhausted budget increments
:class:`RetryCounters`; listeners registered with
:meth:`RetryingBackend.add_retry_listener` get a callback per event,
which is how :class:`~repro.storage.disk.Disk` folds retry activity into
its :class:`~repro.storage.cost_model.IOStats`.

``sleep`` is injectable so tests (and the simulation, which measures
simulated seconds, not wall-clock) never actually block.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, fields
from typing import Callable

from repro.storage.backend import StorageBackend
from repro.storage.codec import verify_page
from repro.storage.errors import CorruptPageError, is_transient

#: Retry event names passed to listeners.
EVENT_RETRY = "retry"
EVENT_CORRUPT_READ = "corrupt_read"
EVENT_EXHAUSTED = "exhausted"


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Backoff schedule: ``base * 2**attempt`` capped at ``max``, plus jitter.

    ``jitter`` is the maximum fraction of the delay added randomly (from
    a generator seeded with ``seed``, so schedules are reproducible).
    """

    max_attempts: int = 5
    base_delay_s: float = 0.001
    max_delay_s: float = 0.100
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay_s(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        delay = min(self.base_delay_s * (2**attempt), self.max_delay_s)
        return delay * (1.0 + self.jitter * rng.random())


@dataclass(frozen=True, slots=True)
class RetryCounters:
    """Cumulative retry activity of one :class:`RetryingBackend`."""

    retries: int = 0
    corrupt_reads_detected: int = 0
    exhausted: int = 0

    def delta_since(self, earlier: "RetryCounters") -> "RetryCounters":
        return RetryCounters(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )


class RetryingBackend(StorageBackend):
    """A composable backend wrapper that retries transient faults."""

    def __init__(
        self,
        inner: StorageBackend,
        policy: RetryPolicy | None = None,
        *,
        verify_reads: bool = True,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        super().__init__(inner.page_size)
        self._inner = inner
        self._policy = policy or RetryPolicy()
        self._verify_reads = verify_reads
        self._sleep = sleep
        self._rng = random.Random(self._policy.seed)
        self._retries = 0
        self._corrupt_reads = 0
        self._exhausted = 0
        self._listeners: list[Callable[[str], None]] = []

    # -- introspection ---------------------------------------------------- #

    @property
    def inner(self) -> StorageBackend:
        """The wrapped backend."""
        return self._inner

    @property
    def policy(self) -> RetryPolicy:
        """The backoff schedule in force."""
        return self._policy

    def counters(self) -> RetryCounters:
        """A snapshot of the retry counters."""
        return RetryCounters(
            retries=self._retries,
            corrupt_reads_detected=self._corrupt_reads,
            exhausted=self._exhausted,
        )

    def add_retry_listener(self, listener: Callable[[str], None]) -> None:
        """Register ``listener(event)`` to observe retry activity.

        Events are :data:`EVENT_RETRY` (one retry is about to run),
        :data:`EVENT_CORRUPT_READ` (a read failed checksum validation)
        and :data:`EVENT_EXHAUSTED` (the budget ran out; the last error
        is surfacing to the caller).
        """
        self._listeners.append(listener)

    def _notify(self, event: str) -> None:
        for listener in self._listeners:
            listener(event)

    # -- the retry loop --------------------------------------------------- #

    def _attempt(self, operation: Callable[[], object]) -> object:
        last_error: BaseException | None = None
        for attempt in range(self._policy.max_attempts):
            if attempt:
                self._retries += 1
                self._notify(EVENT_RETRY)
                self._sleep(self._policy.delay_s(attempt - 1, self._rng))
            try:
                return operation()
            except BaseException as error:
                if isinstance(error, CorruptPageError):
                    self._corrupt_reads += 1
                    self._notify(EVENT_CORRUPT_READ)
                if not is_transient(error):
                    raise
                last_error = error
        self._exhausted += 1
        self._notify(EVENT_EXHAUSTED)
        assert last_error is not None
        raise last_error

    # -- file lifecycle (pass-through, never retried) ---------------------- #

    def create(self, name: str) -> None:
        self._inner.create(name)

    def delete(self, name: str) -> None:
        self._inner.delete(name)

    def exists(self, name: str) -> bool:
        return self._inner.exists(name)

    def list_files(self) -> list[str]:
        return self._inner.list_files()

    def num_pages(self, name: str) -> int:
        return self._inner.num_pages(name)

    def clone(self) -> "RetryingBackend":
        """A clone of the stored bytes under the same policy (fresh RNG)."""
        return RetryingBackend(
            self._inner.clone(),
            self._policy,
            verify_reads=self._verify_reads,
            sleep=self._sleep,
        )

    # -- page access (retried) --------------------------------------------- #

    def read(self, name: str, page_no: int) -> bytes:
        def operation() -> bytes:
            data = self._inner.read(name, page_no)
            if self._verify_reads:
                verify_page(data)
            return data

        return self._attempt(operation)

    def write(self, name: str, page_no: int, data: bytes) -> None:
        self._attempt(lambda: self._inner.write(name, page_no, data))

    def append(self, name: str, data: bytes) -> int:
        return self._attempt(lambda: self._inner.append(name, data))
