"""Physical page storage backends.

A backend only stores and retrieves raw page bytes; it knows nothing about
costs, caching or records.  Two implementations are provided:

* :class:`InMemoryBackend` — pages live in Python ``bytes`` objects.  This is
  the default for experiments and tests: the *cost model* (not the host
  machine's RAM/disk) provides the timing behaviour, so keeping the bytes in
  memory makes the simulation fast and hermetic.
* :class:`FileSystemBackend` — pages live in real files under a directory,
  one file per logical file.  Useful for inspecting on-disk layouts produced
  by the indexes and for running the library against real storage.

Failures are raised through the taxonomy of :mod:`repro.storage.errors`
(all subclasses of the seed-era :class:`StorageError`): a missing file is
:class:`MissingFileError`, a page number outside the file is
:class:`MissingPageError`, a trailing short page (a torn write, or a file
truncated out from under us) is :class:`CorruptPageError`, and host
``OSError`` s in :class:`FileSystemBackend` surface as
:class:`TransientIOError` so retry layers know they are worth retrying.
Oversized page data stays a plain :class:`StorageError`: it is a caller
bug, not an I/O fault.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from pathlib import Path

from repro.storage.errors import (
    CorruptPageError,
    MissingFileError,
    MissingPageError,
    StorageError,
    TransientIOError,
)
from repro.storage.page import PAGE_SIZE

__all__ = [
    "CorruptPageError",
    "FileSystemBackend",
    "InMemoryBackend",
    "MissingFileError",
    "MissingPageError",
    "StorageBackend",
    "StorageError",
    "TransientIOError",
]


class StorageBackend(ABC):
    """Abstract page store: named files, each an array of fixed-size pages."""

    def __init__(self, page_size: int = PAGE_SIZE) -> None:
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self._page_size = page_size

    @property
    def page_size(self) -> int:
        """Size in bytes of every page handled by this backend."""
        return self._page_size

    # -- file lifecycle -------------------------------------------------- #

    @abstractmethod
    def create(self, name: str) -> None:
        """Create an empty file.  Raises :class:`StorageError` if it exists."""

    @abstractmethod
    def delete(self, name: str) -> None:
        """Delete a file and its pages.  Raises if the file does not exist."""

    @abstractmethod
    def exists(self, name: str) -> bool:
        """Whether a file with this name exists."""

    @abstractmethod
    def list_files(self) -> list[str]:
        """Names of all files, sorted."""

    @abstractmethod
    def num_pages(self, name: str) -> int:
        """Number of pages currently in the file."""

    @abstractmethod
    def clone(self) -> "StorageBackend":
        """An independent copy of the backend with identical file contents.

        The benchmark harness uses this to run several approaches against
        byte-identical datasets without re-generating them: each run gets
        its own backend (and disk, and accounting) forked from a master.
        """

    # -- page access ----------------------------------------------------- #

    @abstractmethod
    def read(self, name: str, page_no: int) -> bytes:
        """Return the bytes of one page."""

    @abstractmethod
    def write(self, name: str, page_no: int, data: bytes) -> None:
        """Overwrite one existing page."""

    @abstractmethod
    def append(self, name: str, data: bytes) -> int:
        """Append one page and return its page number."""

    # -- shared validation ----------------------------------------------- #

    def _check_page_data(self, data: bytes) -> bytes:
        if len(data) > self._page_size:
            raise StorageError(
                f"page data of {len(data)} bytes exceeds page size {self._page_size}"
            )
        if len(data) < self._page_size:
            data = data + bytes(self._page_size - len(data))
        return data


class InMemoryBackend(StorageBackend):
    """Pages stored in process memory (the default for simulation)."""

    def __init__(self, page_size: int = PAGE_SIZE) -> None:
        super().__init__(page_size)
        self._files: dict[str, list[bytes]] = {}

    def create(self, name: str) -> None:
        if name in self._files:
            raise StorageError(f"file already exists: {name!r}")
        self._files[name] = []

    def delete(self, name: str) -> None:
        try:
            del self._files[name]
        except KeyError:
            raise MissingFileError(f"no such file: {name!r}") from None

    def exists(self, name: str) -> bool:
        return name in self._files

    def clone(self) -> "InMemoryBackend":
        copy = InMemoryBackend(page_size=self.page_size)
        # Page bytes are immutable, so sharing them between clones is safe.
        copy._files = {name: list(pages) for name, pages in self._files.items()}
        return copy

    def list_files(self) -> list[str]:
        return sorted(self._files)

    def num_pages(self, name: str) -> int:
        return len(self._pages(name))

    def read(self, name: str, page_no: int) -> bytes:
        pages = self._pages(name)
        self._check_page_no(name, page_no, len(pages))
        return pages[page_no]

    def write(self, name: str, page_no: int, data: bytes) -> None:
        pages = self._pages(name)
        self._check_page_no(name, page_no, len(pages))
        pages[page_no] = self._check_page_data(data)

    def append(self, name: str, data: bytes) -> int:
        pages = self._pages(name)
        pages.append(self._check_page_data(data))
        return len(pages) - 1

    def _pages(self, name: str) -> list[bytes]:
        try:
            return self._files[name]
        except KeyError:
            raise MissingFileError(f"no such file: {name!r}") from None

    @staticmethod
    def _check_page_no(name: str, page_no: int, total: int) -> None:
        if not 0 <= page_no < total:
            raise MissingPageError(
                f"page {page_no} out of range for {name!r} with {total} pages"
            )


class FileSystemBackend(StorageBackend):
    """Pages stored in real files under ``root`` (one OS file per logical file).

    Logical file names are sanitised into flat file names so callers may use
    arbitrary identifiers (dataset names, combination keys).
    """

    def __init__(self, root: str | os.PathLike[str], page_size: int = PAGE_SIZE) -> None:
        super().__init__(page_size)
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> Path:
        """The directory the page files live under."""
        return self._root

    def _path(self, name: str) -> Path:
        safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in name)
        return self._root / f"{safe}.pages"

    def page_file_path(self, name: str) -> Path:
        """The real on-disk file holding a logical file's pages.

        The process-parallel executor hands this path to its workers,
        which ``mmap`` the file read-only and decode pages as
        ``np.frombuffer`` views straight over the mapping (the per-page
        CRC trailer is verified on every access, so a torn write is
        detected exactly as it is through :meth:`read`).  Raises
        :class:`MissingFileError` when the file does not exist.
        """
        return self._require(name)

    def create(self, name: str) -> None:
        path = self._path(name)
        if path.exists():
            raise StorageError(f"file already exists: {name!r}")
        path.touch()

    def delete(self, name: str) -> None:
        path = self._path(name)
        if not path.exists():
            raise MissingFileError(f"no such file: {name!r}")
        path.unlink()

    def exists(self, name: str) -> bool:
        return self._path(name).exists()

    def clone(self) -> "FileSystemBackend":
        import shutil
        import tempfile

        new_root = Path(tempfile.mkdtemp(prefix="repro-pages-"))
        for path in self._root.glob("*.pages"):
            shutil.copy2(path, new_root / path.name)
        return FileSystemBackend(new_root, page_size=self.page_size)

    def list_files(self) -> list[str]:
        return sorted(p.stem for p in self._root.glob("*.pages"))

    def num_pages(self, name: str) -> int:
        path = self._require(name)
        return path.stat().st_size // self._page_size

    def read(self, name: str, page_no: int) -> bytes:
        path = self._require(name)
        if page_no < 0:
            raise MissingPageError(f"page {page_no} out of range for {name!r}")
        try:
            with path.open("rb") as handle:
                handle.seek(page_no * self._page_size)
                data = handle.read(self._page_size)
        except OSError as error:
            raise TransientIOError(f"read failed for {name!r}: {error}") from error
        if not data:
            total = path.stat().st_size // self._page_size
            raise MissingPageError(
                f"page {page_no} out of range for {name!r} with {total} pages"
            )
        if len(data) < self._page_size:
            # A trailing partial page means the OS file was truncated out
            # from under us (a torn write, or something that is not a page
            # store); surface it instead of returning short bytes.
            raise CorruptPageError(
                f"short page {page_no} in {name!r}: got {len(data)} of "
                f"{self._page_size} bytes"
            )
        return data

    def write(self, name: str, page_no: int, data: bytes) -> None:
        path = self._require(name)
        total = path.stat().st_size // self._page_size
        if not 0 <= page_no < total:
            raise MissingPageError(
                f"page {page_no} out of range for {name!r} with {total} pages"
            )
        data = self._check_page_data(data)
        try:
            with path.open("r+b") as handle:
                handle.seek(page_no * self._page_size)
                handle.write(data)
        except OSError as error:
            raise TransientIOError(f"write failed for {name!r}: {error}") from error

    def append(self, name: str, data: bytes) -> int:
        path = self._require(name)
        data = self._check_page_data(data)
        try:
            with path.open("ab") as handle:
                page_no = handle.tell() // self._page_size
                handle.write(data)
        except OSError as error:
            raise TransientIOError(f"append failed for {name!r}: {error}") from error
        return page_no

    def _require(self, name: str) -> Path:
        path = self._path(name)
        if not path.exists():
            raise MissingFileError(f"no such file: {name!r}")
        return path
