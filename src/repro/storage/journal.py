"""Crash-consistent manifest journal.

The recovery layer (:mod:`repro.core.recovery`) persists a *manifest* —
one JSON document describing everything needed to rebuild the engine's
adaptive state — at every commit point.  This module owns the on-disk
format and its crash-consistency discipline:

* The journal is an append-only host-filesystem file of length-prefixed,
  checksummed records::

      <u32 payload length> <u32 crc32(payload)> <payload: UTF-8 JSON>

  :meth:`ManifestJournal.commit` appends one record and ``flush`` +
  ``fsync`` s before returning, so a record either survives whole or is
  detectably torn.  :meth:`ManifestJournal.read_last` scans forward and
  returns the **last intact record**, silently discarding a torn or
  corrupt tail — a crash mid-commit simply re-exposes the previous
  commit point.

* Every ``compact_every`` commits (and on demand via
  :meth:`ManifestJournal.rewrite`) the journal is compacted to a single
  record through the classic write-temp/fsync/rename dance: the new
  content is written to ``<path>.tmp``, fsync'd, atomically renamed over
  ``<path>``, and the directory is fsync'd.  A crash at any step leaves
  either the complete old journal or the complete new one.

Crash points
------------
For the crash-point sweep, a ``crash_hook(name)`` callable can be
injected; the journal invokes it at named sites —
``journal.commit.start`` (nothing written yet), ``journal.commit.torn``
(half the record bytes written), ``journal.commit.end`` (record
durable), and ``journal.rewrite.start`` / ``journal.rewrite.
before_rename`` / ``journal.rewrite.end``.  A hook that raises
:class:`~repro.storage.errors.SimulatedCrash` leaves the file exactly as
a power loss at that point would.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.obs.trace import maybe_span

#: Per-record header: payload length and crc32 of the payload.
RECORD_HEADER = struct.Struct("<II")


class ManifestJournal:
    """An append-only, checksummed, atomically-compactable record log."""

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        compact_every: int = 64,
        crash_hook: Callable[[str], None] | None = None,
    ) -> None:
        if compact_every < 1:
            raise ValueError("compact_every must be >= 1")
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._compact_every = compact_every
        self._crash_hook = crash_hook
        self._commits = 0
        self._tracer = None

    def attach_tracer(self, tracer) -> None:
        """Attach (or with ``None``, detach) a tracer recording commit
        and rewrite spans.  Observation only: it never changes what, or
        whether, bytes hit the disk."""
        self._tracer = tracer

    @property
    def path(self) -> Path:
        """Where the journal lives on the host filesystem."""
        return self._path

    def exists(self) -> bool:
        """Whether any journal bytes exist yet."""
        return self._path.exists()

    def _crash_point(self, name: str) -> None:
        if self._crash_hook is not None:
            self._crash_hook(name)

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    @staticmethod
    def _encode(record: dict[str, Any]) -> bytes:
        payload = json.dumps(record, separators=(",", ":"), sort_keys=True).encode()
        return RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload

    def commit(self, record: dict[str, Any]) -> None:
        """Durably append one manifest record (auto-compacting periodically)."""
        self._commits += 1
        if self._commits % self._compact_every == 0:
            self.rewrite(record)
            return
        encoded = self._encode(record)
        with maybe_span(self._tracer, "journal.commit", bytes=len(encoded)):
            self._crash_point("journal.commit.start")
            half = len(encoded) // 2
            with self._path.open("ab") as handle:
                handle.write(encoded[:half])
                try:
                    self._crash_point("journal.commit.torn")
                except BaseException:
                    # Persist the torn prefix exactly as a power loss would.
                    handle.flush()
                    os.fsync(handle.fileno())
                    raise
                handle.write(encoded[half:])
                handle.flush()
                os.fsync(handle.fileno())
            self._crash_point("journal.commit.end")

    def rewrite(self, record: dict[str, Any]) -> None:
        """Atomically replace the whole journal with one record."""
        encoded = self._encode(record)
        with maybe_span(self._tracer, "journal.rewrite", bytes=len(encoded)):
            self._crash_point("journal.rewrite.start")
            tmp = self._path.with_suffix(self._path.suffix + ".tmp")
            with tmp.open("wb") as handle:
                handle.write(encoded)
                handle.flush()
                os.fsync(handle.fileno())
            self._crash_point("journal.rewrite.before_rename")
            os.replace(tmp, self._path)
            self._fsync_dir()
            self._crash_point("journal.rewrite.end")

    def _fsync_dir(self) -> None:
        # Durability of the rename itself; ignored where directories
        # cannot be opened (non-POSIX filesystems).
        try:
            fd = os.open(self._path.parent, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def records(self) -> Iterator[dict[str, Any]]:
        """Yield every intact record in order, stopping at the first
        torn/corrupt one (anything after it is unreachable by design:
        appends are sequential, so bytes after a torn record can only be
        more of the same interrupted write)."""
        try:
            blob = self._path.read_bytes()
        except FileNotFoundError:
            return
        offset = 0
        while offset + RECORD_HEADER.size <= len(blob):
            length, checksum = RECORD_HEADER.unpack_from(blob, offset)
            start = offset + RECORD_HEADER.size
            end = start + length
            if end > len(blob):
                return  # torn tail
            payload = blob[start:end]
            if zlib.crc32(payload) != checksum:
                return  # corrupt record: discard it and everything after
            try:
                record = json.loads(payload.decode())
            except (UnicodeDecodeError, json.JSONDecodeError):
                return
            yield record
            offset = end

    def read_last(self) -> dict[str, Any] | None:
        """The most recent intact manifest, or ``None`` for an empty or
        wholly-corrupt journal."""
        last: dict[str, Any] | None = None
        for record in self.records():
            last = record
        return last
