"""Record-oriented files on top of the simulated disk.

A :class:`PagedFile` stores *groups* of fixed-size records.  Each group
occupies whole pages (groups never share a page) described by a
:class:`StoredRun` — a list of page extents plus the record count.  Groups
are the unit the indexes work with: a Space Odyssey partition, a Grid cell,
an R-tree leaf or a merge-file segment is one group.

The write path supports the paper's *in-place refinement*: when a partition
is split, the pages it used to occupy are handed back to
:meth:`PagedFile.write_groups` for reuse, and only the overflow is appended
at the end of the file (Section 3.1.2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, Iterable, Iterator, Sequence, TypeVar

from repro.storage.codec import RecordCodec, decode_page, encode_page, records_per_page
from repro.storage.disk import Disk

RecordT = TypeVar("RecordT")


@dataclass(frozen=True, slots=True)
class PageExtent:
    """A run of ``count`` consecutive pages starting at ``start``."""

    start: int
    count: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("start must be non-negative")
        if self.count < 1:
            raise ValueError("count must be positive")

    @property
    def end(self) -> int:
        """Page number one past the last page of the extent."""
        return self.start + self.count

    def pages(self) -> Iterator[int]:
        """Yield the page numbers covered by the extent."""
        return iter(range(self.start, self.end))


def coalesce_pages(page_numbers: Sequence[int]) -> list[PageExtent]:
    """Compress a sorted-or-not list of page numbers into maximal extents."""
    if not page_numbers:
        return []
    ordered = sorted(page_numbers)
    extents: list[PageExtent] = []
    run_start = ordered[0]
    run_len = 1
    for page_no in ordered[1:]:
        if page_no == run_start + run_len:
            run_len += 1
        else:
            extents.append(PageExtent(run_start, run_len))
            run_start = page_no
            run_len = 1
    extents.append(PageExtent(run_start, run_len))
    return extents


@dataclass(frozen=True, slots=True)
class StoredRun:
    """Where one group of records lives: its page extents and record count."""

    extents: tuple[PageExtent, ...]
    n_records: int

    def __post_init__(self) -> None:
        if self.n_records < 0:
            raise ValueError("n_records must be non-negative")

    @property
    def n_pages(self) -> int:
        """Total number of pages occupied by the group."""
        return sum(extent.count for extent in self.extents)

    def page_numbers(self) -> list[int]:
        """All page numbers of the group, in storage order."""
        pages: list[int] = []
        for extent in self.extents:
            pages.extend(extent.pages())
        return pages


@dataclass(slots=True)
class _PageAllocator:
    """Hands out page slots, reusing a free list before appending new pages.

    ``None`` slots signal "append a fresh page at the end of the file".
    """

    free_pages: list[int] = field(default_factory=list)
    cursor: int = 0

    def take(self) -> int | None:
        if self.cursor < len(self.free_pages):
            page_no = self.free_pages[self.cursor]
            self.cursor += 1
            return page_no
        return None


class PagedFile(Generic[RecordT]):
    """A named file of record groups on a :class:`~repro.storage.disk.Disk`.

    The file is created lazily on the first write if it does not exist.
    """

    def __init__(self, disk: Disk, name: str, codec: RecordCodec[RecordT]) -> None:
        self._disk = disk
        self._name = name
        self._codec = codec
        self._records_per_page = records_per_page(codec.record_size, disk.page_size)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        """The underlying file name."""
        return self._name

    @property
    def disk(self) -> Disk:
        """The disk this file lives on."""
        return self._disk

    @property
    def codec(self) -> RecordCodec[RecordT]:
        """The record codec."""
        return self._codec

    @property
    def records_per_page(self) -> int:
        """Maximum number of records per page."""
        return self._records_per_page

    def exists(self) -> bool:
        """Whether the file has been created."""
        return self._disk.file_exists(self._name)

    def num_pages(self) -> int:
        """Number of pages currently in the file (0 if not created)."""
        if not self.exists():
            return 0
        return self._disk.num_pages(self._name)

    def delete(self) -> None:
        """Delete the file if it exists."""
        if self.exists():
            self._disk.delete_file(self._name)

    def pages_needed(self, n_records: int) -> int:
        """How many pages a group of ``n_records`` records occupies."""
        if n_records <= 0:
            return 0
        return -(-n_records // self._records_per_page)

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    def append_group(self, records: Sequence[RecordT]) -> StoredRun:
        """Append one group of records at the end of the file."""
        self._ensure_created()
        if not records:
            return StoredRun(extents=(), n_records=0)
        pages = self._encode_group(records)
        first = self._disk.append_run(self._name, pages)
        return StoredRun(extents=(PageExtent(first, len(pages)),), n_records=len(records))

    def write_groups(
        self,
        groups: Sequence[Sequence[RecordT]],
        reuse: Sequence[PageExtent] = (),
    ) -> list[StoredRun]:
        """Write several groups, reusing the given page extents first.

        This implements the paper's in-place refinement: the pages of the
        partition being split are reused for its children, and any overflow
        is appended at the end of the file.  Groups never share pages, so
        each resulting :class:`StoredRun` can be read independently.
        """
        self._ensure_created()
        allocator = _PageAllocator(free_pages=[p for ext in reuse for p in ext.pages()])
        runs: list[StoredRun] = []
        pending_appends: list[bytes] = []
        pending_groups: list[tuple[int, list[int]]] = []  # (group index, missing page count)
        for index, records in enumerate(groups):
            if not records:
                runs.append(StoredRun(extents=(), n_records=0))
                continue
            pages = self._encode_group(records)
            assigned: list[int] = []
            missing = 0
            for page_bytes in pages:
                slot = allocator.take()
                if slot is None:
                    pending_appends.append(page_bytes)
                    missing += 1
                else:
                    self._disk.write_page(self._name, slot, page_bytes)
                    assigned.append(slot)
            runs.append(StoredRun(extents=tuple(coalesce_pages(assigned)), n_records=len(records)))
            if missing:
                pending_groups.append((index, [missing]))
        if pending_appends:
            first_new = self._disk.append_run(self._name, pending_appends)
            cursor = first_new
            for index, (missing,) in pending_groups:
                new_pages = list(range(cursor, cursor + missing))
                cursor += missing
                old_run = runs[index]
                combined = old_run.page_numbers() + new_pages
                runs[index] = StoredRun(
                    extents=tuple(coalesce_pages(combined)), n_records=old_run.n_records
                )
        return runs

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def read_group(self, run: StoredRun) -> list[RecordT]:
        """Read back one group of records."""
        records: list[RecordT] = []
        for extent in run.extents:
            for page_bytes in self._disk.read_run(self._name, extent.start, extent.count):
                records.extend(decode_page(self._codec, page_bytes))
        if len(records) < run.n_records:
            raise ValueError(
                f"group in {self._name!r} is corrupt: expected {run.n_records} "
                f"records, decoded {len(records)}"
            )
        return records[: run.n_records]

    def read_groups(self, runs: Iterable[StoredRun]) -> list[RecordT]:
        """Read several groups and concatenate their records."""
        records: list[RecordT] = []
        for run in runs:
            records.extend(self.read_group(run))
        return records

    def read_page_records(self, page_no: int) -> list[RecordT]:
        """Decode all records stored in one page.

        Index structures that address whole-page groups by page number
        (R-tree nodes, FLAT leaves) use this instead of carrying a
        :class:`StoredRun` around; the per-page record-count header makes
        the page self-describing.
        """
        page_bytes = self._disk.read_page(self._name, page_no)
        return decode_page(self._codec, page_bytes)

    def scan(self) -> Iterator[RecordT]:
        """Yield every record in the file in page order (one sequential pass)."""
        if not self.exists():
            return
        for page_bytes in self._disk.scan_pages(self._name):
            yield from decode_page(self._codec, page_bytes)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _ensure_created(self) -> None:
        if not self._disk.file_exists(self._name):
            self._disk.create_file(self._name)

    def _encode_group(self, records: Sequence[RecordT]) -> list[bytes]:
        pages: list[bytes] = []
        for start in range(0, len(records), self._records_per_page):
            chunk = records[start : start + self._records_per_page]
            pages.append(encode_page(self._codec, chunk, self._disk.page_size))
        return pages
