"""Record-oriented files on top of the simulated disk.

A :class:`PagedFile` stores *groups* of fixed-size records.  Each group
occupies whole pages (groups never share a page) described by a
:class:`StoredRun` — a list of page extents plus the record count.  Groups
are the unit the indexes work with: a Space Odyssey partition, a Grid cell,
an R-tree leaf or a merge-file segment is one group.

The write path supports the paper's *in-place refinement*: when a partition
is split, the pages it used to occupy are handed back to
:meth:`PagedFile.write_groups` for reuse, and only the overflow is appended
at the end of the file (Section 3.1.2 of the paper).

Columnar surface
----------------
When the codec declares a structured ``dtype`` mirroring its byte layout
(spatial-object codecs do), the file additionally exposes an *array-native*
surface: :meth:`PagedFile.read_group_array` and :meth:`PagedFile.scan_arrays`
decode pages straight into NumPy structured arrays (``np.frombuffer``, no
per-record Python objects), and :meth:`PagedFile.append_group_array` /
:meth:`PagedFile.write_groups_array` encode straight from arrays.  Both
surfaces produce and consume byte-identical pages, so scalar and columnar
callers can be mixed freely on the same file.  Array reads are backed by the
buffer pool's decoded-array layer: a page whose bytes are cached is decoded
at most once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, Iterable, Iterator, Sequence, TypeVar

import numpy as np

from repro.storage.codec import (
    COMPRESSION_CODECS,
    RecordCodec,
    decode_page,
    decode_page_array,
    encode_page,
    paginate_array,
    paginate_bytes_compressed,
    records_per_page,
)
from repro.storage.disk import Disk

RecordT = TypeVar("RecordT")


@dataclass(frozen=True, slots=True)
class PageExtent:
    """A run of ``count`` consecutive pages starting at ``start``."""

    start: int
    count: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError("start must be non-negative")
        if self.count < 1:
            raise ValueError("count must be positive")

    @property
    def end(self) -> int:
        """Page number one past the last page of the extent."""
        return self.start + self.count

    def pages(self) -> Iterator[int]:
        """Yield the page numbers covered by the extent."""
        return iter(range(self.start, self.end))


def coalesce_pages(page_numbers: Sequence[int]) -> list[PageExtent]:
    """Compress a sorted-or-not list of page numbers into maximal extents."""
    if not page_numbers:
        return []
    ordered = sorted(page_numbers)
    extents: list[PageExtent] = []
    run_start = ordered[0]
    run_len = 1
    for page_no in ordered[1:]:
        if page_no == run_start + run_len:
            run_len += 1
        else:
            extents.append(PageExtent(run_start, run_len))
            run_start = page_no
            run_len = 1
    extents.append(PageExtent(run_start, run_len))
    return extents


@dataclass(frozen=True, slots=True)
class StoredRun:
    """Where one group of records lives: its page extents and record count."""

    extents: tuple[PageExtent, ...]
    n_records: int

    def __post_init__(self) -> None:
        if self.n_records < 0:
            raise ValueError("n_records must be non-negative")

    @property
    def n_pages(self) -> int:
        """Total number of pages occupied by the group."""
        return sum(extent.count for extent in self.extents)

    def page_numbers(self) -> list[int]:
        """All page numbers of the group, in storage order."""
        pages: list[int] = []
        for extent in self.extents:
            pages.extend(extent.pages())
        return pages


@dataclass(slots=True)
class _PageAllocator:
    """Hands out page slots, reusing a free list before appending new pages.

    ``None`` slots signal "append a fresh page at the end of the file".
    """

    free_pages: list[int] = field(default_factory=list)
    cursor: int = 0

    def take(self) -> int | None:
        if self.cursor < len(self.free_pages):
            page_no = self.free_pages[self.cursor]
            self.cursor += 1
            return page_no
        return None


def _frozen_concat(parts: Sequence[np.ndarray], dtype: np.dtype) -> np.ndarray:
    """Concatenate decoded page arrays into one *read-only* array.

    Single-page groups come back as read-only ``np.frombuffer`` views
    straight from the decoded-array cache; multi-page groups concatenate
    into a fresh buffer, which NumPy makes writable by default.  Freezing
    that buffer too keeps the whole array surface immutable: the decoded
    layer's cached views are shared across queries, engines and epochs,
    and an in-place mutation anywhere must raise instead of silently
    corrupting everyone's view of the page.
    """
    if not parts:
        records = np.empty(0, dtype=dtype)
    elif len(parts) == 1:
        return parts[0]
    else:
        records = np.concatenate(parts)
    records.setflags(write=False)
    return records


class PagedFile(Generic[RecordT]):
    """A named file of record groups on a :class:`~repro.storage.disk.Disk`.

    The file is created lazily on the first write if it does not exist.
    """

    def __init__(
        self,
        disk: Disk,
        name: str,
        codec: RecordCodec[RecordT],
        compression: str | None = None,
    ) -> None:
        if compression is not None and compression not in COMPRESSION_CODECS:
            raise ValueError(
                f"unsupported compression {compression!r}; available codecs: "
                f"{', '.join(COMPRESSION_CODECS)}"
            )
        self._disk = disk
        self._name = name
        self._codec = codec
        self._compression = compression
        self._dtype: np.dtype | None = getattr(codec, "dtype", None)
        self._records_per_page = records_per_page(codec.record_size, disk.page_size)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        """The underlying file name."""
        return self._name

    @property
    def disk(self) -> Disk:
        """The disk this file lives on."""
        return self._disk

    @property
    def codec(self) -> RecordCodec[RecordT]:
        """The record codec."""
        return self._codec

    @property
    def dtype(self) -> np.dtype | None:
        """The structured dtype of the array surface (``None`` if unavailable)."""
        return self._dtype

    @property
    def records_per_page(self) -> int:
        """Maximum number of records per *uncompressed* page.

        Compressed pages may pack more; this nominal capacity is what the
        reuse arithmetic of :meth:`write_groups` and :meth:`pages_needed`
        is based on.
        """
        return self._records_per_page

    @property
    def compression(self) -> str | None:
        """The compression codec newly encoded pages use (``None`` = off).

        Compression applies to the encode path only; reads are always
        driven by each page's own header flags, so files mixing compressed
        and uncompressed pages (or written by an older encoder) decode
        transparently.
        """
        return self._compression

    def exists(self) -> bool:
        """Whether the file has been created."""
        return self._disk.file_exists(self._name)

    def num_pages(self) -> int:
        """Number of pages currently in the file (0 if not created)."""
        if not self.exists():
            return 0
        return self._disk.num_pages(self._name)

    def delete(self) -> None:
        """Delete the file if it exists."""
        if self.exists():
            self._disk.delete_file(self._name)

    def pages_needed(self, n_records: int) -> int:
        """How many pages a group of ``n_records`` records occupies."""
        if n_records <= 0:
            return 0
        return -(-n_records // self._records_per_page)

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #

    def append_group(self, records: Sequence[RecordT]) -> StoredRun:
        """Append one group of records at the end of the file."""
        return self._append_pages(self._encode_group(records), len(records))

    def append_group_array(self, records: np.ndarray) -> StoredRun:
        """Append one group encoded straight from a structured array."""
        return self._append_pages(self._encode_group_array(records), len(records))

    def write_groups(
        self,
        groups: Sequence[Sequence[RecordT]],
        reuse: Sequence[PageExtent] = (),
    ) -> list[StoredRun]:
        """Write several groups, reusing the given page extents first.

        This implements the paper's in-place refinement: the pages of the
        partition being split are reused for its children, and any overflow
        is appended at the end of the file.  Groups never share pages, so
        each resulting :class:`StoredRun` can be read independently.
        """
        return self._write_encoded_groups(
            [(self._encode_group(records), len(records)) for records in groups], reuse
        )

    def write_groups_array(
        self,
        groups: Sequence[np.ndarray],
        reuse: Sequence[PageExtent] = (),
    ) -> list[StoredRun]:
        """Array-native :meth:`write_groups`: groups are structured arrays.

        Page bytes, allocation order and the resulting runs are identical
        to encoding the equivalent record objects through
        :meth:`write_groups`.
        """
        return self._write_encoded_groups(
            [(self._encode_group_array(records), len(records)) for records in groups],
            reuse,
        )

    def _append_pages(self, pages: list[bytes], n_records: int) -> StoredRun:
        self._ensure_created()
        if not n_records:
            return StoredRun(extents=(), n_records=0)
        first = self._disk.append_run(self._name, pages)
        return StoredRun(extents=(PageExtent(first, len(pages)),), n_records=n_records)

    def _write_encoded_groups(
        self,
        encoded: Sequence[tuple[list[bytes], int]],
        reuse: Sequence[PageExtent],
    ) -> list[StoredRun]:
        """The shared write core: place encoded pages, reused extents first.

        Groups whose pages do not all fit in the reused extents remember how
        many pages overflowed as a plain ``(group index, missing)`` pair;
        after one bulk append at the end of the file the missing pages are
        dealt back out in group order.
        """
        self._ensure_created()
        allocator = _PageAllocator(free_pages=[p for ext in reuse for p in ext.pages()])
        runs: list[StoredRun] = []
        pending_appends: list[bytes] = []
        overflows: list[tuple[int, int]] = []  # (group index, missing page count)
        for index, (pages, n_records) in enumerate(encoded):
            if not n_records:
                runs.append(StoredRun(extents=(), n_records=0))
                continue
            assigned: list[int] = []
            missing = 0
            for page_bytes in pages:
                slot = allocator.take()
                if slot is None:
                    pending_appends.append(page_bytes)
                    missing += 1
                else:
                    self._disk.write_page(self._name, slot, page_bytes)
                    assigned.append(slot)
            runs.append(StoredRun(extents=tuple(coalesce_pages(assigned)), n_records=n_records))
            if missing:
                overflows.append((index, missing))
        if pending_appends:
            cursor = self._disk.append_run(self._name, pending_appends)
            for index, missing in overflows:
                new_pages = list(range(cursor, cursor + missing))
                cursor += missing
                old_run = runs[index]
                runs[index] = StoredRun(
                    extents=tuple(coalesce_pages(old_run.page_numbers() + new_pages)),
                    n_records=old_run.n_records,
                )
        return runs

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def read_group(self, run: StoredRun) -> list[RecordT]:
        """Read back one group of records."""
        records: list[RecordT] = []
        for extent in run.extents:
            for page_bytes in self._disk.read_run(self._name, extent.start, extent.count):
                records.extend(decode_page(self._codec, page_bytes))
        if len(records) < run.n_records:
            raise ValueError(
                f"group in {self._name!r} is corrupt: expected {run.n_records} "
                f"records, decoded {len(records)}"
            )
        return records[: run.n_records]

    def read_groups(self, runs: Iterable[StoredRun]) -> list[RecordT]:
        """Read several groups and concatenate their records."""
        records: list[RecordT] = []
        for run in runs:
            records.extend(self.read_group(run))
        return records

    def read_page_records(self, page_no: int) -> list[RecordT]:
        """Decode all records stored in one page.

        Index structures that address whole-page groups by page number
        (R-tree nodes, FLAT leaves) use this instead of carrying a
        :class:`StoredRun` around; the per-page record-count header makes
        the page self-describing.
        """
        page_bytes = self._disk.read_page(self._name, page_no)
        return decode_page(self._codec, page_bytes)

    def scan(self) -> Iterator[RecordT]:
        """Yield every record in the file in page order (one sequential pass)."""
        if not self.exists():
            return
        for page_bytes in self._disk.scan_pages(self._name):
            yield from decode_page(self._codec, page_bytes)

    # ------------------------------------------------------------------ #
    # Array-native reading
    # ------------------------------------------------------------------ #

    def read_group_array(self, run: StoredRun) -> np.ndarray:
        """Read one group as a structured array (zero-copy page decoding).

        Disk accesses and cost accounting are identical to
        :meth:`read_group`; only the bytes→records step changes.  Decoded
        pages are cached in the buffer pool's decoded-array layer, so a
        group whose pages are byte-cached is served without re-decoding.
        """
        dtype = self._require_dtype()
        parts: list[np.ndarray] = []
        for extent in run.extents:
            pages = self._disk.read_run(self._name, extent.start, extent.count)
            for offset, page_bytes in enumerate(pages):
                decoded = self._decode_page_cached(extent.start + offset, page_bytes)
                if len(decoded):
                    parts.append(decoded)
        records = _frozen_concat(parts, dtype)
        if len(records) < run.n_records:
            raise ValueError(
                f"group in {self._name!r} is corrupt: expected {run.n_records} "
                f"records, decoded {len(records)}"
            )
        return records[: run.n_records]

    def scan_arrays(self, chunk_pages: int = 256) -> Iterator[np.ndarray]:
        """Yield the file's records in columnar chunks (one sequential pass).

        Each yielded array concatenates up to ``chunk_pages`` pages; disk
        charging matches :meth:`scan` (sequential runs of the same size).
        """
        dtype = self._require_dtype()
        if not self.exists():
            return
        if chunk_pages < 1:
            raise ValueError("chunk_pages must be >= 1")
        total = self.num_pages()
        for start in range(0, total, chunk_pages):
            count = min(chunk_pages, total - start)
            parts = [
                self._decode_page_cached(start + offset, page_bytes)
                for offset, page_bytes in enumerate(
                    self._disk.read_run(self._name, start, count)
                )
            ]
            parts = [part for part in parts if len(part)]
            if not parts:
                continue
            yield _frozen_concat(parts, dtype)

    def _require_dtype(self) -> np.dtype:
        if self._dtype is None:
            raise TypeError(
                f"codec {type(self._codec).__name__} declares no structured dtype; "
                "the array surface is unavailable for this file"
            )
        return self._dtype

    def read_group_array_at(self, run: StoredRun, lookup) -> np.ndarray:
        """Snapshot variant of :meth:`read_group_array`.

        Pages are fetched through :meth:`Disk.read_run_at`, so any page
        overwritten or deleted since the snapshot was pinned is served
        from the snapshot's retained pre-image (``lookup``) instead of the
        live file.  Pre-image bytes are distinct objects from anything in
        the buffer pool, so the identity-checked decoded layer decodes
        them fresh and never caches them — a later live reader cannot be
        served a stale decoding.  When the overlay has nothing for the
        run, reads, charging and decoding are identical to
        :meth:`read_group_array`.
        """
        dtype = self._require_dtype()
        parts: list[np.ndarray] = []
        for extent in run.extents:
            pages = self._disk.read_run_at(self._name, extent.start, extent.count, lookup)
            for offset, page_bytes in enumerate(pages):
                decoded = self._decode_page_cached(extent.start + offset, page_bytes)
                if len(decoded):
                    parts.append(decoded)
        records = _frozen_concat(parts, dtype)
        if len(records) < run.n_records:
            raise ValueError(
                f"group in {self._name!r} is corrupt: expected {run.n_records} "
                f"records, decoded {len(records)}"
            )
        return records[: run.n_records]

    def _decode_page_cached(self, page_no: int, page_bytes: bytes) -> np.ndarray:
        pool = self._disk.buffer_pool
        decoded = pool.get_decoded(self._name, page_no, page_bytes)
        if decoded is None:
            decoded = decode_page_array(self._dtype, page_bytes)
            pool.put_decoded(self._name, page_no, page_bytes, decoded)
        return decoded

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _ensure_created(self) -> None:
        if not self._disk.file_exists(self._name):
            self._disk.create_file(self._name)

    def _encode_group(self, records: Sequence[RecordT]) -> list[bytes]:
        if self._compression is not None:
            packed = b"".join(self._codec.pack(record) for record in records)
            return paginate_bytes_compressed(
                packed, self._codec.record_size, self._disk.page_size, self._compression
            )
        pages: list[bytes] = []
        for start in range(0, len(records), self._records_per_page):
            chunk = records[start : start + self._records_per_page]
            pages.append(encode_page(self._codec, chunk, self._disk.page_size))
        return pages

    def _encode_group_array(self, records: np.ndarray) -> list[bytes]:
        dtype = self._require_dtype()
        if records.dtype != dtype:
            raise TypeError(
                f"array dtype {records.dtype} does not match the file's "
                f"record dtype {dtype}"
            )
        if self._compression is not None:
            return paginate_bytes_compressed(
                records.tobytes(),
                self._codec.record_size,
                self._disk.page_size,
                self._compression,
            )
        return paginate_array(records, self._disk.page_size)
