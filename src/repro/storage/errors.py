"""The storage error taxonomy: transient vs permanent failures.

Every storage-layer failure is classified along one axis — *is retrying
worth anything?* — because that is the only question the layers above
ask:

* :class:`TransientIOError` — the operation failed but the stored bytes
  are presumed intact (a flaky bus, an interrupted syscall, an injected
  fault).  :class:`~repro.storage.retry.RetryingBackend` absorbs these
  with bounded exponential backoff.
* :class:`CorruptPageError` — the bytes came back but fail validation
  (bad CRC trailer, short page).  A re-read *may* help when the
  corruption happened in flight; corruption persisted by a torn write
  does not go away, so retry layers attempt a bounded number of re-reads
  and then surface the error.
* :class:`MissingFileError` / :class:`MissingPageError` — the caller
  named something that does not exist.  Deterministic and permanent:
  retrying is pointless, so retry layers pass these straight through.

All of them subclass :class:`StorageError` (the seed-era catch-all), so
pre-existing ``except StorageError`` sites keep working unchanged.
``TransientIOError`` additionally subclasses :class:`IOError` so generic
I/O handling treats it as what it models.
"""

from __future__ import annotations


class StorageError(Exception):
    """Base class for storage failures (missing files, bad offsets, corruption)."""


class TransientIOError(StorageError, IOError):
    """A fault that left the stored bytes intact; retrying may succeed."""


class CorruptPageError(StorageError):
    """Page bytes failed validation (CRC mismatch or short page)."""


class MissingFileError(StorageError):
    """The named file does not exist.  Permanent: retrying cannot help."""


class MissingPageError(StorageError):
    """The page number is outside the file.  Permanent: retrying cannot help."""


class SimulatedCrash(BaseException):
    """A process crash injected by :class:`~repro.storage.faults.FaultInjectingBackend`.

    Deliberately *not* a :class:`StorageError` (and not even an
    :class:`Exception`): a crash is the process dying, so no retry layer,
    ``except Exception`` cleanup path or serving dispatcher may absorb
    it.  Crash-recovery tests catch it explicitly at top level, discard
    the in-memory engine — exactly what a real crash does — and recover
    from the journal.
    """

    def __init__(self, crash_point: str) -> None:
        super().__init__(crash_point)
        self.crash_point = crash_point


def is_transient(error: BaseException) -> bool:
    """Whether a retry layer should consider retrying after ``error``.

    Transient faults are always worth retrying; corrupt pages are worth a
    bounded number of re-reads (in-flight corruption disappears on
    re-read, persisted corruption does not).  Everything else — missing
    files/pages, programming errors — is permanent.
    """
    return isinstance(error, (TransientIOError, CorruptPageError))
