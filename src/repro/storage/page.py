"""Page-level constants.

The paper fixes the disk page size at 4 KB for all approaches; the whole
storage layer therefore works in units of :data:`PAGE_SIZE` bytes.  The
constant is a module-level default — the :class:`~repro.storage.cost_model.DiskModel`
carries its own ``page_size`` so tests can exercise unusual sizes.
"""

from __future__ import annotations

#: Default page size in bytes (4 KB, as in the paper's experimental setup).
PAGE_SIZE: int = 4096


def empty_page(page_size: int = PAGE_SIZE) -> bytes:
    """A zero-filled page of ``page_size`` bytes."""
    if page_size <= 0:
        raise ValueError("page_size must be positive")
    return bytes(page_size)
