"""Simulated disk substrate.

The original Space Odyssey evaluation is disk-bound: its run-times are
dominated by how many pages each approach reads and writes and by whether
those accesses are sequential or random.  This package provides the
substrate that the rest of the library is built on:

* :class:`~repro.storage.backend.StorageBackend` — where page bytes actually
  live (in memory, or in real files on the host filesystem);
* :class:`~repro.storage.cost_model.DiskModel` — an analytical model of a
  spinning disk (seek latency + transfer bandwidth + a small CPU term) that
  converts the access trace into *simulated seconds*;
* :class:`~repro.storage.disk.Disk` — the facade all indexes talk to.  It
  tracks head position to classify accesses as sequential or random, charges
  the cost model, and runs an LRU :class:`~repro.storage.buffer.BufferPool`
  with a configurable page budget (the paper caps every approach at the same
  memory footprint and drops OS caches before each query);
* :class:`~repro.storage.pagedfile.PagedFile` — a record-oriented file
  abstraction (fixed-size records packed into 4 KB pages) used for raw
  dataset files, index partitions and merge files.
"""

from repro.storage.backend import FileSystemBackend, InMemoryBackend, StorageBackend
from repro.storage.buffer import BufferCounters, BufferPool, ShardedBufferPool
from repro.storage.codec import FixedRecordCodec, RecordCodec, page_intact, verify_page
from repro.storage.cost_model import AccessKind, DiskModel, IOStats
from repro.storage.disk import Disk
from repro.storage.errors import (
    CorruptPageError,
    MissingFileError,
    MissingPageError,
    SimulatedCrash,
    StorageError,
    TransientIOError,
    is_transient,
)
from repro.storage.faults import FaultCounters, FaultInjectingBackend, FaultPlan
from repro.storage.journal import ManifestJournal
from repro.storage.page import PAGE_SIZE
from repro.storage.pagedfile import PagedFile, PageExtent, StoredRun
from repro.storage.retry import RetryCounters, RetryingBackend, RetryPolicy

__all__ = [
    "PAGE_SIZE",
    "AccessKind",
    "BufferCounters",
    "BufferPool",
    "CorruptPageError",
    "Disk",
    "DiskModel",
    "FaultCounters",
    "FaultInjectingBackend",
    "FaultPlan",
    "FileSystemBackend",
    "FixedRecordCodec",
    "IOStats",
    "InMemoryBackend",
    "ManifestJournal",
    "MissingFileError",
    "MissingPageError",
    "PageExtent",
    "PagedFile",
    "RecordCodec",
    "RetryCounters",
    "RetryPolicy",
    "RetryingBackend",
    "ShardedBufferPool",
    "SimulatedCrash",
    "StorageBackend",
    "StorageError",
    "StoredRun",
    "TransientIOError",
    "is_transient",
    "page_intact",
    "verify_page",
]
