"""Record codecs: fixed-size records packed into pages.

All files in the reproduction (raw dataset files, index partitions, R-tree
nodes, merge files) store fixed-size binary records.  A codec knows how to
turn a record into bytes and back; :class:`~repro.storage.pagedfile.PagedFile`
uses it to pack as many records as fit into each 4 KB page.

Each page starts with a 4-byte little-endian record count so that partially
filled pages decode unambiguously, and ends with a 4-byte checksum trailer
over everything before it, so torn writes and bit-flips are detected at
decode time (:class:`~repro.storage.errors.CorruptPageError`) instead of
silently yielding garbage records.  Encoded pages are always exactly
``page_size`` bytes — header, records, zero padding, trailer — so the
checksum covers the padding too and a partial overwrite of any region of
the page is caught.  The checksum is CRC-32C when the optional ``crc32c``
module is available, falling back to ``zlib.crc32`` (both C-speed; the
fallback keeps the reproduction dependency-free).

Two decoding surfaces share this page format:

* the *scalar* surface (:func:`encode_page` / :func:`decode_page`) packs and
  unpacks one Python record object at a time through a
  :class:`RecordCodec`;
* the *array* surface (:func:`encode_page_array` / :func:`decode_page_array`)
  moves whole pages between bytes and NumPy structured arrays in one
  ``np.frombuffer`` / ``tobytes`` call, without materialising per-record
  Python objects.  A codec that exposes a :attr:`RecordCodec.dtype` whose
  layout mirrors its ``struct`` format byte-for-byte guarantees both
  surfaces read and write identical bytes.
"""

from __future__ import annotations

import struct
import zlib
from typing import Generic, Iterable, Protocol, Sequence, TypeVar

import numpy as np

from repro.storage.errors import CorruptPageError

RecordT = TypeVar("RecordT")

#: Per-page header: number of records stored in the page (uint32, little endian).
PAGE_HEADER = struct.Struct("<I")

#: Per-page trailer: checksum of everything before it (uint32, little endian).
PAGE_TRAILER = struct.Struct("<I")

try:  # pragma: no cover - exercised only where the wheel is installed
    from crc32c import crc32c as _checksum
except ImportError:  # pragma: no cover - the default path on this image
    _checksum = zlib.crc32


def page_checksum(data: bytes | memoryview) -> int:
    """The 32-bit checksum stored in a page's trailer (CRC-32C or CRC-32)."""
    return _checksum(data) & 0xFFFFFFFF


def verify_page(data: bytes) -> None:
    """Validate one encoded page's checksum trailer.

    Raises :class:`~repro.storage.errors.CorruptPageError` when the page
    is too short to carry header + trailer or the trailer does not match
    the checksum of the preceding bytes — the signature of a torn write
    or a bit-flip.
    """
    if len(data) < PAGE_HEADER.size + PAGE_TRAILER.size:
        raise CorruptPageError(
            f"page of {len(data)} bytes is too short for header and checksum trailer"
        )
    view = memoryview(data)
    (stored,) = PAGE_TRAILER.unpack_from(data, len(data) - PAGE_TRAILER.size)
    actual = page_checksum(view[: len(data) - PAGE_TRAILER.size])
    if stored != actual:
        raise CorruptPageError(
            f"page checksum mismatch: trailer {stored:#010x}, computed {actual:#010x}"
        )


def page_intact(data: bytes) -> bool:
    """Whether one encoded page passes checksum validation."""
    try:
        verify_page(data)
    except CorruptPageError:
        return False
    return True


def _seal_page(payload: bytearray, page_size: int) -> bytes:
    """Pad a header+records payload to the page size and append the trailer."""
    payload.extend(bytes(page_size - PAGE_TRAILER.size - len(payload)))
    payload.extend(PAGE_TRAILER.pack(page_checksum(payload)))
    return bytes(payload)


class RecordCodec(Protocol[RecordT]):
    """Binary (de)serialisation of one record type with a fixed size."""

    @property
    def record_size(self) -> int:
        """Size of one encoded record in bytes."""
        ...

    @property
    def dtype(self) -> "np.dtype | None":
        """A structured dtype mirroring the byte layout, or ``None``.

        When present, pages of this record type can be decoded and encoded
        through the array surface (:func:`decode_page_array`), skipping
        per-record Python objects entirely.
        """
        ...

    def pack(self, record: RecordT) -> bytes:
        """Encode one record into exactly ``record_size`` bytes."""
        ...

    def unpack(self, data: bytes) -> RecordT:
        """Decode one record from exactly ``record_size`` bytes."""
        ...


class FixedRecordCodec(Generic[RecordT]):
    """A codec built from a :mod:`struct` format and field (un)binding functions.

    Parameters
    ----------
    fmt:
        ``struct`` format string (little-endian recommended).
    to_fields:
        Maps a record to the tuple of values packed by ``fmt``.
    from_fields:
        Maps an unpacked tuple back to a record.
    dtype:
        Optional NumPy structured dtype whose byte layout matches ``fmt``
        exactly; it unlocks the zero-copy array surface of
        :class:`~repro.storage.pagedfile.PagedFile`.
    """

    def __init__(self, fmt: str, to_fields, from_fields, dtype: np.dtype | None = None) -> None:
        self._struct = struct.Struct(fmt)
        self._to_fields = to_fields
        self._from_fields = from_fields
        if dtype is not None and dtype.itemsize != self._struct.size:
            raise ValueError(
                f"dtype itemsize {dtype.itemsize} does not match the "
                f"{self._struct.size}-byte struct format {fmt!r}"
            )
        self._dtype = dtype

    @property
    def record_size(self) -> int:
        """Size of one encoded record in bytes."""
        return self._struct.size

    @property
    def dtype(self) -> np.dtype | None:
        """The structured dtype mirroring the byte layout (if declared)."""
        return self._dtype

    def pack(self, record: RecordT) -> bytes:
        """Encode one record."""
        return self._struct.pack(*self._to_fields(record))

    def unpack(self, data: bytes) -> RecordT:
        """Decode one record."""
        return self._from_fields(self._struct.unpack(data))


def records_per_page(record_size: int, page_size: int) -> int:
    """How many records of ``record_size`` bytes fit in one page.

    The header and the checksum trailer both come out of the page budget.
    """
    capacity = (page_size - PAGE_HEADER.size - PAGE_TRAILER.size) // record_size
    if capacity < 1:
        raise ValueError(
            f"a record of {record_size} bytes does not fit in a {page_size}-byte page"
        )
    return capacity


def encode_page(
    codec: RecordCodec[RecordT], records: Sequence[RecordT], page_size: int
) -> bytes:
    """Pack up to one page worth of records into exactly ``page_size`` bytes."""
    capacity = records_per_page(codec.record_size, page_size)
    if len(records) > capacity:
        raise ValueError(f"{len(records)} records exceed page capacity {capacity}")
    payload = bytearray(PAGE_HEADER.pack(len(records)))
    for record in records:
        payload.extend(codec.pack(record))
    return _seal_page(payload, page_size)


def decode_page(codec: RecordCodec[RecordT], data: bytes) -> list[RecordT]:
    """Unpack all records stored in one page (checksum verified first)."""
    verify_page(data)
    (count,) = PAGE_HEADER.unpack_from(data, 0)
    size = codec.record_size
    records: list[RecordT] = []
    offset = PAGE_HEADER.size
    for _ in range(count):
        records.append(codec.unpack(data[offset : offset + size]))
        offset += size
    return records


def decode_page_array(dtype: np.dtype, data: bytes) -> np.ndarray:
    """Decode one page into a structured array without copying the payload.

    The returned array is a read-only ``np.frombuffer`` view over the page
    bytes: decoding is one checksum pass plus pointer arithmetic, no
    matter how many records the page holds.  Values are bit-identical to
    what :func:`decode_page` produces through the scalar codec.
    """
    verify_page(data)
    (count,) = PAGE_HEADER.unpack_from(data, 0)
    available = (len(data) - PAGE_HEADER.size - PAGE_TRAILER.size) // dtype.itemsize
    if count > available:
        raise CorruptPageError(
            f"page header claims {count} records but only {available} fit in the page"
        )
    return np.frombuffer(data, dtype=dtype, count=count, offset=PAGE_HEADER.size)


def encode_page_array(records: np.ndarray, page_size: int) -> bytes:
    """Pack up to one page worth of structured records into page bytes.

    Byte-identical to :func:`encode_page` over the equivalent record
    objects, provided the array's dtype mirrors the codec layout.
    """
    capacity = records_per_page(records.dtype.itemsize, page_size)
    if len(records) > capacity:
        raise ValueError(f"{len(records)} records exceed page capacity {capacity}")
    payload = bytearray(PAGE_HEADER.pack(len(records)))
    payload.extend(records.tobytes())
    return _seal_page(payload, page_size)


def paginate_array(records: np.ndarray, page_size: int) -> list[bytes]:
    """Split a structured array into encoded pages (all full except the last)."""
    capacity = records_per_page(records.dtype.itemsize, page_size)
    return [
        encode_page_array(records[start : start + capacity], page_size)
        for start in range(0, len(records), capacity)
    ]


def paginate(
    codec: RecordCodec[RecordT], records: Iterable[RecordT], page_size: int
) -> list[bytes]:
    """Split a record stream into encoded pages (all full except possibly the last)."""
    capacity = records_per_page(codec.record_size, page_size)
    pages: list[bytes] = []
    batch: list[RecordT] = []
    for record in records:
        batch.append(record)
        if len(batch) == capacity:
            pages.append(encode_page(codec, batch, page_size))
            batch = []
    if batch:
        pages.append(encode_page(codec, batch, page_size))
    return pages
