"""Record codecs: fixed-size records packed into pages.

All files in the reproduction (raw dataset files, index partitions, R-tree
nodes, merge files) store fixed-size binary records.  A codec knows how to
turn a record into bytes and back; :class:`~repro.storage.pagedfile.PagedFile`
uses it to pack as many records as fit into each 4 KB page.

Each page starts with a 4-byte little-endian record count so that partially
filled pages decode unambiguously, and ends with a 4-byte checksum trailer
over everything before it, so torn writes and bit-flips are detected at
decode time (:class:`~repro.storage.errors.CorruptPageError`) instead of
silently yielding garbage records.  Encoded pages are always exactly
``page_size`` bytes — header, records, zero padding, trailer — so the
checksum covers the padding too and a partial overwrite of any region of
the page is caught.  The checksum is CRC-32C when the optional ``crc32c``
module is available, falling back to ``zlib.crc32`` (both C-speed; the
fallback keeps the reproduction dependency-free).

Two decoding surfaces share this page format:

* the *scalar* surface (:func:`encode_page` / :func:`decode_page`) packs and
  unpacks one Python record object at a time through a
  :class:`RecordCodec`;
* the *array* surface (:func:`encode_page_array` / :func:`decode_page_array`)
  moves whole pages between bytes and NumPy structured arrays in one
  ``np.frombuffer`` / ``tobytes`` call, without materialising per-record
  Python objects.  A codec that exposes a :attr:`RecordCodec.dtype` whose
  layout mirrors its ``struct`` format byte-for-byte guarantees both
  surfaces read and write identical bytes.

Optional page compression
-------------------------
A page may store its record payload compressed.  The negotiation lives in
the page header itself: the uint32 that historically held just the record
count keeps the count in its low 24 bits, and the high bits carry a
*compressed* flag plus a compression-codec id.  Pages written before this
scheme carry zeroed flag bits (counts never came close to 2**24), so old
pages decode unchanged and compressed and uncompressed pages mix freely in
one file.  A compressed page is laid out as ``header | compressed-length |
compressed record bytes | zero padding | checksum trailer`` — still exactly
``page_size`` bytes, and the trailer checksum covers the compressed payload
and padding, so :func:`verify_page` and fault detection are unchanged.

The preferred codec is ``zstd`` when an implementation is importable;
otherwise the stdlib ``zlib`` is used (always available, keeps the
reproduction dependency-free).  Decoding always honours the codec id
recorded in the page, independent of what the writer preferred.
"""

from __future__ import annotations

import struct
import zlib
from typing import Generic, Iterable, Protocol, Sequence, TypeVar

import numpy as np

from repro.storage.errors import CorruptPageError

RecordT = TypeVar("RecordT")

#: Per-page header: record count (low 24 bits) + compression flags (high bits).
PAGE_HEADER = struct.Struct("<I")

#: Per-page trailer: checksum of everything before it (uint32, little endian).
PAGE_TRAILER = struct.Struct("<I")

#: Low bits of the header word that hold the record count.
PAGE_COUNT_MASK = 0x00FF_FFFF

#: Header flag: the page's record payload is compressed.
PAGE_FLAG_COMPRESSED = 0x8000_0000

#: Header bits (shifted) identifying the compression codec of the page.
_CODEC_ID_SHIFT = 24
_CODEC_ID_MASK = 0x7F00_0000

#: Length prefix of a compressed payload (uint32, little endian).
_COMPRESSED_LEN = struct.Struct("<I")

_CODEC_ZLIB = 1
_CODEC_ZSTD = 2

try:  # pragma: no cover - zstd wheel not present on this image
    import zstandard as _zstd_mod
except ImportError:  # pragma: no cover - the default path
    try:
        from compression import zstd as _zstd_mod  # Python 3.14+ stdlib
    except ImportError:
        _zstd_mod = None

#: Compression codec names accepted by the encode surfaces.
COMPRESSION_CODECS = ("zlib",) + (("zstd",) if _zstd_mod is not None else ())


def preferred_compression() -> str:
    """The best compression codec available on this interpreter."""
    return "zstd" if _zstd_mod is not None else "zlib"


def _codec_id(name: str) -> int:
    if name == "zlib":
        return _CODEC_ZLIB
    if name == "zstd":
        if _zstd_mod is None:
            raise ValueError("zstd compression requested but no zstd module is available")
        return _CODEC_ZSTD
    raise ValueError(f"unknown compression codec {name!r} (expected 'zlib' or 'zstd')")


def _compress(codec_id: int, data: bytes) -> bytes:
    if codec_id == _CODEC_ZLIB:
        return zlib.compress(data, 6)
    if hasattr(_zstd_mod, "ZstdCompressor"):  # pragma: no cover - zstandard wheel
        return _zstd_mod.ZstdCompressor().compress(data)
    return _zstd_mod.compress(data)  # pragma: no cover - stdlib compression.zstd


def _decompress(codec_id: int, data: bytes) -> bytes:
    if codec_id == _CODEC_ZLIB:
        return zlib.decompress(data)
    if codec_id == _CODEC_ZSTD:  # pragma: no cover - zstd wheel not present here
        if _zstd_mod is None:
            raise CorruptPageError(
                "page is zstd-compressed but no zstd module is available"
            )
        if hasattr(_zstd_mod, "ZstdDecompressor"):
            return _zstd_mod.ZstdDecompressor().decompress(data)
        return _zstd_mod.decompress(data)
    raise CorruptPageError(f"page header carries unknown compression codec id {codec_id}")

try:  # pragma: no cover - exercised only where the wheel is installed
    from crc32c import crc32c as _checksum
except ImportError:  # pragma: no cover - the default path on this image
    _checksum = zlib.crc32


def page_checksum(data: bytes | memoryview) -> int:
    """The 32-bit checksum stored in a page's trailer (CRC-32C or CRC-32)."""
    return _checksum(data) & 0xFFFFFFFF


def verify_page(data: bytes) -> None:
    """Validate one encoded page's checksum trailer.

    Raises :class:`~repro.storage.errors.CorruptPageError` when the page
    is too short to carry header + trailer or the trailer does not match
    the checksum of the preceding bytes — the signature of a torn write
    or a bit-flip.
    """
    if len(data) < PAGE_HEADER.size + PAGE_TRAILER.size:
        raise CorruptPageError(
            f"page of {len(data)} bytes is too short for header and checksum trailer"
        )
    view = memoryview(data)
    (stored,) = PAGE_TRAILER.unpack_from(data, len(data) - PAGE_TRAILER.size)
    actual = page_checksum(view[: len(data) - PAGE_TRAILER.size])
    if stored != actual:
        raise CorruptPageError(
            f"page checksum mismatch: trailer {stored:#010x}, computed {actual:#010x}"
        )


def page_intact(data: bytes) -> bool:
    """Whether one encoded page passes checksum validation."""
    try:
        verify_page(data)
    except CorruptPageError:
        return False
    return True


def _seal_page(payload: bytearray, page_size: int) -> bytes:
    """Pad a header+records payload to the page size and append the trailer."""
    payload.extend(bytes(page_size - PAGE_TRAILER.size - len(payload)))
    payload.extend(PAGE_TRAILER.pack(page_checksum(payload)))
    return bytes(payload)


class RecordCodec(Protocol[RecordT]):
    """Binary (de)serialisation of one record type with a fixed size."""

    @property
    def record_size(self) -> int:
        """Size of one encoded record in bytes."""
        ...

    @property
    def dtype(self) -> "np.dtype | None":
        """A structured dtype mirroring the byte layout, or ``None``.

        When present, pages of this record type can be decoded and encoded
        through the array surface (:func:`decode_page_array`), skipping
        per-record Python objects entirely.
        """
        ...

    def pack(self, record: RecordT) -> bytes:
        """Encode one record into exactly ``record_size`` bytes."""
        ...

    def unpack(self, data: bytes) -> RecordT:
        """Decode one record from exactly ``record_size`` bytes."""
        ...


class FixedRecordCodec(Generic[RecordT]):
    """A codec built from a :mod:`struct` format and field (un)binding functions.

    Parameters
    ----------
    fmt:
        ``struct`` format string (little-endian recommended).
    to_fields:
        Maps a record to the tuple of values packed by ``fmt``.
    from_fields:
        Maps an unpacked tuple back to a record.
    dtype:
        Optional NumPy structured dtype whose byte layout matches ``fmt``
        exactly; it unlocks the zero-copy array surface of
        :class:`~repro.storage.pagedfile.PagedFile`.
    """

    def __init__(self, fmt: str, to_fields, from_fields, dtype: np.dtype | None = None) -> None:
        self._struct = struct.Struct(fmt)
        self._to_fields = to_fields
        self._from_fields = from_fields
        if dtype is not None and dtype.itemsize != self._struct.size:
            raise ValueError(
                f"dtype itemsize {dtype.itemsize} does not match the "
                f"{self._struct.size}-byte struct format {fmt!r}"
            )
        self._dtype = dtype

    @property
    def record_size(self) -> int:
        """Size of one encoded record in bytes."""
        return self._struct.size

    @property
    def dtype(self) -> np.dtype | None:
        """The structured dtype mirroring the byte layout (if declared)."""
        return self._dtype

    def pack(self, record: RecordT) -> bytes:
        """Encode one record."""
        return self._struct.pack(*self._to_fields(record))

    def unpack(self, data: bytes) -> RecordT:
        """Decode one record."""
        return self._from_fields(self._struct.unpack(data))


def records_per_page(record_size: int, page_size: int) -> int:
    """How many records of ``record_size`` bytes fit in one page.

    The header and the checksum trailer both come out of the page budget.
    """
    capacity = (page_size - PAGE_HEADER.size - PAGE_TRAILER.size) // record_size
    if capacity < 1:
        raise ValueError(
            f"a record of {record_size} bytes does not fit in a {page_size}-byte page"
        )
    return capacity


def encode_page(
    codec: RecordCodec[RecordT], records: Sequence[RecordT], page_size: int
) -> bytes:
    """Pack up to one page worth of records into exactly ``page_size`` bytes."""
    capacity = records_per_page(codec.record_size, page_size)
    if len(records) > capacity:
        raise ValueError(f"{len(records)} records exceed page capacity {capacity}")
    payload = bytearray(PAGE_HEADER.pack(len(records)))
    for record in records:
        payload.extend(codec.pack(record))
    return _seal_page(payload, page_size)


def page_header_fields(data) -> tuple[int, int]:
    """Split one page's header word into ``(record count, codec id)``.

    ``codec id`` is 0 for uncompressed pages (including every page written
    before compression existed — their flag bits are zero).
    """
    (word,) = PAGE_HEADER.unpack_from(data, 0)
    count = word & PAGE_COUNT_MASK
    if not word & PAGE_FLAG_COMPRESSED:
        return count, 0
    return count, (word & _CODEC_ID_MASK) >> _CODEC_ID_SHIFT


def _compressed_payload(data, count: int, codec_id: int, record_size: int) -> bytes:
    """Decompress the record payload of one compressed page (verified)."""
    (length,) = _COMPRESSED_LEN.unpack_from(data, PAGE_HEADER.size)
    start = PAGE_HEADER.size + _COMPRESSED_LEN.size
    if start + length > len(data) - PAGE_TRAILER.size:
        raise CorruptPageError(
            f"compressed payload of {length} bytes overruns the page"
        )
    raw = _decompress(codec_id, bytes(data[start : start + length]))
    if len(raw) != count * record_size:
        raise CorruptPageError(
            f"compressed page decodes to {len(raw)} bytes, header claims "
            f"{count} records of {record_size} bytes"
        )
    return raw


def decode_page(codec: RecordCodec[RecordT], data: bytes) -> list[RecordT]:
    """Unpack all records stored in one page (checksum verified first)."""
    verify_page(data)
    count, codec_id = page_header_fields(data)
    size = codec.record_size
    if codec_id:
        data = _compressed_payload(data, count, codec_id, size)
        offset = 0
    else:
        offset = PAGE_HEADER.size
    records: list[RecordT] = []
    for _ in range(count):
        records.append(codec.unpack(data[offset : offset + size]))
        offset += size
    return records


def decode_page_array(dtype: np.dtype, data) -> np.ndarray:
    """Decode one page into a structured array without copying the payload.

    The returned array is a read-only ``np.frombuffer`` view over the page
    bytes: decoding is one checksum pass plus pointer arithmetic, no
    matter how many records the page holds (compressed pages additionally
    pay one decompression pass into fresh immutable bytes).  Values are
    bit-identical to what :func:`decode_page` produces through the scalar
    codec.  ``data`` may be any buffer (bytes, a shared-memory slice or an
    ``mmap`` view); the result is always read-only.
    """
    verify_page(data)
    count, codec_id = page_header_fields(data)
    if codec_id:
        raw = _compressed_payload(data, count, codec_id, dtype.itemsize)
        return np.frombuffer(raw, dtype=dtype, count=count)
    available = (len(data) - PAGE_HEADER.size - PAGE_TRAILER.size) // dtype.itemsize
    if count > available:
        raise CorruptPageError(
            f"page header claims {count} records but only {available} fit in the page"
        )
    decoded = np.frombuffer(data, dtype=dtype, count=count, offset=PAGE_HEADER.size)
    if decoded.flags.writeable:
        # bytes-backed views are born read-only; views over writable
        # buffers (shared memory, a writable mmap) must be frozen too so
        # no caller can corrupt the shared page image in place.
        decoded.setflags(write=False)
    return decoded


def encode_page_array(records: np.ndarray, page_size: int) -> bytes:
    """Pack up to one page worth of structured records into page bytes.

    Byte-identical to :func:`encode_page` over the equivalent record
    objects, provided the array's dtype mirrors the codec layout.
    """
    capacity = records_per_page(records.dtype.itemsize, page_size)
    if len(records) > capacity:
        raise ValueError(f"{len(records)} records exceed page capacity {capacity}")
    payload = bytearray(PAGE_HEADER.pack(len(records)))
    payload.extend(records.tobytes())
    return _seal_page(payload, page_size)


def paginate_array(records: np.ndarray, page_size: int) -> list[bytes]:
    """Split a structured array into encoded pages (all full except the last)."""
    capacity = records_per_page(records.dtype.itemsize, page_size)
    return [
        encode_page_array(records[start : start + capacity], page_size)
        for start in range(0, len(records), capacity)
    ]


def _seal_compressed_page(
    raw: bytes, count: int, codec_id: int, page_size: int
) -> bytes | None:
    """Try to pack ``count`` records (``raw`` bytes) into one compressed page.

    Returns the sealed page, or ``None`` when the compressed payload does
    not fit in the page budget (incompressible data).
    """
    budget = page_size - PAGE_HEADER.size - _COMPRESSED_LEN.size - PAGE_TRAILER.size
    compressed = _compress(codec_id, raw)
    if len(compressed) > budget:
        return None
    word = count | PAGE_FLAG_COMPRESSED | (codec_id << _CODEC_ID_SHIFT)
    payload = bytearray(PAGE_HEADER.pack(word))
    payload.extend(_COMPRESSED_LEN.pack(len(compressed)))
    payload.extend(compressed)
    return _seal_page(payload, page_size)


def paginate_bytes_compressed(
    data: bytes, record_size: int, page_size: int, compression: str
) -> list[bytes]:
    """Split a packed record payload into compressed pages.

    ``data`` is the concatenation of fixed-size record encodings (what the
    scalar codec packs, or ``records.tobytes()`` from the array surface —
    both produce identical bytes).  Each page greedily packs the largest
    record count, from a deterministic ladder of multiples of the
    uncompressed page capacity, whose compressed payload fits the page;
    when even one capacity's worth of records does not compress into the
    budget (incompressible data), that chunk is stored as a plain
    uncompressed page — the per-page flag bits let readers mix freely.
    The packing is a pure function of the input bytes, so every clone of a
    dataset produces byte-identical files.
    """
    codec_id = _codec_id(compression)
    capacity = records_per_page(record_size, page_size)
    total = len(data) // record_size
    if len(data) != total * record_size:
        raise ValueError(
            f"payload of {len(data)} bytes is not a whole number of "
            f"{record_size}-byte records"
        )
    pages: list[bytes] = []
    position = 0
    while position < total:
        remaining = total - position
        taken = None
        for factor in (8, 4, 2, 1):
            count = min(remaining, capacity * factor)
            if count > PAGE_COUNT_MASK:
                continue
            start = position * record_size
            raw = data[start : start + count * record_size]
            page = _seal_compressed_page(raw, count, codec_id, page_size)
            if page is not None:
                taken = (count, page)
                break
            if count <= capacity:
                break  # smaller factors repeat the same count
        if taken is None:
            count = min(remaining, capacity)
            start = position * record_size
            payload = bytearray(PAGE_HEADER.pack(count))
            payload.extend(data[start : start + count * record_size])
            pages.append(_seal_page(payload, page_size))
        else:
            count, page = taken
            pages.append(page)
        position += count
    return pages


def paginate(
    codec: RecordCodec[RecordT], records: Iterable[RecordT], page_size: int
) -> list[bytes]:
    """Split a record stream into encoded pages (all full except possibly the last)."""
    capacity = records_per_page(codec.record_size, page_size)
    pages: list[bytes] = []
    batch: list[RecordT] = []
    for record in records:
        batch.append(record)
        if len(batch) == capacity:
            pages.append(encode_page(codec, batch, page_size))
            batch = []
    if batch:
        pages.append(encode_page(codec, batch, page_size))
    return pages
