"""Record codecs: fixed-size records packed into pages.

All files in the reproduction (raw dataset files, index partitions, R-tree
nodes, merge files) store fixed-size binary records.  A codec knows how to
turn a record into bytes and back; :class:`~repro.storage.pagedfile.PagedFile`
uses it to pack as many records as fit into each 4 KB page.

Each page starts with a 4-byte little-endian record count so that partially
filled pages decode unambiguously.

Two decoding surfaces share this page format:

* the *scalar* surface (:func:`encode_page` / :func:`decode_page`) packs and
  unpacks one Python record object at a time through a
  :class:`RecordCodec`;
* the *array* surface (:func:`encode_page_array` / :func:`decode_page_array`)
  moves whole pages between bytes and NumPy structured arrays in one
  ``np.frombuffer`` / ``tobytes`` call, without materialising per-record
  Python objects.  A codec that exposes a :attr:`RecordCodec.dtype` whose
  layout mirrors its ``struct`` format byte-for-byte guarantees both
  surfaces read and write identical bytes.
"""

from __future__ import annotations

import struct
from typing import Generic, Iterable, Protocol, Sequence, TypeVar

import numpy as np

RecordT = TypeVar("RecordT")

#: Per-page header: number of records stored in the page (uint32, little endian).
PAGE_HEADER = struct.Struct("<I")


class RecordCodec(Protocol[RecordT]):
    """Binary (de)serialisation of one record type with a fixed size."""

    @property
    def record_size(self) -> int:
        """Size of one encoded record in bytes."""
        ...

    @property
    def dtype(self) -> "np.dtype | None":
        """A structured dtype mirroring the byte layout, or ``None``.

        When present, pages of this record type can be decoded and encoded
        through the array surface (:func:`decode_page_array`), skipping
        per-record Python objects entirely.
        """
        ...

    def pack(self, record: RecordT) -> bytes:
        """Encode one record into exactly ``record_size`` bytes."""
        ...

    def unpack(self, data: bytes) -> RecordT:
        """Decode one record from exactly ``record_size`` bytes."""
        ...


class FixedRecordCodec(Generic[RecordT]):
    """A codec built from a :mod:`struct` format and field (un)binding functions.

    Parameters
    ----------
    fmt:
        ``struct`` format string (little-endian recommended).
    to_fields:
        Maps a record to the tuple of values packed by ``fmt``.
    from_fields:
        Maps an unpacked tuple back to a record.
    dtype:
        Optional NumPy structured dtype whose byte layout matches ``fmt``
        exactly; it unlocks the zero-copy array surface of
        :class:`~repro.storage.pagedfile.PagedFile`.
    """

    def __init__(self, fmt: str, to_fields, from_fields, dtype: np.dtype | None = None) -> None:
        self._struct = struct.Struct(fmt)
        self._to_fields = to_fields
        self._from_fields = from_fields
        if dtype is not None and dtype.itemsize != self._struct.size:
            raise ValueError(
                f"dtype itemsize {dtype.itemsize} does not match the "
                f"{self._struct.size}-byte struct format {fmt!r}"
            )
        self._dtype = dtype

    @property
    def record_size(self) -> int:
        """Size of one encoded record in bytes."""
        return self._struct.size

    @property
    def dtype(self) -> np.dtype | None:
        """The structured dtype mirroring the byte layout (if declared)."""
        return self._dtype

    def pack(self, record: RecordT) -> bytes:
        """Encode one record."""
        return self._struct.pack(*self._to_fields(record))

    def unpack(self, data: bytes) -> RecordT:
        """Decode one record."""
        return self._from_fields(self._struct.unpack(data))


def records_per_page(record_size: int, page_size: int) -> int:
    """How many records of ``record_size`` bytes fit in one page."""
    capacity = (page_size - PAGE_HEADER.size) // record_size
    if capacity < 1:
        raise ValueError(
            f"a record of {record_size} bytes does not fit in a {page_size}-byte page"
        )
    return capacity


def encode_page(
    codec: RecordCodec[RecordT], records: Sequence[RecordT], page_size: int
) -> bytes:
    """Pack up to one page worth of records into page bytes."""
    capacity = records_per_page(codec.record_size, page_size)
    if len(records) > capacity:
        raise ValueError(f"{len(records)} records exceed page capacity {capacity}")
    payload = bytearray(PAGE_HEADER.pack(len(records)))
    for record in records:
        payload.extend(codec.pack(record))
    return bytes(payload)


def decode_page(codec: RecordCodec[RecordT], data: bytes) -> list[RecordT]:
    """Unpack all records stored in one page."""
    (count,) = PAGE_HEADER.unpack_from(data, 0)
    size = codec.record_size
    records: list[RecordT] = []
    offset = PAGE_HEADER.size
    for _ in range(count):
        records.append(codec.unpack(data[offset : offset + size]))
        offset += size
    return records


def decode_page_array(dtype: np.dtype, data: bytes) -> np.ndarray:
    """Decode one page into a structured array without copying the payload.

    The returned array is a read-only ``np.frombuffer`` view over the page
    bytes: decoding is one header read plus pointer arithmetic, no matter
    how many records the page holds.  Values are bit-identical to what
    :func:`decode_page` produces through the scalar codec.
    """
    (count,) = PAGE_HEADER.unpack_from(data, 0)
    available = (len(data) - PAGE_HEADER.size) // dtype.itemsize
    if count > available:
        raise ValueError(
            f"page header claims {count} records but only {available} fit in the page"
        )
    return np.frombuffer(data, dtype=dtype, count=count, offset=PAGE_HEADER.size)


def encode_page_array(records: np.ndarray, page_size: int) -> bytes:
    """Pack up to one page worth of structured records into page bytes.

    Byte-identical to :func:`encode_page` over the equivalent record
    objects, provided the array's dtype mirrors the codec layout.
    """
    capacity = records_per_page(records.dtype.itemsize, page_size)
    if len(records) > capacity:
        raise ValueError(f"{len(records)} records exceed page capacity {capacity}")
    return PAGE_HEADER.pack(len(records)) + records.tobytes()


def paginate_array(records: np.ndarray, page_size: int) -> list[bytes]:
    """Split a structured array into encoded pages (all full except the last)."""
    capacity = records_per_page(records.dtype.itemsize, page_size)
    return [
        encode_page_array(records[start : start + capacity], page_size)
        for start in range(0, len(records), capacity)
    ]


def paginate(
    codec: RecordCodec[RecordT], records: Iterable[RecordT], page_size: int
) -> list[bytes]:
    """Split a record stream into encoded pages (all full except possibly the last)."""
    capacity = records_per_page(codec.record_size, page_size)
    pages: list[bytes] = []
    batch: list[RecordT] = []
    for record in records:
        batch.append(record)
        if len(batch) == capacity:
            pages.append(encode_page(codec, batch, page_size))
            batch = []
    if batch:
        pages.append(encode_page(codec, batch, page_size))
    return pages
