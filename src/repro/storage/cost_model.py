"""Analytical disk cost model and I/O accounting.

The paper measures wall-clock time on a machine with two SAS disks where the
OS caches are dropped before every query, so run-times are essentially a
function of (a) how many pages each approach touches and (b) whether it
touches them sequentially or randomly.  :class:`DiskModel` captures exactly
those two effects with a classical seek + transfer model and adds a small
per-record CPU term so that purely in-memory work (intersection tests,
sorting during bulk loads) is not entirely free.

:class:`IOStats` is the mutable accumulator owned by the
:class:`~repro.storage.disk.Disk`; the benchmark harness snapshots it before
and after each phase to attribute simulated time to indexing vs querying.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.storage.page import PAGE_SIZE


class AccessKind(enum.Enum):
    """Whether a page access continues the previous one or requires a seek."""

    SEQUENTIAL = "sequential"
    RANDOM = "random"


@dataclass(frozen=True, slots=True)
class DiskModel:
    """Timing parameters of the simulated disk.

    The defaults approximate the 2012-era SAS disks used in the paper:
    ~8 ms average positioning time and ~150 MB/s sustained sequential
    bandwidth.  ``cpu_per_record_s`` charges a small constant per record
    processed (decoded, compared or sorted) so CPU-heavy build phases such
    as STR sorting are not free; it is deliberately orders of magnitude
    below the I/O terms because the paper's workloads are disk-bound.
    """

    page_size: int = PAGE_SIZE
    seek_time_s: float = 8e-3
    transfer_rate_bytes_per_s: float = 150e6
    cpu_per_record_s: float = 2e-7

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")
        if self.seek_time_s < 0:
            raise ValueError("seek_time_s must be non-negative")
        if self.transfer_rate_bytes_per_s <= 0:
            raise ValueError("transfer_rate_bytes_per_s must be positive")
        if self.cpu_per_record_s < 0:
            raise ValueError("cpu_per_record_s must be non-negative")

    @property
    def page_transfer_time_s(self) -> float:
        """Time to transfer one page once the head is positioned."""
        return self.page_size / self.transfer_rate_bytes_per_s

    def access_time_s(self, kind: AccessKind, pages: int = 1) -> float:
        """Simulated time for an access of ``pages`` contiguous pages.

        A random access pays one seek plus the transfer; a sequential access
        pays only the transfer (the head is already positioned).
        """
        if pages < 0:
            raise ValueError("pages must be non-negative")
        transfer = pages * self.page_transfer_time_s
        if kind is AccessKind.RANDOM:
            return self.seek_time_s + transfer
        return transfer

    def cpu_time_s(self, records: int) -> float:
        """Simulated CPU time for processing ``records`` records."""
        if records < 0:
            raise ValueError("records must be non-negative")
        return records * self.cpu_per_record_s


@dataclass(slots=True)
class IOStats:
    """Accumulated I/O and CPU accounting.

    All counters are cumulative; use :meth:`snapshot` and
    :meth:`delta_since` to measure individual phases (the benchmark runner
    uses this to separate indexing time from querying time, as Figure 4 of
    the paper does).
    """

    pages_read: int = 0
    pages_written: int = 0
    seeks: int = 0
    cache_hits: int = 0
    io_seconds: float = 0.0
    cpu_seconds: float = 0.0
    retries: int = 0
    corrupt_reads_detected: int = 0
    retry_giveups: int = 0
    reads_by_kind: dict[str, int] = field(
        default_factory=lambda: {AccessKind.SEQUENTIAL.value: 0, AccessKind.RANDOM.value: 0}
    )

    @property
    def simulated_seconds(self) -> float:
        """Total simulated time (I/O plus CPU)."""
        return self.io_seconds + self.cpu_seconds

    def record_read(self, kind: AccessKind, pages: int, seconds: float) -> None:
        """Account for a read of ``pages`` pages of the given kind."""
        self.pages_read += pages
        self.reads_by_kind[kind.value] += pages
        if kind is AccessKind.RANDOM:
            self.seeks += 1
        self.io_seconds += seconds

    def record_write(self, kind: AccessKind, pages: int, seconds: float) -> None:
        """Account for a write of ``pages`` pages of the given kind."""
        self.pages_written += pages
        if kind is AccessKind.RANDOM:
            self.seeks += 1
        self.io_seconds += seconds

    def record_cache_hit(self, pages: int = 1) -> None:
        """Account for a read served entirely by the buffer pool."""
        self.cache_hits += pages

    def record_cpu(self, seconds: float) -> None:
        """Account for simulated CPU work."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self.cpu_seconds += seconds

    def record_retry_event(self, event: str) -> None:
        """Account for retry-layer activity (events from
        :mod:`repro.storage.retry`): a retry run, a checksum-failed read,
        or an exhausted retry budget."""
        if event == "retry":
            self.retries += 1
        elif event == "corrupt_read":
            self.corrupt_reads_detected += 1
        elif event == "exhausted":
            self.retry_giveups += 1

    def snapshot(self) -> "IOStats":
        """An immutable copy of the current counters."""
        return IOStats(
            pages_read=self.pages_read,
            pages_written=self.pages_written,
            seeks=self.seeks,
            cache_hits=self.cache_hits,
            io_seconds=self.io_seconds,
            cpu_seconds=self.cpu_seconds,
            retries=self.retries,
            corrupt_reads_detected=self.corrupt_reads_detected,
            retry_giveups=self.retry_giveups,
            reads_by_kind=dict(self.reads_by_kind),
        )

    def delta_since(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated since ``earlier`` was snapshotted."""
        return IOStats(
            pages_read=self.pages_read - earlier.pages_read,
            pages_written=self.pages_written - earlier.pages_written,
            seeks=self.seeks - earlier.seeks,
            cache_hits=self.cache_hits - earlier.cache_hits,
            io_seconds=self.io_seconds - earlier.io_seconds,
            cpu_seconds=self.cpu_seconds - earlier.cpu_seconds,
            retries=self.retries - earlier.retries,
            corrupt_reads_detected=self.corrupt_reads_detected
            - earlier.corrupt_reads_detected,
            retry_giveups=self.retry_giveups - earlier.retry_giveups,
            reads_by_kind={
                key: self.reads_by_kind[key] - earlier.reads_by_kind.get(key, 0)
                for key in self.reads_by_kind
            },
        )
