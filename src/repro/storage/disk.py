"""The simulated disk facade.

Every index structure in the library performs its page I/O through a
:class:`Disk`.  The disk combines three responsibilities:

* delegate the actual bytes to a :class:`~repro.storage.backend.StorageBackend`;
* classify every access as sequential or random by tracking the head
  position (last file and page touched) and charge the
  :class:`~repro.storage.cost_model.DiskModel` accordingly, accumulating the
  result in :class:`~repro.storage.cost_model.IOStats`;
* serve reads from an LRU :class:`~repro.storage.buffer.BufferPool` with a
  bounded page budget — cached reads are free, mirroring OS page caching,
  and :meth:`Disk.clear_cache` mirrors the paper's explicit cache dropping
  before every query.

Reads served by the cache do **not** move the simulated head, exactly as a
cached read would not move a real disk arm.

Thread safety
-------------
Every page access and every cost charge runs under one internal lock, so
concurrent readers (the thread-parallel batch executor of
:mod:`repro.core.parallel`) can never corrupt the head position, the
:class:`~repro.storage.cost_model.IOStats` accumulators or the buffer
pool's byte layer.  The lock covers only the cheap bookkeeping + page-copy
work; page *decoding* and filtering happen outside it (in
:class:`~repro.storage.pagedfile.PagedFile`), which is where parallel
wall-clock time is actually spent.  With ``buffer_shards > 1`` the pool is
a lock-striped :class:`~repro.storage.buffer.ShardedBufferPool`, so the
decoded-array layer — accessed outside the disk lock — stripes its
contention across shards too.

Snapshot sinks (MVCC pre-images)
--------------------------------
The epoch layer (:mod:`repro.core.epoch`) registers a *snapshot sink* via
:meth:`Disk.add_snapshot_sink`.  Before a page is overwritten in place
(:meth:`write_page` on an existing page) or a file is deleted
(:meth:`delete_file`), the disk hands each sink the page's *pre-image*
bytes — still under the disk lock, so retention is atomic with the
destructive write.  Appends never destroy data and are not retained.
Pre-image capture is pure bookkeeping: it reads the backend directly and
charges nothing, so it cannot perturb the simulated I/O trace, and
snapshot readers replay those retained bytes through
:meth:`read_run_at` — same lock, same charging rules as :meth:`read_run`
for the pages that still come from the live file.
"""

from __future__ import annotations

import threading
from typing import Iterable, Iterator, Sequence

from repro.storage.backend import InMemoryBackend, StorageBackend, StorageError
from repro.storage.buffer import BufferPool, ShardedBufferPool
from repro.storage.cost_model import AccessKind, DiskModel, IOStats


class Disk:
    """Paged storage with cost accounting and a bounded buffer pool.

    Parameters
    ----------
    backend:
        Where page bytes live.  Defaults to a fresh in-memory backend.
    model:
        The analytical timing model.  Defaults to paper-like SAS-disk
        parameters.
    buffer_pages:
        Capacity of the LRU buffer pool in pages.  ``0`` disables caching.
    buffer_shards:
        Number of lock-striped buffer-pool shards.  ``1`` (the default)
        keeps the single global-LRU :class:`BufferPool` — bit-identical to
        the pre-sharding behaviour; larger values use a
        :class:`~repro.storage.buffer.ShardedBufferPool` so concurrent
        readers stripe their cache contention.
    """

    def __init__(
        self,
        backend: StorageBackend | None = None,
        model: DiskModel | None = None,
        buffer_pages: int = 0,
        buffer_shards: int = 1,
    ) -> None:
        self._model = model or DiskModel()
        self._backend = backend or InMemoryBackend(page_size=self._model.page_size)
        if self._backend.page_size != self._model.page_size:
            raise ValueError(
                "backend and model disagree on page size: "
                f"{self._backend.page_size} vs {self._model.page_size}"
            )
        if buffer_shards < 1:
            raise ValueError("buffer_shards must be >= 1")
        self._buffer: BufferPool | ShardedBufferPool = (
            ShardedBufferPool(buffer_pages, buffer_shards)
            if buffer_shards > 1
            else BufferPool(buffer_pages)
        )
        self._stats = IOStats()
        self._head: tuple[str, int] | None = None
        self._lock = threading.RLock()
        self._snapshot_sinks: list = []
        self._tracer = None
        # A retry-capable backend (repro.storage.retry.RetryingBackend)
        # exposes add_retry_listener; fold its activity into IOStats so
        # retries are visible wherever I/O accounting already flows.
        register = getattr(self._backend, "add_retry_listener", None)
        if register is not None:
            register(self._on_retry_event)

    def _on_retry_event(self, event: str) -> None:
        with self._lock:  # RLock: safe when the op already holds it
            self._stats.record_retry_event(event)
        if self._tracer is not None:
            self._tracer.event("disk.retry", event=event)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def model(self) -> DiskModel:
        """The timing model in use."""
        return self._model

    @property
    def backend(self) -> StorageBackend:
        """The page store holding this disk's bytes."""
        return self._backend

    @property
    def page_size(self) -> int:
        """Page size in bytes."""
        return self._model.page_size

    def mmap_descriptor(self, name: str) -> tuple[str, int] | None:
        """``(path, page_size)`` for zero-copy page access, if available.

        The process-parallel executor ships this descriptor to its worker
        processes, which ``mmap`` the file read-only and decode pages
        straight over the mapping.  Only a *plain*
        :class:`~repro.storage.backend.FileSystemBackend` qualifies:
        wrapped backends (fault injection, retry layers) must keep every
        read on the normal :meth:`read_run` path so their semantics are
        preserved, and in-memory backends have no file to map — those
        cases return ``None`` and the executor stages page bytes through
        shared memory instead.  mmap reads bypass the cost accounting and
        the buffer pool (a documented deviation of the process engine:
        the simulated I/O trace is already execution-order-dependent for
        any parallel mode and never feeds back into results or adaptive
        decisions).
        """
        from repro.storage.backend import FileSystemBackend

        if type(self._backend) is not FileSystemBackend:
            return None
        if not self.file_exists(name):
            return None
        return str(self._backend.page_file_path(name)), self.page_size

    @property
    def stats(self) -> IOStats:
        """The cumulative I/O statistics — a **live view**.

        This is the disk's own mutable accumulator, shared with every
        concurrent operation; two attribute reads may observe different
        in-flight states.  Use :meth:`stats_snapshot` for an atomic,
        immutable copy.
        """
        return self._stats

    def stats_snapshot(self) -> IOStats:
        """An atomic immutable copy of the I/O statistics.

        Taken under the disk lock, so no concurrent page access can be
        half-accounted in the copy.
        """
        with self._lock:
            return self._stats.snapshot()

    def attach_tracer(self, tracer) -> None:
        """Attach (or with ``None``, detach) a :class:`~repro.obs.trace.
        Tracer` recording page-I/O and retry events.  Observation only:
        tracing changes no charging, no caching and no head movement.
        """
        self._tracer = tracer

    @property
    def buffer_pool(self) -> BufferPool | ShardedBufferPool:
        """The LRU buffer pool (sharded when ``buffer_shards > 1``)."""
        return self._buffer

    def clear_cache(self) -> None:
        """Drop all cached pages (paper methodology: before every query)."""
        with self._lock:
            self._buffer.clear()

    def reset_head(self) -> None:
        """Forget the head position so the next access is charged a seek."""
        with self._lock:
            self._head = None

    # ------------------------------------------------------------------ #
    # Snapshot sinks (MVCC pre-image retention)
    # ------------------------------------------------------------------ #

    def add_snapshot_sink(self, sink) -> None:
        """Register an object whose ``retain(name, page_no, data)`` is
        called — under the disk lock — with the pre-image of every page
        about to be destroyed by an in-place overwrite or a file delete.
        """
        with self._lock:
            self._snapshot_sinks.append(sink)

    def _retain_pre_image(self, name: str, page_no: int) -> None:
        """Hand the current bytes of one page to every snapshot sink.

        Called under the disk lock, immediately before the page is
        destroyed.  The backend read is uncharged: retention is snapshot
        bookkeeping, not simulated I/O.
        """
        data = self._backend.read(name, page_no)
        for sink in self._snapshot_sinks:
            sink.retain(name, page_no, data)

    # ------------------------------------------------------------------ #
    # File lifecycle
    # ------------------------------------------------------------------ #

    def create_file(self, name: str) -> None:
        """Create an empty file."""
        self._backend.create(name)

    def delete_file(self, name: str) -> None:
        """Delete a file, dropping any cached pages it had."""
        with self._lock:
            if self._snapshot_sinks:
                for page_no in range(self._backend.num_pages(name)):
                    self._retain_pre_image(name, page_no)
            self._backend.delete(name)
            self._buffer.invalidate_file(name)
            if self._head is not None and self._head[0] == name:
                self._head = None

    def file_exists(self, name: str) -> bool:
        """Whether the file exists."""
        return self._backend.exists(name)

    def list_files(self) -> list[str]:
        """Names of all files."""
        return self._backend.list_files()

    def num_pages(self, name: str) -> int:
        """Number of pages in a file."""
        return self._backend.num_pages(name)

    def file_size_bytes(self, name: str) -> int:
        """Size of a file in bytes."""
        return self.num_pages(name) * self.page_size

    # ------------------------------------------------------------------ #
    # Page I/O
    # ------------------------------------------------------------------ #

    def read_page(self, name: str, page_no: int) -> bytes:
        """Read one page, charging a seek if the head is elsewhere."""
        with self._lock:
            cached = self._buffer.get(name, page_no)
            if cached is not None:
                self._stats.record_cache_hit()
                return cached
            kind = self._classify(name, page_no)
            try:
                data = self._backend.read(name, page_no)
            except StorageError:
                # Nothing was read: make sure no layer of the pool keeps
                # an entry for a page we just failed to materialise.
                self._buffer.invalidate_page(name, page_no)
                raise
            self._charge_read(kind, 1)
            self._advance_head(name, page_no)
            self._buffer.put(name, page_no, data)
            return data

    def read_run(self, name: str, start: int, count: int) -> list[bytes]:
        """Read ``count`` consecutive pages starting at ``start``.

        The run is charged as one positioning operation plus sequential
        transfers for the uncached pages; cached pages inside the run are
        free and do not break the sequential charging of the rest (the real
        disk would stream through them anyway).
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        with self._lock:
            pages: list[bytes] = []
            uncached = 0
            first_uncached: int | None = None
            for offset in range(count):
                page_no = start + offset
                cached = self._buffer.get(name, page_no)
                if cached is not None:
                    self._stats.record_cache_hit()
                    pages.append(cached)
                    continue
                try:
                    data = self._backend.read(name, page_no)
                except StorageError:
                    self._buffer.invalidate_page(name, page_no)
                    raise
                if first_uncached is None:
                    first_uncached = page_no
                uncached += 1
                pages.append(data)
                self._buffer.put(name, page_no, data)
            if uncached:
                assert first_uncached is not None
                kind = self._classify(name, first_uncached)
                self._charge_read(kind, uncached)
                self._advance_head(name, start + count - 1)
            if self._tracer is not None:
                self._tracer.event(
                    "disk.read_run", file=name, pages=count, uncached=uncached
                )
            return pages

    def read_run_at(self, name: str, start: int, count: int, lookup) -> list[bytes]:
        """Read a run as of a pinned snapshot.

        ``lookup(name, page_no)`` consults the snapshot's retained
        pre-image overlay: when it returns bytes, the page was overwritten
        or deleted after the snapshot was taken and the pre-image is used
        verbatim; when it returns ``None`` the live page is read with
        exactly :meth:`read_run`'s charging (cache hits recorded, one
        positioning plus sequential transfers for the uncached pages).
        Overlay-served pages are snapshot bookkeeping — free, uncharged
        and not counted as cache hits — because the live I/O trace must
        not be perturbed by a reader pinned to the past.  The whole run,
        overlay consultation included, happens under the disk lock so a
        concurrent overwrite can never interleave with it (no torn runs).
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        with self._lock:
            pages: list[bytes] = []
            uncached = 0
            first_uncached: int | None = None
            for offset in range(count):
                page_no = start + offset
                retained = lookup(name, page_no)
                if retained is not None:
                    pages.append(retained)
                    continue
                cached = self._buffer.get(name, page_no)
                if cached is not None:
                    self._stats.record_cache_hit()
                    pages.append(cached)
                    continue
                try:
                    data = self._backend.read(name, page_no)
                except StorageError:
                    self._buffer.invalidate_page(name, page_no)
                    raise
                if first_uncached is None:
                    first_uncached = page_no
                uncached += 1
                pages.append(data)
                self._buffer.put(name, page_no, data)
            if uncached:
                assert first_uncached is not None
                kind = self._classify(name, first_uncached)
                self._charge_read(kind, uncached)
                self._advance_head(name, start + count - 1)
            if self._tracer is not None:
                self._tracer.event(
                    "disk.read_run_at", file=name, pages=count, uncached=uncached
                )
            return pages

    def write_page(self, name: str, page_no: int, data: bytes) -> None:
        """Overwrite one page in place (write-through to the backend)."""
        with self._lock:
            if self._snapshot_sinks and page_no < self._backend.num_pages(name):
                self._retain_pre_image(name, page_no)
            kind = self._classify(name, page_no)
            # Drop the cached pre-write bytes first: if the write (or the
            # re-read below) fails, the pool must fall back to the
            # backend instead of serving the page's old contents.
            self._buffer.invalidate_page(name, page_no)
            self._backend.write(name, page_no, data)
            self._charge_write(kind, 1)
            self._advance_head(name, page_no)
            self._recache(name, page_no)
            if self._tracer is not None:
                self._tracer.event("disk.write_page", file=name, page=page_no)

    def append_page(self, name: str, data: bytes) -> int:
        """Append one page to the end of the file and return its number."""
        with self._lock:
            next_page = self._backend.num_pages(name)
            kind = self._classify(name, next_page)
            page_no = self._backend.append(name, data)
            self._charge_write(kind, 1)
            self._advance_head(name, page_no)
            self._recache(name, page_no)
            return page_no

    def append_run(self, name: str, pages: Sequence[bytes]) -> int:
        """Append several pages; returns the page number of the first one."""
        with self._lock:
            if not pages:
                return self._backend.num_pages(name)
            first = self._backend.num_pages(name)
            kind = self._classify(name, first)
            for data in pages:
                page_no = self._backend.append(name, data)
                self._recache(name, page_no)
            self._charge_write(kind, len(pages))
            self._advance_head(name, first + len(pages) - 1)
            if self._tracer is not None:
                self._tracer.event(
                    "disk.append_run", file=name, pages=len(pages), first_page=first
                )
            return first

    def _recache(self, name: str, page_no: int) -> None:
        """Refresh the pool with a page's post-write backend bytes.

        Caching is an optimisation on top of a write that already
        succeeded: if the uncharged re-read fails (a transient fault that
        survived the backend's own retries), the page is simply left
        uncached — with no stale entry on either pool layer — and the
        next read will fetch and charge it normally.
        """
        try:
            self._buffer.put(name, page_no, self._backend.read(name, page_no))
        except StorageError:
            self._buffer.invalidate_page(name, page_no)

    def scan_pages(self, name: str) -> Iterator[bytes]:
        """Yield every page of a file in order (charged as one sequential run)."""
        total = self.num_pages(name)
        chunk = 256
        for start in range(0, total, chunk):
            count = min(chunk, total - start)
            yield from self.read_run(name, start, count)

    # ------------------------------------------------------------------ #
    # CPU accounting
    # ------------------------------------------------------------------ #

    def charge_cpu_records(self, records: int) -> None:
        """Charge simulated CPU time for processing ``records`` records."""
        with self._lock:
            self._stats.record_cpu(self._model.cpu_time_s(records))

    def charge_cpu_seconds(self, seconds: float) -> None:
        """Charge an explicit amount of simulated CPU time."""
        with self._lock:
            self._stats.record_cpu(seconds)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _classify(self, name: str, page_no: int) -> AccessKind:
        if self._head is None:
            return AccessKind.RANDOM
        head_file, head_page = self._head
        if head_file == name and page_no == head_page + 1:
            return AccessKind.SEQUENTIAL
        return AccessKind.RANDOM

    def _advance_head(self, name: str, page_no: int) -> None:
        self._head = (name, page_no)

    def _charge_read(self, kind: AccessKind, pages: int) -> None:
        seconds = self._model.access_time_s(kind, pages)
        self._stats.record_read(kind, pages, seconds)

    def _charge_write(self, kind: AccessKind, pages: int) -> None:
        seconds = self._model.access_time_s(kind, pages)
        self._stats.record_write(kind, pages, seconds)
