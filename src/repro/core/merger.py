"""The Merger: physical co-location of hot partitions (Section 3.2).

Once a combination of datasets has been retrieved together more than ``mt``
times (and contains at least ``min_merge_combination`` datasets), the
Merger copies the partitions those queries retrieved into the combination's
append-only merge file:

* for every qualifying partition region it stores the objects of each
  member dataset as a separate, sequential segment, so future queries can
  read any subset of the merged datasets sequentially and skip the rest;
* only partitions at the same refinement level in *all* member datasets are
  merged (equal partition keys guarantee this);
* the originals are kept — merge files hold copies — and all merge files
  together are kept under a space budget by evicting the least recently
  used file.

The Merger is incremental: if a hot combination later touches partitions
that are not yet in its merge file, they are appended (the file is
append-only, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.config import OdysseyConfig
from repro.core.cost import AdaptiveMergePolicy, MergeCostModel
from repro.core.merge import MergeDirectory, MergeFileInfo, merge_file_name
from repro.core.partition import PartitionKey, PartitionTree
from repro.core.statistics import Combination, CombinationStats, StatisticsCollector
from repro.data.spatial_object import SpatialObject, spatial_object_codec
from repro.storage.disk import Disk
from repro.storage.pagedfile import PagedFile


@dataclass(frozen=True, slots=True)
class MergeOutcome:
    """What the Merger did in response to one query's statistics update."""

    merged: bool = False
    combination: Combination = frozenset()
    new_partitions: int = 0
    evicted_combinations: tuple[Combination, ...] = ()
    skipped_reason: str = ""


class Merger:
    """Creates, extends and evicts merge files."""

    def __init__(
        self,
        disk: Disk,
        config: OdysseyConfig,
        directory: MergeDirectory,
        statistics: StatisticsCollector,
        dimension: int,
    ) -> None:
        self._disk = disk
        self._config = config
        self._directory = directory
        self._statistics = statistics
        self._codec = spatial_object_codec(dimension)
        self._open_files: dict[Combination, PagedFile[SpatialObject]] = {}
        self._adaptive_policy: AdaptiveMergePolicy | None = None
        if config.adaptive_merge_threshold:
            self._adaptive_policy = AdaptiveMergePolicy(
                MergeCostModel(disk.model), config.merge_threshold
            )
        self._merges_performed = 0
        self._partitions_merged = 0
        self._evictions = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def merges_performed(self) -> int:
        """Number of merge operations (file creations or extensions)."""
        return self._merges_performed

    @property
    def partitions_merged(self) -> int:
        """Total partition copies written into merge files."""
        return self._partitions_merged

    @property
    def evictions(self) -> int:
        """Number of merge files evicted to respect the space budget."""
        return self._evictions

    def merge_file(self, combination: Combination) -> PagedFile[SpatialObject]:
        """The paged file of a combination's merge file (opened lazily)."""
        file = self._open_files.get(combination)
        if file is None:
            file = PagedFile(self._disk, merge_file_name(combination), self._codec)
            self._open_files[combination] = file
        return file

    # ------------------------------------------------------------------ #
    # Merging
    # ------------------------------------------------------------------ #

    def maybe_merge(
        self,
        combination: Combination,
        trees: Mapping[int, PartitionTree],
    ) -> MergeOutcome:
        """Merge the combination's hot partitions if the trigger conditions hold."""
        if not self._config.enable_merging:
            return MergeOutcome(skipped_reason="merging disabled")
        if len(combination) < self._config.min_merge_combination:
            return MergeOutcome(skipped_reason="combination too small")
        stats = self._statistics.combination_stats(combination)
        if stats is None:
            return MergeOutcome(skipped_reason="combination never queried")
        candidate_keys = self._qualifying_keys(combination, stats, trees)
        if not self._trigger(combination, stats.count, candidate_keys, trees):
            return MergeOutcome(skipped_reason="below merge threshold")
        existing = self._directory.get(combination)
        new_keys = [
            key
            for key in sorted(candidate_keys)
            if existing is None or key not in existing.entries
        ]
        if not new_keys:
            return MergeOutcome(skipped_reason="nothing new to merge")

        info = existing or MergeFileInfo(
            combination=combination,
            file_name=merge_file_name(combination),
            created_at=self._statistics.logical_clock,
            last_used=self._statistics.logical_clock,
        )
        file = self.merge_file(combination)
        columnar = self._config.columnar
        for key in new_keys:
            for dataset_id in sorted(combination):
                tree = trees[dataset_id]
                node = tree.node(key)
                if columnar:
                    # Copy the partition merge-file-wards without leaving
                    # columnar form: array read, array append, same bytes.
                    run = file.append_group_array(tree.read_partition_array(node))
                else:
                    run = file.append_group(tree.read_partition(node))
                info.add_segment(key, dataset_id, run)
                self._partitions_merged += 1
        info.last_used = self._statistics.logical_clock
        self._directory.register(info)
        self._merges_performed += 1
        evicted = self._enforce_budget(protect=combination)
        return MergeOutcome(
            merged=True,
            combination=combination,
            new_partitions=len(new_keys),
            evicted_combinations=tuple(evicted),
        )

    def _trigger(
        self,
        combination: Combination,
        count: int,
        keys: set[PartitionKey],
        trees: Mapping[int, PartitionTree],
    ) -> bool:
        if self._adaptive_policy is not None:
            return self._adaptive_policy.should_merge(combination, count, keys, trees)
        return count > self._config.merge_threshold

    def _qualifying_keys(
        self,
        combination: Combination,
        stats: "CombinationStats",
        trees: Mapping[int, PartitionTree],
    ) -> set[PartitionKey]:
        """Partition keys worth copying into the combination's merge file.

        A key qualifies when

        * it is a *leaf* with the same key (and therefore the same
          refinement level) in every member dataset — the paper's "only
          merge partitions at the same level of refinement";
        * it has been retrieved by at least ``merge_partition_min_hits``
          queries of this combination; and
        * (if ``merge_only_converged``) it is no longer a refinement
          candidate for the combination's typical query volume, so its
          copy will not be superseded by refined originals.
        """
        min_hits = self._config.merge_partition_min_hits
        avg_query_volume = stats.average_query_volume()
        qualifying: set[PartitionKey] = set()
        for key in stats.all_partition_keys():
            if stats.key_hits.get(key, 0) < min_hits:
                continue
            if not all(
                dataset_id in trees and trees[dataset_id].has_leaf(key)
                for dataset_id in combination
            ):
                continue
            if self._config.merge_only_converged and avg_query_volume > 0:
                sample_tree = trees[next(iter(combination))]
                node = sample_tree.node(key)
                if node.volume() > self._config.refinement_threshold * avg_query_volume:
                    continue
            qualifying.add(key)
        return qualifying

    # ------------------------------------------------------------------ #
    # Space budget
    # ------------------------------------------------------------------ #

    def mark_used(self, combination: Combination) -> None:
        """Refresh a merge file's LRU position (called by the query processor)."""
        info = self._directory.get(combination)
        if info is not None:
            info.last_used = self._statistics.logical_clock

    def _enforce_budget(self, protect: Combination) -> list[Combination]:
        budget = self._config.merge_space_budget_pages
        if budget is None:
            return []
        evicted: list[Combination] = []
        while self._directory.total_pages() > budget:
            victims = [
                info for info in self._directory.lru_order() if info.combination != protect
            ]
            if not victims:
                break
            victim = victims[0]
            self._evict(victim)
            evicted.append(victim.combination)
        return evicted

    def _evict(self, info: MergeFileInfo) -> None:
        self._directory.remove(info.combination)
        file = self._open_files.pop(info.combination, None)
        if file is not None:
            file.delete()
        elif self._disk.file_exists(info.file_name):
            self._disk.delete_file(info.file_name)
        self._evictions += 1
