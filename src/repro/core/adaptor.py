"""The Adaptor: incremental indexing (Section 3.1 of the paper).

The Adaptor owns the two structural operations of Space Odyssey's
incremental index:

* **initial partitioning** — the first time a dataset is queried, its raw
  file is scanned once and every object is assigned (by its centre) to one
  of the ``ppl`` first-level partitions, which are written out to the
  dataset's partition file;
* **refinement** — after a query has executed, every leaf partition it hit
  whose volume exceeds ``rt`` times the query volume is split one level
  deeper.  Refinement is performed *in place*: the child partitions reuse
  the pages of the refined partition and only the overflow is appended at
  the end of the partition file (Section 3.1.2).

Both operations also maintain the per-dataset ``maxExtent`` needed by the
query-window extension technique.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import OdysseyConfig
from repro.core.partition import PartitionNode, PartitionTree
from repro.data.dataset import Dataset
from repro.data.spatial_object import SpatialObject
from repro.geometry.box import Box
from repro.geometry.vectorized import grid_child_indices


@dataclass(frozen=True, slots=True)
class RefinementOutcome:
    """What happened when a partition was considered for refinement."""

    refined: bool
    levels: int = 0
    reason: str = ""


class Adaptor:
    """Creates and refines the incremental per-dataset partition trees."""

    def __init__(self, config: OdysseyConfig) -> None:
        self._config = config

    @property
    def config(self) -> OdysseyConfig:
        """The engine configuration."""
        return self._config

    # ------------------------------------------------------------------ #
    # Initial partitioning
    # ------------------------------------------------------------------ #

    def create_tree(self, dataset: Dataset) -> PartitionTree:
        """A fresh, uninitialised partition tree for ``dataset``."""
        splits = self._config.splits_per_dimension(dataset.dimension)
        return PartitionTree(dataset, splits)

    def initialize(self, tree: PartitionTree) -> None:
        """First-level partitioning: one full scan of the raw file.

        This is the expensive first query the paper describes: the raw data
        is read sequentially, objects are assigned to the ``ppl`` uniform
        first-level partitions, and the partitions are written out
        sequentially to the partition file.

        The columnar path consumes the raw scan in structured-array chunks
        and assigns whole chunks with one vectorized centre test; the
        resulting partition file is byte-identical to the scalar path's.
        """
        if tree.is_initialized:
            raise RuntimeError(f"dataset {tree.dataset.name!r} is already initialised")
        if self._config.columnar:
            self._initialize_columnar(tree)
            return
        dataset = tree.dataset
        groups: list[list[SpatialObject]] = [[] for _ in range(tree.partitions_per_level)]
        max_extent = [0.0] * dataset.dimension
        n_objects = 0
        for obj in dataset.scan():
            index = tree.universe.child_index(obj.center, tree.splits_per_dim)
            groups[index].append(obj)
            n_objects += 1
            for axis, extent in enumerate(obj.box.extents):
                if extent > max_extent[axis]:
                    max_extent[axis] = extent
        runs = tree.file.write_groups(groups)
        dataset.disk.charge_cpu_records(n_objects)
        tree.install_first_level(
            groups=groups,
            runs=runs,
            max_extent=tuple(max_extent),
            n_objects=n_objects,
        )

    def _initialize_columnar(self, tree: PartitionTree) -> None:
        """Array-native first touch: scan chunks, vectorized assignment."""
        dataset = tree.dataset
        universe = tree.universe
        ppl = tree.partitions_per_level
        chunks_per_child: list[list[np.ndarray]] = [[] for _ in range(ppl)]
        max_extent = np.zeros(dataset.dimension, dtype=np.float64)
        n_objects = 0
        empty = None
        for chunk in dataset.scan_arrays():
            empty = chunk[:0] if empty is None else empty
            n_objects += len(chunk)
            np.maximum(
                max_extent, (chunk["hi"] - chunk["lo"]).max(axis=0), out=max_extent
            )
            centers = (chunk["lo"] + chunk["hi"]) / 2.0
            indices = grid_child_indices(
                centers, universe.lo, universe.hi, tree.splits_per_dim
            )
            for child in np.unique(indices):
                chunks_per_child[child].append(chunk[indices == child])
        if empty is None:
            empty = np.empty(0, dtype=tree.file.dtype)
        groups = [
            parts[0]
            if len(parts) == 1
            else (np.concatenate(parts) if parts else empty)
            for parts in chunks_per_child
        ]
        runs = tree.file.write_groups_array(groups)
        dataset.disk.charge_cpu_records(n_objects)
        tree.install_first_level(
            groups=groups,
            runs=runs,
            max_extent=tuple(max_extent.tolist()),
            n_objects=n_objects,
        )

    # ------------------------------------------------------------------ #
    # Refinement
    # ------------------------------------------------------------------ #

    def should_refine(self, node: PartitionNode, query: Box) -> bool:
        """The paper's refinement rule: ``V_partition / V_query > rt``."""
        return self._should_refine(node, query.volume())

    def _should_refine(self, node: PartitionNode, query_volume: float) -> bool:
        if query_volume <= 0:
            return False
        return node.volume() / query_volume > self._config.refinement_threshold

    def maybe_refine(
        self, tree: PartitionTree, node: PartitionNode, query: Box
    ) -> RefinementOutcome:
        """Refine ``node`` (up to ``refine_levels_per_query`` levels) if warranted.

        Empty partitions are never refined: splitting a partition with no
        objects only creates bookkeeping and disk traffic without ever
        reducing the data a future query must read.
        """
        if self._config.refine_levels_per_query == 0:
            return RefinementOutcome(refined=False, reason="refinement disabled")
        if not node.is_leaf:
            return RefinementOutcome(refined=False, reason="not a leaf")
        if node.n_objects == 0:
            return RefinementOutcome(refined=False, reason="empty partition")
        if node.level >= self._config.max_depth:
            return RefinementOutcome(refined=False, reason="max depth reached")
        query_volume = query.volume()
        if not self._should_refine(node, query_volume):
            return RefinementOutcome(refined=False, reason="below refinement threshold")

        levels = 0
        current: list[PartitionNode] = [node]
        while levels < self._config.refine_levels_per_query:
            next_round: list[PartitionNode] = []
            for leaf in current:
                if (
                    not leaf.is_leaf
                    or leaf.n_objects == 0
                    or leaf.level >= self._config.max_depth
                    or not self._should_refine(leaf, query_volume)
                ):
                    continue
                next_round.extend(self.refine(tree, leaf))
            if not next_round:
                break
            levels += 1
            # Only the children that the query actually overlaps are
            # candidates for further refinement within the same query.
            current = [child for child in next_round if child.box.intersects(query)]
        return RefinementOutcome(refined=levels > 0, levels=levels)

    def refine(self, tree: PartitionTree, node: PartitionNode) -> list[PartitionNode]:
        """Split one leaf partition into ``ppl`` children, in place.

        Reads the partition, reassigns its objects to the child regions by
        centre, and writes the children back reusing the parent's pages
        (appending any overflow pages at the end of the partition file).
        The columnar path performs the read, the assignment and the write
        on structured arrays; pages and runs are byte-identical either way.
        """
        if not node.is_leaf:
            raise ValueError(f"partition {node.key!r} is not a leaf")
        reuse = node.run.extents if node.run is not None else ()
        if self._config.columnar:
            records = tree.read_partition_array(node)
            array_groups = tree.assign_array_to_children(node.box, records)
            runs = tree.file.write_groups_array(array_groups, reuse=reuse)
            tree.dataset.disk.charge_cpu_records(len(records))
        else:
            objects = tree.read_partition(node)
            groups = tree.assign_to_children(node.box, objects)
            runs = tree.file.write_groups(groups, reuse=reuse)
            tree.dataset.disk.charge_cpu_records(len(objects))
        return tree.replace_with_children(node, runs)
