"""Merge files, the merge directory and query routing (Section 3.2).

A *merge file* stores copies of partitions from several datasets that are
frequently queried together.  For every partition region it contains one
segment per member dataset, laid out sequentially, so a query for any subset
of the merged datasets can read exactly the segments it needs with (mostly)
sequential I/O and skip the rest.

The *merge directory* records which combinations have merge files and which
partitions each file contains; the query processor consults it through
:func:`choose_route`, which implements the paper's four routing cases
(exact merge file, superset, subset, none).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.partition import PartitionKey
from repro.core.statistics import Combination
from repro.storage.pagedfile import StoredRun


def merge_file_name(combination: Combination) -> str:
    """Conventional merge file name for a combination of datasets."""
    ids = "_".join(str(dataset_id) for dataset_id in sorted(combination))
    return f"merge/combo_{ids}.dat"


@dataclass
class MergeFileInfo:
    """Directory entry describing one merge file.

    ``entries`` maps a partition key to the per-dataset segment
    (:class:`~repro.storage.pagedfile.StoredRun`) inside the merge file.
    """

    combination: Combination
    file_name: str
    entries: dict[PartitionKey, dict[int, StoredRun]] = field(default_factory=dict)
    created_at: int = 0
    last_used: int = 0

    @property
    def n_partitions(self) -> int:
        """Number of partition regions stored in the file."""
        return len(self.entries)

    @property
    def total_pages(self) -> int:
        """Total pages occupied by all segments of the file."""
        return sum(
            run.n_pages for per_dataset in self.entries.values() for run in per_dataset.values()
        )

    def has_segment(self, key: PartitionKey, dataset_id: int) -> bool:
        """Whether the file stores the given dataset's copy of a partition."""
        per_dataset = self.entries.get(key)
        return per_dataset is not None and dataset_id in per_dataset

    def segment(self, key: PartitionKey, dataset_id: int) -> StoredRun:
        """The stored segment for one (partition, dataset) pair."""
        return self.entries[key][dataset_id]

    def add_segment(self, key: PartitionKey, dataset_id: int, run: StoredRun) -> None:
        """Record a newly written segment."""
        self.entries.setdefault(key, {})[dataset_id] = run

    def copy(self) -> "MergeFileInfo":
        """An entry-level deep copy for epoch snapshots.

        The ``entries`` mapping and its per-dataset inner dicts are
        copied (``add_segment`` mutates them in place on the live info);
        the :class:`~repro.storage.pagedfile.StoredRun` values are frozen
        and shared.
        """
        return MergeFileInfo(
            combination=self.combination,
            file_name=self.file_name,
            entries={
                key: dict(per_dataset) for key, per_dataset in self.entries.items()
            },
            created_at=self.created_at,
            last_used=self.last_used,
        )


class RouteKind(enum.Enum):
    """The paper's four routing cases for a queried combination."""

    EXACT = "exact"
    SUPERSET = "superset"
    SUBSET = "subset"
    NONE = "none"


@dataclass(frozen=True, slots=True)
class RoutingDecision:
    """Which merge file (if any) a query should read from.

    ``covered_datasets`` are the requested datasets the chosen merge file
    can serve; the query processor reads all other datasets from their
    individual partition files.
    """

    kind: RouteKind
    merge_info: MergeFileInfo | None
    covered_datasets: frozenset[int]

    @classmethod
    def none(cls) -> "RoutingDecision":
        """The no-merge-file decision."""
        return cls(kind=RouteKind.NONE, merge_info=None, covered_datasets=frozenset())


class MergeDirectory:
    """Registry of all existing merge files, keyed by combination.

    The directory carries a :attr:`version` counter bumped on every
    :meth:`register`/:meth:`remove` — the merger re-registers an info
    after extending it in place, so any observable change to the merge
    map bumps the version.  The epoch layer uses it for copy-on-write:
    an epoch's frozen directory copy is reused as long as the version is
    unchanged.
    """

    def __init__(self) -> None:
        self._files: dict[Combination, MergeFileInfo] = {}
        self._version = 0

    # -- registration ----------------------------------------------------- #

    def register(self, info: MergeFileInfo) -> None:
        """Add or replace the merge file of a combination."""
        self._files[info.combination] = info
        self._version += 1

    def remove(self, combination: Combination) -> MergeFileInfo:
        """Forget a combination's merge file and return its entry."""
        try:
            info = self._files.pop(combination)
        except KeyError:
            raise KeyError(f"no merge file for combination {sorted(combination)}") from None
        self._version += 1
        return info

    @property
    def version(self) -> int:
        """Monotone change counter (see class docstring)."""
        return self._version

    def freeze(self) -> "MergeDirectory":
        """An immutable-by-convention snapshot copy of the directory.

        Every info is deep-copied at the entry level
        (:meth:`MergeFileInfo.copy`), so later in-place ``add_segment``
        mutations of the live infos are invisible to holders of the
        frozen copy.  The copy keeps the live version so staleness checks
        compare directly.
        """
        frozen = MergeDirectory()
        for info in self._files.values():
            frozen._files[info.combination] = info.copy()
        frozen._version = self._version
        return frozen

    # -- lookup ------------------------------------------------------------ #

    def get(self, combination: Iterable[int]) -> MergeFileInfo | None:
        """The merge file for exactly this combination, if any."""
        return self._files.get(frozenset(combination))

    def __contains__(self, combination: Iterable[int]) -> bool:
        return frozenset(combination) in self._files

    def __len__(self) -> int:
        return len(self._files)

    def all_files(self) -> list[MergeFileInfo]:
        """All registered merge files."""
        return list(self._files.values())

    def total_pages(self) -> int:
        """Total pages occupied by every merge file (the space budget metric)."""
        return sum(info.total_pages for info in self._files.values())

    def lru_order(self) -> list[MergeFileInfo]:
        """Merge files ordered from least to most recently used."""
        return sorted(self._files.values(), key=lambda info: info.last_used)

    # -- routing ----------------------------------------------------------- #

    def find_superset(self, requested: Combination) -> MergeFileInfo | None:
        """The smallest merge file whose combination is a strict superset."""
        candidates = [
            info
            for combo, info in self._files.items()
            if combo > requested  # strict superset
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda info: len(info.combination))

    def find_best_subset(self, requested: Combination) -> MergeFileInfo | None:
        """The merge file covering the most requested datasets (strict subset)."""
        candidates = [
            info
            for combo, info in self._files.items()
            if combo < requested  # strict subset
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda info: len(info.combination))


def choose_route(directory: MergeDirectory, requested: Combination) -> RoutingDecision:
    """Implement the paper's routing rules for a requested combination.

    1. *Exact*: a merge file for exactly the requested combination.
    2. *Superset*: a merge file containing more datasets than requested —
       still preferable because each dataset's objects are stored
       sequentially and non-requested segments can be skipped.
    3. *Subset*: the merge file covering the most requested datasets is
       used for those; the remaining datasets are read from their
       individual partition files.
    4. *None*: only individual files are used.
    """
    exact = directory.get(requested)
    if exact is not None:
        return RoutingDecision(
            kind=RouteKind.EXACT, merge_info=exact, covered_datasets=requested
        )
    superset = directory.find_superset(requested)
    if superset is not None:
        return RoutingDecision(
            kind=RouteKind.SUPERSET, merge_info=superset, covered_datasets=requested
        )
    subset = directory.find_best_subset(requested)
    if subset is not None:
        return RoutingDecision(
            kind=RouteKind.SUBSET,
            merge_info=subset,
            covered_datasets=frozenset(subset.combination),
        )
    return RoutingDecision.none()
