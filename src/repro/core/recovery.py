"""Crash-consistent recovery by logical replay.

Space Odyssey's adaptive state — partition trees, merge files, statistics
— is entirely *derived*: it is a deterministic function of the immutable
raw dataset files and the ordered sequence of executed queries.  The
engines prove this continuously (the differential oracles in
``tests/test_batch_differential.py`` and ``tests/test_engine_fuzz.py``
show all five execution modes produce bit-identical adaptive state and
on-disk bytes from the same query sequence).  Recovery exploits it: the
durable manifest is not a physical redo log but a **logical query log**.

At every commit point (each :meth:`QueryProcessor.execute`, and each
batch's gated writer phase) the engine appends a manifest to a
:class:`~repro.storage.journal.ManifestJournal`: the catalog and disk
geometry, the configuration, and the full ordered list of committed
queries.  The journal is checksummed and torn-tail tolerant, so a crash
mid-commit simply re-exposes the previous commit point.

:func:`recover` rebuilds an engine from the last intact manifest:

1. re-open the raw dataset files (they are append-once and never touched
   after creation, so they survive any crash intact);
2. **delete every derived file** — partition files and merge files may be
   torn by the crash, and all of them can be regenerated;
3. construct a fresh engine and replay the committed queries in order
   with journaling disabled.  Determinism makes the replayed state —
   including on-disk partition and merge bytes — bit-identical to the
   state of a never-crashed engine after the same committed prefix;
4. re-attach the journal so subsequent commits extend the same log.

A crash *during* recovery is harmless: replay writes nothing to the
journal, so recovery can simply be run again.

The physical cost is replaying the committed workload; compacting the
log against a checkpoint of the derived files is future work recorded in
ROADMAP.md.
"""

from __future__ import annotations

import logging
import os
from dataclasses import asdict
from typing import TYPE_CHECKING, Iterable

from repro.core.config import OdysseyConfig
from repro.data.dataset import Dataset, DatasetCatalog, raw_file_name
from repro.geometry.box import Box
from repro.storage.backend import FileSystemBackend, StorageBackend
from repro.storage.cost_model import DiskModel
from repro.storage.disk import Disk
from repro.storage.journal import ManifestJournal

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.core.odyssey import SpaceOdyssey

#: Manifest schema version (bumped on incompatible layout changes).
MANIFEST_VERSION = 1

#: Silent unless the embedding application configures handlers (e.g. via
#: :func:`repro.obs.configure_json_logging`).
logger = logging.getLogger("repro.recovery")


class RecoveryError(RuntimeError):
    """Recovery cannot proceed (no intact manifest, missing raw files, ...)."""


# ---------------------------------------------------------------------- #
# Manifest encoding
# ---------------------------------------------------------------------- #


def _encode_box(box: Box) -> dict:
    return {"lo": list(box.lo), "hi": list(box.hi)}


def _decode_box(data: dict) -> Box:
    return Box(tuple(data["lo"]), tuple(data["hi"]))


def encode_query(box: Box, dataset_ids: Iterable[int]) -> dict:
    """One committed query as a JSON-safe record."""
    entry = _encode_box(box)
    entry["ids"] = sorted(dataset_ids)
    return entry


def _encode_catalog(catalog: DatasetCatalog) -> dict:
    disk = catalog.datasets()[0].disk
    backend = disk.backend
    # Unwrap fault-injection / retry decorators to describe the real store.
    while hasattr(backend, "inner"):
        backend = backend.inner
    if isinstance(backend, FileSystemBackend):
        store = {"kind": "filesystem", "root": str(backend.root)}
    else:
        store = {"kind": "memory"}
    pool = disk.buffer_pool
    return {
        "datasets": [
            {
                "id": dataset.dataset_id,
                "name": dataset.name,
                "universe": _encode_box(dataset.universe),
            }
            for dataset in catalog.datasets()
        ],
        "store": store,
        "model": asdict(disk.model),
        "buffer_pages": pool.capacity_pages,
        "buffer_shards": getattr(pool, "n_shards", 1),
    }


def build_manifest(
    catalog: DatasetCatalog, config: OdysseyConfig, queries: list[dict]
) -> dict:
    """The complete manifest for the given committed query log."""
    return {
        "version": MANIFEST_VERSION,
        "config": asdict(config),
        "catalog": _encode_catalog(catalog),
        "queries": queries,
    }


class DurabilityLog:
    """Tracks the committed query log and journals the manifest.

    Attached to a :class:`~repro.core.query_processor.QueryProcessor`;
    :meth:`record` must be called with the processor's gate held so the
    journal order equals the commit order.
    """

    def __init__(
        self,
        journal: ManifestJournal,
        *,
        catalog: DatasetCatalog,
        config: OdysseyConfig,
        committed: list[dict] | None = None,
    ) -> None:
        self._journal = journal
        self._catalog = catalog
        self._config = config
        self._committed: list[dict] = list(committed or [])

    @property
    def journal(self) -> ManifestJournal:
        """The underlying journal."""
        return self._journal

    @property
    def committed_queries(self) -> int:
        """How many queries the durable log covers."""
        return len(self._committed)

    def manifest(self) -> dict:
        """The manifest describing the current committed state."""
        return build_manifest(self._catalog, self._config, list(self._committed))

    def record(self, entries: Iterable[tuple[Box, Iterable[int]]]) -> None:
        """Extend the log with newly committed queries and journal it.

        ``entries`` may be empty (e.g. an empty batch), in which case the
        state did not change and nothing is written.
        """
        appended = [encode_query(box, ids) for box, ids in entries]
        if not appended:
            return
        self._committed.extend(appended)
        self._journal.commit(self.manifest())

    def checkpoint(self) -> None:
        """Journal the current state now (used for the initial commit)."""
        self._journal.commit(self.manifest())


# ---------------------------------------------------------------------- #
# Recovery
# ---------------------------------------------------------------------- #


def _sanitized(name: str) -> str:
    # Mirror of FileSystemBackend._path's flattening, so raw files can be
    # recognised in that backend's listing too.
    return "".join(c if c.isalnum() or c in "._-" else "_" for c in name)


def _rebuild_disk(manifest_catalog: dict, backend: StorageBackend | None) -> Disk:
    model = DiskModel(**manifest_catalog["model"])
    if backend is None:
        store = manifest_catalog["store"]
        if store["kind"] != "filesystem":
            raise RecoveryError(
                "the crashed engine ran on an in-memory backend; pass the "
                "surviving backend (or a Disk) to recover()"
            )
        backend = FileSystemBackend(store["root"], page_size=model.page_size)
    return Disk(
        backend=backend,
        model=model,
        buffer_pages=manifest_catalog["buffer_pages"],
        buffer_shards=manifest_catalog["buffer_shards"],
    )


def _wipe_derived_files(disk: Disk, raw_names: set[str]) -> list[str]:
    keep = raw_names | {_sanitized(name) for name in raw_names}
    dropped = []
    for name in disk.list_files():
        if name not in keep:
            disk.delete_file(name)
            dropped.append(name)
    return dropped


def recover(
    journal_path: str | os.PathLike[str] | ManifestJournal,
    *,
    backend: StorageBackend | None = None,
    disk: Disk | None = None,
    compact_every: int = 64,
    crash_hook=None,
) -> "SpaceOdyssey":
    """Rebuild an engine from the last intact manifest in the journal.

    Parameters
    ----------
    journal_path:
        The journal file (or an already-open :class:`ManifestJournal`).
    backend / disk:
        Where the page bytes survived.  For a filesystem-backed engine
        both may be omitted — the manifest records the root directory.
        For an in-memory engine the surviving backend object must be
        passed (typically the fault injector's inner backend, or the
        injector itself disarmed).
    compact_every / crash_hook:
        Forwarded to the re-attached journal when ``journal_path`` is a
        path.

    Returns an engine whose adaptive state, on-disk derived bytes and
    subsequent answers are bit-identical to an engine that executed the
    committed query prefix without crashing.  Raises
    :class:`RecoveryError` if the journal holds no intact manifest or a
    raw dataset file is missing.
    """
    from repro.core.odyssey import SpaceOdyssey

    if isinstance(journal_path, ManifestJournal):
        journal = journal_path
    else:
        journal = ManifestJournal(
            journal_path, compact_every=compact_every, crash_hook=crash_hook
        )
    manifest = journal.read_last()
    if manifest is None:
        raise RecoveryError(
            f"journal {journal.path} holds no intact manifest; nothing was "
            "ever durably committed, so rebuild the engine from scratch"
        )
    if manifest.get("version") != MANIFEST_VERSION:
        raise RecoveryError(
            f"unsupported manifest version {manifest.get('version')!r}"
        )

    logger.info(
        "recovery started",
        extra={
            "journal": str(journal.path),
            "committed_queries": len(manifest["queries"]),
            "datasets": len(manifest["catalog"]["datasets"]),
        },
    )

    # Heal the journal before re-using it: a torn tail left by the crash
    # would swallow every post-recovery append (records() stops at the
    # first torn record).  Atomically rewriting the file down to the
    # manifest being recovered from truncates the tail; a crash during
    # the rewrite leaves either the old or the new journal, both of which
    # expose this same manifest.
    journal.rewrite(manifest)

    config = OdysseyConfig(**manifest["config"])
    manifest_catalog = manifest["catalog"]
    if disk is None:
        disk = _rebuild_disk(manifest_catalog, backend)

    specs = manifest_catalog["datasets"]
    raw_names = {raw_file_name(spec["name"]) for spec in specs}
    for name in raw_names:
        if not disk.file_exists(name):
            raise RecoveryError(f"raw dataset file {name!r} is missing")
    dropped = _wipe_derived_files(disk, raw_names)
    logger.info(
        "derived files wiped", extra={"dropped_files": len(dropped)}
    )

    datasets = [
        Dataset.open(
            disk, spec["id"], spec["name"], universe=_decode_box(spec["universe"])
        )
        for spec in specs
    ]
    engine = SpaceOdyssey(DatasetCatalog(datasets), config)
    for entry in manifest["queries"]:
        engine.query(_decode_box(entry), entry["ids"])

    engine.attach_journal(journal, committed=list(manifest["queries"]))
    logger.info(
        "recovery complete",
        extra={"replayed_queries": len(manifest["queries"])},
    )
    return engine
