"""Merge cost model (the paper's "open issues" extension).

Section 3.2.5 of the paper lists a cost model for merging as future work:
the merging threshold ``mt`` and the minimum combination size are fixed
parameters in the prototype, and the authors plan to adapt them at run time
based on the workload.  This module provides that extension.

The model is deliberately simple and fully analytical:

* **merge cost** — copying the selected partitions into the merge file
  costs one read and one write of every copied page plus positioning time;
* **per-query benefit** — a query that reads ``|C|`` datasets' partitions
  from individual files pays roughly one random positioning per dataset,
  whereas reading them from a merge file pays one; the transferred volume
  is the same.

A combination is worth merging once the observed (and therefore expected
future) access frequency amortises the merge cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.partition import PartitionKey, PartitionTree
from repro.core.statistics import Combination
from repro.storage.cost_model import DiskModel


@dataclass(frozen=True, slots=True)
class MergeEstimate:
    """Outcome of a merge cost/benefit estimation."""

    merge_cost_s: float
    per_query_benefit_s: float
    breakeven_queries: float

    @property
    def worthwhile_after(self) -> int:
        """Number of accesses after which merging pays for itself."""
        if self.per_query_benefit_s <= 0:
            return 1_000_000_000  # effectively never
        return max(1, int(self.breakeven_queries + 0.999))


class MergeCostModel:
    """Estimates when merging a combination's hot partitions pays off."""

    def __init__(self, disk_model: DiskModel) -> None:
        self._model = disk_model

    def estimate(
        self,
        combination: Combination,
        keys: set[PartitionKey],
        trees: Mapping[int, PartitionTree],
    ) -> MergeEstimate:
        """Estimate the cost of merging and the per-query benefit afterwards."""
        total_pages = 0
        for dataset_id in combination:
            tree = trees.get(dataset_id)
            if tree is None:
                continue
            for key in keys:
                if tree.has_leaf(key):
                    node = tree.node(key)
                    if node.run is not None:
                        total_pages += node.run.n_pages
        transfer = self._model.page_transfer_time_s
        # Copying: read + write every page, plus one positioning per dataset
        # segment read and one for the (appending) write.
        merge_cost = total_pages * 2 * transfer + (len(combination) + 1) * self._model.seek_time_s
        # Benefit: per query, (|C| - 1) positioning operations are avoided
        # because the segments are adjacent in the merge file.
        per_query_benefit = max(0, len(combination) - 1) * self._model.seek_time_s
        if per_query_benefit > 0:
            breakeven = merge_cost / per_query_benefit
        else:
            breakeven = float("inf")
        return MergeEstimate(
            merge_cost_s=merge_cost,
            per_query_benefit_s=per_query_benefit,
            breakeven_queries=breakeven,
        )


class AdaptiveMergePolicy:
    """Adapts the merge trigger to the workload using :class:`MergeCostModel`.

    With the static policy the paper uses, a combination is merged after
    ``mt`` retrievals regardless of how large the copy is.  The adaptive
    policy instead merges once the observed access count has reached the
    estimated break-even point (but never earlier than the configured
    ``mt``, preserving the paper's minimum).
    """

    def __init__(self, cost_model: MergeCostModel, static_threshold: int) -> None:
        self._cost_model = cost_model
        self._static_threshold = static_threshold

    def should_merge(
        self,
        combination: Combination,
        access_count: int,
        keys: set[PartitionKey],
        trees: Mapping[int, PartitionTree],
    ) -> bool:
        """Whether the combination should be merged now."""
        if access_count <= self._static_threshold:
            return False
        estimate = self._cost_model.estimate(combination, keys, trees)
        return access_count >= estimate.worthwhile_after
