"""Batched execution: amortising work across a group of exploration queries.

The paper's setting is a *sequence* of exploratory queries, yet the
sequential :class:`~repro.core.query_processor.QueryProcessor` pays every
cost — partition overlap tests, page decoding, object filtering — once per
query.  This module executes a whole batch at once while guaranteeing that
results **and** the post-batch adaptive state (partition trees, statistics,
merge directory, file bytes) are identical to running the same queries
sequentially in order.

Execution model
---------------
A batch runs in four phases:

1. **Initialisation** — every requested dataset whose partition tree does
   not exist yet is initialised up front, in the order sequential execution
   would have first touched it.  Initialisation only depends on the raw
   dataset, so doing it early changes no observable state.
2. **Overlap resolution** — queries are grouped by requested dataset
   combination and, per (group, dataset), the partition overlap tests of
   all the group's query windows are resolved in a single call to the
   vectorized :func:`~repro.geometry.vectorized.intersect_matrix` kernel
   over the tree's cached per-partition MBR arrays
   (:meth:`~repro.core.partition.PartitionTree.leaf_snapshot`).
3. **Retrieval and filtering** — partitions are read through a
   :class:`BatchReadSet`, a shared read set layered on the existing buffer
   pool: each distinct stored group is fetched and decoded once per batch
   (into columnar NumPy arrays, not per-record Python objects) no matter
   how many queries need it.  Filtering against the original query window
   is a vectorized mask; ``SpatialObject`` instances are materialised only
   for actual hits.
4. **Replay of adaptive updates** — statistics, refinement and merging are
   applied once per batch, afterwards, by replaying the per-query pipeline
   in submission order against the evolving trees.  Because refinement
   decisions depend only on (tree state, query window) and both start from
   the same state, the replay reproduces the sequential evolution exactly
   — same refinements in the same order, same page reuse, same merge files,
   same eviction decisions.

Why the reads may be coarser than sequential reads
--------------------------------------------------
Phase 3 reads against the *start-of-batch* trees while sequential
execution reads against trees that refine mid-sequence.  Reading a
partition that sequential execution would have read as several refined
children is safe: the parent's object set is the union of its children's,
and the query-window extension guarantees every true hit lies in a
partition overlapping the extended window at any refinement level.  The
filter step therefore yields byte-identical hits; only
``QueryReport.objects_examined`` (and the simulated CPU charge for it) may
differ from the sequential run.  The shared read set also means a batch
never reads *more* pages than the equivalent sequential run
(``tests/test_batch_cost.py`` enforces this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.merge import RoutingDecision, choose_route
from repro.core.partition import PartitionNode
from repro.core.query_processor import QueryProcessor, QueryReport
from repro.data.columnar import DecodedGroup
from repro.data.spatial_object import SpatialObject
from repro.geometry.box import Box
from repro.geometry.vectorized import box_to_arrays, intersect_mask
from repro.obs.trace import maybe_span
from repro.storage.buffer import BufferCounters
from repro.storage.pagedfile import PagedFile, StoredRun
from repro.workload.query import RangeQuery


@dataclass(frozen=True, slots=True)
class BatchQuery:
    """One normalised query of a batch: its position, window and combination."""

    index: int
    box: Box
    requested: frozenset[int]


class QueryBatch:
    """A validated, ordered collection of range queries to execute together.

    Accepts :class:`~repro.workload.query.RangeQuery` instances or
    ``(box, dataset_ids)`` pairs (so a
    :class:`~repro.workload.builder.Workload` can be passed directly).
    Queries keep their submission order; :meth:`groups` exposes them
    grouped by requested dataset combination, which is the unit the batch
    engine amortises routing and overlap resolution over.
    """

    def __init__(self, queries: Iterable[RangeQuery | tuple | list]) -> None:
        normalized: list[BatchQuery] = []
        for index, query in enumerate(queries):
            if isinstance(query, RangeQuery):
                box, dataset_ids = query.box, query.dataset_ids
            elif isinstance(query, (tuple, list)) and len(query) == 2:
                box, dataset_ids = query
            else:
                raise TypeError(
                    f"batch entry {index} must be a RangeQuery or a "
                    f"(box, dataset_ids) pair, got {query!r}"
                )
            if not isinstance(box, Box):
                raise TypeError(f"batch entry {index} has no query Box")
            requested = frozenset(dataset_ids)
            if not requested:
                raise ValueError(f"batch entry {index} requests no datasets")
            normalized.append(BatchQuery(index=index, box=box, requested=requested))
        self._queries = tuple(normalized)

    @property
    def queries(self) -> tuple[BatchQuery, ...]:
        """The normalised queries in submission order."""
        return self._queries

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterator[BatchQuery]:
        return iter(self._queries)

    def combinations(self) -> set[frozenset[int]]:
        """The distinct dataset combinations appearing in the batch."""
        return {query.requested for query in self._queries}

    def groups(self) -> dict[frozenset[int], list[BatchQuery]]:
        """Queries grouped by requested combination, preserving order."""
        grouped: dict[frozenset[int], list[BatchQuery]] = {}
        for query in self._queries:
            grouped.setdefault(query.requested, []).append(query)
        return grouped


@dataclass
class BatchResult:
    """Everything a batch execution produced.

    ``results[i]`` and ``reports[i]`` belong to the i-th submitted query.
    ``group_reads`` counts every partition-group retrieval the batch
    needed; ``group_reads_deduped`` is how many of those were served from
    the shared read set instead of touching the disk again.
    """

    results: list[list[SpatialObject]]
    reports: list[QueryReport]
    group_reads: int = 0
    group_reads_deduped: int = 0

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[list[SpatialObject]]:
        return iter(self.results)

    def __getitem__(self, index: int) -> list[SpatialObject]:
        return self.results[index]

    def hit_counts(self) -> list[int]:
        """Number of hits per query, in submission order."""
        return [len(hits) for hits in self.results]

    def total_results(self) -> int:
        """Total hits across the batch."""
        return sum(len(hits) for hits in self.results)


class BatchReadSet:
    """The shared read set of one batch, layered on the buffer pool.

    Keys are ``(file name, page extents, record count)`` — the identity of
    a stored group.  The first request for a group goes through the shared
    columnar storage surface
    (:meth:`~repro.storage.pagedfile.PagedFile.read_group_array`, so cost
    accounting, the buffer pool and the decoded-array cache behave exactly
    as for sequential reads); later requests for the same group from other
    queries of the batch are free.  The set lives for a single batch only:
    batch reads all complete before any write of the replay phase, so no
    invalidation is ever needed.
    """

    def __init__(self, dimension: int) -> None:
        self._dimension = dimension
        self._groups: dict[tuple, DecodedGroup] = {}
        self.group_reads = 0
        self.dedup_hits = 0

    def read(self, file: PagedFile[SpatialObject], run: StoredRun) -> DecodedGroup:
        """The decoded records of one stored group (cached per batch)."""
        self.group_reads += 1
        key = (file.name, run.extents, run.n_records)
        group = self._groups.get(key)
        if group is not None:
            self.dedup_hits += 1
            return group
        group = self._load(file, run)
        self._groups[key] = group
        return group

    def _load(self, file: PagedFile[SpatialObject], run: StoredRun) -> DecodedGroup:
        """Fetch and decode one group (overridden by the epoch read set)."""
        return DecodedGroup.from_records(file.read_group_array(run), self._dimension)


class BatchExecutor:
    """Runs one :class:`QueryBatch` against a query processor's live state.

    See the module docstring for the four-phase execution model and the
    sequential-identity guarantee.
    """

    #: Label carried on the batch root span (overridden by subclasses).
    _executor_name = "serial"

    def __init__(self, processor: QueryProcessor) -> None:
        self._processor = processor

    # ------------------------------------------------------------------ #
    # Read-state hooks
    # ------------------------------------------------------------------ #
    # The retrieval phase reaches engine state only through these four
    # hooks, so a subclass can redirect the whole read path at a pinned
    # immutable epoch (repro.core.epoch.EpochExecutor) while reusing the
    # planning, dedup, filtering and replay machinery unchanged.

    def _leaf_run(self, dataset_id: int, leaf: PartitionNode) -> StoredRun | None:
        """The stored run to read for one leaf (live: the leaf's own run)."""
        return leaf.run

    def _tree_file(self, dataset_id: int) -> PagedFile[SpatialObject]:
        """The partition file of one dataset."""
        return self._processor.live_trees[dataset_id].file

    def _merge_file(self, info) -> PagedFile[SpatialObject]:
        """The open merge file behind a directory entry."""
        return self._processor.merger.merge_file(info.combination)

    def _route_directory(self):
        """The merge directory routing decisions are made against."""
        return self._processor.directory

    @staticmethod
    def _run_start(run: StoredRun | None) -> int:
        """Sort key: where a stored run starts on disk (0 when empty)."""
        if run is None or not run.extents:
            return 0
        return run.extents[0].start

    def run(self, batch: QueryBatch) -> BatchResult:
        """Execute the batch; equivalent to sequential execution in order."""
        processor = self._processor
        queries = batch.queries
        if not queries:
            return BatchResult(results=[], reports=[])
        catalog = processor.catalog
        for query in queries:
            for dataset_id in query.requested:
                catalog.get(dataset_id)  # validates every id before any work

        tracer = processor.tracer
        with maybe_span(
            tracer, "batch", queries=len(queries), executor=self._executor_name
        ) as span:
            with maybe_span(tracer, "batch.init_trees"):
                first_touch = self._initialize_trees(queries)
            with maybe_span(tracer, "batch.overlap"):
                extended = self._extended_windows(queries)
                needed0, versions0 = self._resolve_overlaps(batch, extended)
            read_set = BatchReadSet(catalog.dimension)
            with maybe_span(tracer, "batch.read_filter"):
                results, examined, cache_deltas = self._read_and_filter(
                    batch, needed0, read_set
                )
            with maybe_span(tracer, "batch.replay"):
                reports = self._replay_updates(
                    queries, first_touch, extended, needed0, versions0, results,
                    examined, cache_deltas,
                )
            if span is not None:
                span.attributes.update(
                    group_reads=read_set.group_reads,
                    dedup_hits=read_set.dedup_hits,
                )
        return BatchResult(
            results=results,
            reports=reports,
            group_reads=read_set.group_reads,
            group_reads_deduped=read_set.dedup_hits,
        )

    # ------------------------------------------------------------------ #
    # Phase 1 — lazy initialisation
    # ------------------------------------------------------------------ #

    def _initialize_trees(self, queries: Sequence[BatchQuery]) -> dict[int, int]:
        """Initialise missing trees in sequential first-touch order.

        Returns ``dataset_id -> index of the query that first touched it``
        so the replay phase can attribute initialisations to the right
        :class:`QueryReport`, exactly as sequential execution would.
        """
        processor = self._processor
        trees = processor.live_trees
        first_touch: dict[int, int] = {}
        for query in queries:
            for dataset_id in sorted(query.requested):
                if dataset_id not in trees and dataset_id not in first_touch:
                    first_touch[dataset_id] = query.index
        for dataset_id in first_touch:  # dict preserves first-touch order
            tree = processor.adaptor.create_tree(processor.catalog.get(dataset_id))
            processor.adaptor.initialize(tree)
            trees[dataset_id] = tree
        return first_touch

    # ------------------------------------------------------------------ #
    # Phase 2 — vectorized overlap resolution
    # ------------------------------------------------------------------ #

    def _extended_windows(
        self, queries: Sequence[BatchQuery]
    ) -> dict[tuple[int, int], Box]:
        """Per (query, dataset) extended-and-clamped query windows."""
        trees = self._processor.live_trees
        extended: dict[tuple[int, int], Box] = {}
        for query in queries:
            for dataset_id in query.requested:
                tree = trees[dataset_id]
                extended[(query.index, dataset_id)] = query.box.expand(
                    tree.max_extent
                ).clamp(tree.universe)
        return extended

    def _resolve_overlaps(
        self, batch: QueryBatch, extended: dict[tuple[int, int], Box]
    ) -> tuple[dict[tuple[int, int], list[PartitionNode]], dict[int, int]]:
        """Overlap tests for the whole batch, one kernel call per (group, dataset).

        Returns the per-(query, dataset) overlapping leaves against the
        start-of-batch trees, plus each tree's structure version at
        resolution time (so the replay phase knows when the lists are still
        valid for reuse).
        """
        trees = self._processor.live_trees
        needed0: dict[tuple[int, int], list[PartitionNode]] = {}
        versions0: dict[int, int] = {}
        for combination, group in batch.groups().items():
            for dataset_id in sorted(combination):
                tree = trees[dataset_id]
                versions0[dataset_id] = tree.version
                windows = [extended[(query.index, dataset_id)] for query in group]
                per_query = tree.leaves_overlapping_batch(windows)
                for query, leaves in zip(group, per_query):
                    needed0[(query.index, dataset_id)] = leaves
        return needed0, versions0

    # ------------------------------------------------------------------ #
    # Phase 3 — retrieval through the shared read set, vectorized filtering
    # ------------------------------------------------------------------ #

    def _route_decisions(
        self, batch: QueryBatch
    ) -> dict[frozenset[int], RoutingDecision]:
        """Routing resolved once per combination.

        The merge directory cannot change between retrieval and the replay
        phase, so all reads of the batch see the same directory state.
        """
        directory = self._route_directory()
        return {
            combination: choose_route(directory, combination)
            for combination in batch.groups()
        }

    def _query_plan(
        self,
        query: BatchQuery,
        needed0: dict[tuple[int, int], list[PartitionNode]],
        decisions: dict[frozenset[int], RoutingDecision],
    ) -> list[tuple[int, PagedFile[SpatialObject], StoredRun]]:
        """One query's read plan: ``(dataset_id, file, run)`` in collect order.

        The plan construction and the on-disk-order sorting are
        deterministic functions of ``(query, needed0, decisions)``:
        merge-file segments first (sorted by segment start), then
        individual partition runs (sorted by dataset, then run start).
        Both the serial/thread executors (which read the plan through a
        :class:`BatchReadSet`) and the process executor (which stages the
        plan's pages for its workers) consume this one plan builder, so
        every engine reads the same groups in the same order.
        """
        decision = decisions[query.requested]
        info = decision.merge_info
        merge_plan: list[tuple[int, PartitionNode]] = []
        individual_plan: list[tuple[int, PartitionNode, StoredRun | None]] = []
        for dataset_id in sorted(query.requested):
            for leaf in needed0[(query.index, dataset_id)]:
                use_merge = (
                    info is not None
                    and dataset_id in decision.covered_datasets
                    and info.has_segment(leaf.key, dataset_id)
                )
                if use_merge:
                    merge_plan.append((dataset_id, leaf))
                else:
                    individual_plan.append(
                        (dataset_id, leaf, self._leaf_run(dataset_id, leaf))
                    )
        entries: list[tuple[int, PagedFile[SpatialObject], StoredRun]] = []
        if merge_plan and info is not None:
            merge_file = self._merge_file(info)
            merge_plan.sort(
                key=lambda item: QueryProcessor._segment_start(
                    info, item[1].key, item[0]
                )
            )
            for dataset_id, leaf in merge_plan:
                entries.append(
                    (dataset_id, merge_file, info.segment(leaf.key, dataset_id))
                )
        individual_plan.sort(key=lambda item: (item[0], self._run_start(item[2])))
        for dataset_id, leaf, run in individual_plan:
            if run is None or run.n_records == 0:
                continue
            entries.append((dataset_id, self._tree_file(dataset_id), run))
        return entries

    def _filter_one_query(
        self,
        query: BatchQuery,
        needed0: dict[tuple[int, int], list[PartitionNode]],
        decisions: dict[frozenset[int], RoutingDecision],
        read_set: BatchReadSet,
    ) -> tuple[list[SpatialObject], int]:
        """One query's retrieval and filtering against the start-of-batch trees.

        Returns ``(hits, records examined)``.  The plan and the per-group
        collect order are deterministic (see :meth:`_query_plan`), so the
        hits come back in the same order no matter which thread — or how
        many threads — execute the queries of a batch.
        """
        q_lo, q_hi = box_to_arrays(query.box)
        hits: list[SpatialObject] = []
        count = 0
        for dataset_id, file, run in self._query_plan(query, needed0, decisions):
            group = read_set.read(file, run)
            mask = (group.dataset_ids == dataset_id) & intersect_mask(
                q_lo, q_hi, group.lo, group.hi
            )
            hits.extend(group.materialize(mask))
            count += group.n_records
        return hits, count

    def _read_and_filter(
        self,
        batch: QueryBatch,
        needed0: dict[tuple[int, int], list[PartitionNode]],
        read_set: BatchReadSet,
    ) -> tuple[list[list[SpatialObject]], list[int], list[BufferCounters]]:
        """Read every needed group once, filter each query with one mask each."""
        processor = self._processor
        disk = processor.catalog.datasets()[0].disk
        pool = disk.buffer_pool
        decisions = self._route_decisions(batch)
        results: list[list[SpatialObject]] = [[] for _ in batch.queries]
        examined: list[int] = [0 for _ in batch.queries]
        cache_deltas: list[BufferCounters] = [BufferCounters() for _ in batch.queries]
        for query in batch.queries:
            cache_start = pool.counters()
            hits, count = self._filter_one_query(query, needed0, decisions, read_set)
            disk.charge_cpu_records(count)
            results[query.index] = hits
            examined[query.index] = count
            cache_deltas[query.index] = pool.counters().delta_since(cache_start)
        return results, examined, cache_deltas

    # ------------------------------------------------------------------ #
    # Phase 4 — replay of the adaptive per-query pipeline
    # ------------------------------------------------------------------ #

    def _replay_updates(
        self,
        queries: Sequence[BatchQuery],
        first_touch: dict[int, int],
        extended: dict[tuple[int, int], Box],
        needed0: dict[tuple[int, int], list[PartitionNode]],
        versions0: dict[int, int],
        results: list[list[SpatialObject]],
        examined: list[int],
        cache_deltas: list[BufferCounters],
    ) -> list[QueryReport]:
        """Apply statistics, refinement and merging in sequential order.

        Works on the *current* trees: the leaves each query retrieved are
        re-resolved whenever a tree was refined since overlap resolution,
        which makes every hit count, refinement decision, statistics update
        and merge trigger identical to sequential execution.
        """
        processor = self._processor
        adaptor = processor.adaptor
        statistics = processor.statistics
        directory = processor.directory
        merger = processor.merger
        trees = processor.live_trees
        pool = processor.catalog.datasets()[0].disk.buffer_pool
        reports: list[QueryReport] = []
        for query in queries:
            requested = query.requested
            cache_start = pool.counters()
            report = QueryReport(
                query_index=processor.queries_executed,
                requested=tuple(sorted(requested)),
            )
            statistics.tick()
            report.initialized_datasets = [
                dataset_id
                for dataset_id in sorted(requested)
                if first_touch.get(dataset_id) == query.index
            ]
            needed: dict[int, list[PartitionNode]] = {}
            for dataset_id in sorted(requested):
                tree = trees[dataset_id]
                if tree.version == versions0[dataset_id]:
                    needed[dataset_id] = needed0[(query.index, dataset_id)]
                else:
                    # The tree was refined mid-replay; the scalar walk gives
                    # the same leaves in the same order without forcing a
                    # snapshot rebuild that the next refinement would
                    # invalidate again.
                    needed[dataset_id] = tree.leaves_overlapping(
                        extended[(query.index, dataset_id)]
                    )
            decision = choose_route(directory, requested)
            report.route = decision.kind.value
            info = decision.merge_info
            if info is not None:
                merger.mark_used(info.combination)
            accessed_keys: dict[int, set] = {}
            for dataset_id in sorted(requested):
                keys = set()
                for leaf in needed[dataset_id]:
                    keys.add(leaf.key)
                    leaf.hit_count += 1
                    report.partitions_read += 1
                    if (
                        info is not None
                        and dataset_id in decision.covered_datasets
                        and info.has_segment(leaf.key, dataset_id)
                    ):
                        report.partitions_from_merge += 1
                accessed_keys[dataset_id] = keys
            report.objects_examined = examined[query.index]
            report.results = len(results[query.index])
            for dataset_id in sorted(requested):
                tree = trees[dataset_id]
                for leaf in needed[dataset_id]:
                    if adaptor.maybe_refine(tree, leaf, query.box).refined:
                        report.refinements += 1
            statistics.record_query(
                requested, accessed_keys, query_volume=query.box.volume()
            )
            merge_outcome = merger.maybe_merge(requested, trees)
            report.merged = merge_outcome.merged
            report.merge_new_partitions = merge_outcome.new_partitions
            report.evicted_merge_files = len(merge_outcome.evicted_combinations)
            report.cache = cache_deltas[query.index] + pool.counters().delta_since(
                cache_start
            )
            processor.note_executed(report)
            reports.append(report)
        return reports
