"""The Statistics Collector (Section 3.2.1 of the paper).

While queries execute, Space Odyssey records

1. how often each *combination* of datasets ``C = {DS_1, ..., DS_N}`` is
   queried together, and
2. which partitions are retrieved in the context of each combination.

The Merger consults these statistics to decide when a combination becomes
hot enough (``> mt`` retrievals, ``|C| >= 3``) to copy its partitions into a
merge file, and which partitions to include.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.partition import PartitionKey

#: A combination of datasets queried together.
Combination = frozenset[int]


@dataclass
class CombinationStats:
    """Access statistics for one combination of datasets."""

    count: int = 0
    #: Partition keys retrieved in the context of the combination, per dataset.
    partitions: dict[int, set[PartitionKey]] = field(default_factory=lambda: defaultdict(set))
    #: How many queries of this combination retrieved each partition key
    #: (counting a key once per query, regardless of how many member
    #: datasets it was read from).
    key_hits: Counter = field(default_factory=Counter)
    #: Sum of the query volumes seen for this combination (for the running
    #: average the merger's convergence check uses).
    total_query_volume: float = 0.0
    last_query_index: int = -1

    def all_partition_keys(self) -> set[PartitionKey]:
        """Union of partition keys retrieved across the member datasets."""
        keys: set[PartitionKey] = set()
        for dataset_keys in self.partitions.values():
            keys.update(dataset_keys)
        return keys

    def average_query_volume(self) -> float:
        """Mean volume of the queries recorded for this combination."""
        if self.count == 0:
            return 0.0
        return self.total_query_volume / self.count


class StatisticsCollector:
    """Tracks combinations and partition accesses across the query stream."""

    def __init__(self) -> None:
        self._combinations: dict[Combination, CombinationStats] = {}
        self._partition_hits: Counter[tuple[int, PartitionKey]] = Counter()
        self._queries_seen = 0
        self._logical_clock = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def tick(self) -> int:
        """Advance and return the logical clock (used for LRU decisions)."""
        self._logical_clock += 1
        return self._logical_clock

    @property
    def logical_clock(self) -> int:
        """Current logical time (number of ticks so far)."""
        return self._logical_clock

    def record_query(
        self,
        combination: Iterable[int],
        partitions_by_dataset: Mapping[int, Iterable[PartitionKey]],
        query_volume: float = 0.0,
    ) -> CombinationStats:
        """Record one executed query.

        Parameters
        ----------
        combination:
            The dataset ids the query requested.
        partitions_by_dataset:
            For each requested dataset, the partition keys the query
            retrieved from it.
        query_volume:
            Volume of the query range (used by the merger's convergence
            check).
        """
        combo = frozenset(combination)
        if not combo:
            raise ValueError("a query must request at least one dataset")
        stats = self._combinations.setdefault(combo, CombinationStats())
        stats.count += 1
        stats.last_query_index = self._queries_seen
        stats.total_query_volume += max(query_volume, 0.0)
        query_keys: set[PartitionKey] = set()
        for dataset_id, keys in partitions_by_dataset.items():
            key_set = set(keys)
            query_keys.update(key_set)
            stats.partitions[dataset_id].update(key_set)
            for key in key_set:
                self._partition_hits[(dataset_id, key)] += 1
        stats.key_hits.update(query_keys)
        self._queries_seen += 1
        return stats

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    @property
    def queries_seen(self) -> int:
        """Total number of queries recorded."""
        return self._queries_seen

    def combination_count(self, combination: Iterable[int]) -> int:
        """How many times a combination has been queried."""
        stats = self._combinations.get(frozenset(combination))
        return stats.count if stats else 0

    def combination_stats(self, combination: Iterable[int]) -> CombinationStats | None:
        """Full statistics of a combination, if it has ever been queried."""
        return self._combinations.get(frozenset(combination))

    def combinations(self) -> dict[Combination, CombinationStats]:
        """All recorded combinations (a shallow copy of the mapping)."""
        return dict(self._combinations)

    def hottest_combinations(self, limit: int = 10) -> list[tuple[Combination, int]]:
        """Combinations ordered by access count, most frequent first."""
        ranked = sorted(
            self._combinations.items(), key=lambda item: item[1].count, reverse=True
        )
        return [(combo, stats.count) for combo, stats in ranked[:limit]]

    def partition_hit_count(self, dataset_id: int, key: PartitionKey) -> int:
        """How many recorded queries retrieved a given partition."""
        return self._partition_hits[(dataset_id, key)]

    def hottest_partitions(self, limit: int = 10) -> list[tuple[tuple[int, PartitionKey], int]]:
        """Partitions ordered by hit count, hottest first."""
        return self._partition_hits.most_common(limit)
