"""Thread-parallel batch execution with a deterministic writer phase.

:class:`ParallelExecutor` runs the same four-phase model as
:class:`~repro.core.batch.BatchExecutor` but fans the read-only middle out
across a :class:`~concurrent.futures.ThreadPoolExecutor`:

* **overlap resolution** is one task per combination group — each task
  resolves all of its group's query windows with one
  :meth:`~repro.core.partition.PartitionTree.leaves_overlapping_batch`
  kernel call over prebuilt leaf snapshots;
* **retrieval and filtering** is one task per query — page decode and the
  vectorized window mask run concurrently, with group reads deduplicated
  through a thread-safe :class:`ParallelReadSet` (per-key locks, so one
  group is decoded exactly once no matter how many queries race for it).

Everything that *mutates* engine state stays single-threaded and ordered:

* phase 1 initialises missing trees in sequential first-touch order before
  any worker starts (tree initialisation writes partition files);
* simulated CPU charges for the filtered records are applied in submission
  order after the parallel phase completes, so the accumulated
  ``cpu_seconds`` is the identical float sum the serial batch produces;
* phase 4 replays statistics, refinement and merging in submission order —
  the same deterministic writer phase the serial batch executor uses.

Because the parallel phases only read start-of-batch state and every
worker-side computation (plan construction, on-disk-order sorting, collect
order) is a deterministic function of that state, a parallel batch returns
bit-identical results (hit order included), ``QueryReport``\\ s, adaptive
state and on-disk bytes to the serial batch executor — and therefore, by
the batch oracle, result-identical state to sequential execution.  The
randomized differential fuzz harness (``tests/test_engine_fuzz.py``)
enforces this across engines, seeds and worker counts.

What is *not* reproduced bit-for-bit is the simulated I/O trace: threads
fetch pages in nondeterministic order, so head-position classification
(sequential vs random) and buffer-pool hit patterns may differ between
runs.  That trace never feeds back into results or adaptive decisions —
the cache is read-through/write-through and refinement depends only on
tree state and query windows — which is exactly why it can be left free.

Where the speedup comes from: NumPy releases the GIL inside its kernels
and the byte-copy work under the disk lock is small, so the decode +
filter work of independent queries overlaps on multi-core hosts.  Pair
``workers > 1`` with a sharded buffer pool
(``Disk(buffer_shards=...)``) so the decoded-array cache stripes its
lock contention as well.  On a single core (or for tiny batches) the
thread fan-out only adds overhead — ``workers=1`` falls back to the
serial batch executor.
"""

from __future__ import annotations

import atexit
import mmap
import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.core.batch import (
    BatchExecutor,
    BatchQuery,
    BatchReadSet,
    BatchResult,
    QueryBatch,
)
from repro.core.partition import PartitionNode
from repro.core.query_processor import QueryProcessor
from repro.data.columnar import DecodedGroup
from repro.data.spatial_object import SpatialObject
from repro.geometry.box import Box
from repro.geometry.vectorized import (
    box_to_arrays,
    boxes_to_arrays,
    intersect_mask,
    intersect_matrix,
)
from repro.obs.trace import maybe_span
from repro.storage.buffer import BufferCounters
from repro.storage.codec import decode_page_array
from repro.storage.pagedfile import PagedFile, StoredRun


def default_workers() -> int:
    """The worker count used when ``workers`` is requested but unspecified."""
    return min(8, os.cpu_count() or 1)


class ParallelReadSet(BatchReadSet):
    """A :class:`BatchReadSet` safe for concurrent readers.

    The dedup dictionary is guarded by one lock; decoding happens under a
    *per-group* lock so two queries racing for the same stored group never
    decode it twice (the loser blocks briefly, then counts a dedup hit),
    while queries needing different groups decode fully in parallel.
    Counter semantics match the serial read set exactly: ``group_reads``
    is the number of :meth:`read` calls and ``dedup_hits`` is that count
    minus the number of distinct groups, regardless of interleaving.
    """

    def __init__(self, dimension: int) -> None:
        super().__init__(dimension)
        self._registry_lock = threading.Lock()
        self._group_locks: dict[tuple, threading.Lock] = {}

    def read(self, file: PagedFile[SpatialObject], run: StoredRun) -> DecodedGroup:
        """The decoded records of one stored group (decoded exactly once)."""
        key = (file.name, run.extents, run.n_records)
        with self._registry_lock:
            self.group_reads += 1
            group = self._groups.get(key)
            if group is not None:
                self.dedup_hits += 1
                return group
            lock = self._group_locks.setdefault(key, threading.Lock())
        with lock:
            group = self._groups.get(key)
            if group is None:
                group = self._load(file, run)
                with self._registry_lock:
                    self._groups[key] = group
            else:
                with self._registry_lock:
                    self.dedup_hits += 1
        return group


class ParallelExecutor(BatchExecutor):
    """Runs one :class:`QueryBatch` across ``workers`` threads.

    Results, reports, adaptive state and on-disk bytes are bit-identical
    to :class:`~repro.core.batch.BatchExecutor` (see the module docstring
    for the argument); only wall-clock time and the per-query
    ``QueryReport.cache`` attribution — approximate under any batched
    execution — may differ.
    """

    def __init__(self, processor: QueryProcessor, workers: int | None = None) -> None:
        super().__init__(processor)
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._workers = workers

    @property
    def workers(self) -> int:
        """The maximum number of worker threads used per batch."""
        return self._workers

    _executor_name = "thread"

    def run(self, batch: QueryBatch) -> BatchResult:
        """Execute the batch; equivalent to sequential execution in order."""
        if self._workers == 1 or len(batch) < 2:
            return super().run(batch)
        processor = self._processor
        queries = batch.queries
        catalog = processor.catalog
        for query in queries:
            for dataset_id in query.requested:
                catalog.get(dataset_id)  # validates every id before any work

        tracer = processor.tracer
        with maybe_span(
            tracer,
            "batch",
            queries=len(queries),
            executor=self._executor_name,
            workers=self._workers,
        ):
            # Writer-side setup: initialise trees in first-touch order, then
            # freeze everything the workers will consume — extended windows,
            # per-tree leaf snapshots, routing decisions and merge-file
            # handles — so the parallel phases run over immutable state.
            with maybe_span(tracer, "batch.init_trees"):
                first_touch = self._initialize_trees(queries)
                extended = self._extended_windows(queries)
                self._prebuild_read_state(batch)
                decisions = self._route_decisions(batch)
                for decision in decisions.values():
                    if decision.merge_info is not None:
                        processor.merger.merge_file(decision.merge_info.combination)

            with ThreadPoolExecutor(
                max_workers=self._workers, thread_name_prefix="repro-batch"
            ) as executor:
                with maybe_span(tracer, "batch.overlap"):
                    needed0, versions0 = self._resolve_overlaps_parallel(
                        batch, extended, executor
                    )
                read_set = ParallelReadSet(catalog.dimension)
                with maybe_span(tracer, "batch.read_filter") as phase:
                    results, examined, cache_deltas = self._read_and_filter_parallel(
                        batch, needed0, decisions, read_set, executor,
                        tracer=tracer, parent=phase,
                    )

            # Deterministic writer phase: CPU charges in submission order
            # (the identical float sum the serial batch accumulates), then
            # the ordered replay of statistics, refinement and merging.
            with maybe_span(tracer, "batch.replay"):
                disk = catalog.datasets()[0].disk
                for query in queries:
                    disk.charge_cpu_records(examined[query.index])
                reports = self._replay_updates(
                    queries, first_touch, extended, needed0, versions0, results,
                    examined, cache_deltas,
                )
        return BatchResult(
            results=results,
            reports=reports,
            group_reads=read_set.group_reads,
            group_reads_deduped=read_set.dedup_hits,
        )

    # ------------------------------------------------------------------ #
    # Parallel phase 2 — overlap resolution, one task per combination group
    # ------------------------------------------------------------------ #

    def _prebuild_read_state(self, batch: QueryBatch) -> None:
        """Build every involved tree's leaf snapshot before fanning out.

        Snapshot construction mutates the tree's cache; doing it here —
        single-threaded, in sorted dataset order — keeps the parallel
        phases free of writes to shared structures.
        """
        trees = self._processor.live_trees
        involved = sorted({d for query in batch.queries for d in query.requested})
        for dataset_id in involved:
            trees[dataset_id].leaf_snapshot()

    def _resolve_overlaps_parallel(
        self,
        batch: QueryBatch,
        extended: dict[tuple[int, int], Box],
        executor: ThreadPoolExecutor,
    ) -> tuple[dict[tuple[int, int], list[PartitionNode]], dict[int, int]]:
        """Per-(query, dataset) overlapping leaves, one task per group."""
        trees = self._processor.live_trees
        versions0: dict[int, int] = {}
        groups = batch.groups()
        for combination in groups:
            for dataset_id in combination:
                versions0[dataset_id] = trees[dataset_id].version

        def resolve(
            combination: frozenset[int], group: list[BatchQuery]
        ) -> dict[tuple[int, int], list[PartitionNode]]:
            local: dict[tuple[int, int], list[PartitionNode]] = {}
            for dataset_id in sorted(combination):
                windows = [extended[(query.index, dataset_id)] for query in group]
                per_query = trees[dataset_id].leaves_overlapping_batch(windows)
                for query, leaves in zip(group, per_query):
                    local[(query.index, dataset_id)] = leaves
            return local

        futures = [
            executor.submit(resolve, combination, group)
            for combination, group in groups.items()
        ]
        needed0: dict[tuple[int, int], list[PartitionNode]] = {}
        for future in futures:  # merged in submission (group) order
            needed0.update(future.result())
        return needed0, versions0

    # ------------------------------------------------------------------ #
    # Parallel phase 3 — retrieval and filtering, one task per query
    # ------------------------------------------------------------------ #

    def _read_and_filter_parallel(
        self,
        batch: QueryBatch,
        needed0: dict[tuple[int, int], list[PartitionNode]],
        decisions,
        read_set: ParallelReadSet,
        executor: ThreadPoolExecutor,
        *,
        tracer=None,
        parent=None,
    ) -> tuple[list[list[SpatialObject]], list[int], list[BufferCounters]]:
        """Every query's decode + filter as one concurrent task.

        With a tracer attached, each task records a ``query.filter`` span
        explicitly parented on the dispatching phase span (``parent``) —
        worker threads have empty span stacks, so implicit nesting cannot
        apply across the pool boundary.
        """
        pool = self._processor.catalog.datasets()[0].disk.buffer_pool

        def work(
            query: BatchQuery,
        ) -> tuple[list[SpatialObject], int, BufferCounters]:
            with maybe_span(
                tracer, "query.filter", parent=parent, query=query.index
            ) as span:
                cache_start = pool.counters()
                hits, count = self._filter_one_query(
                    query, needed0, decisions, read_set
                )
                if span is not None:
                    span.attributes.update(hits=len(hits), examined=count)
                return hits, count, pool.counters().delta_since(cache_start)

        futures = [executor.submit(work, query) for query in batch.queries]
        results: list[list[SpatialObject]] = [[] for _ in batch.queries]
        examined: list[int] = [0 for _ in batch.queries]
        cache_deltas: list[BufferCounters] = [BufferCounters() for _ in batch.queries]
        for query, future in zip(batch.queries, futures):
            hits, count, delta = future.result()
            results[query.index] = hits
            examined[query.index] = count
            cache_deltas[query.index] = delta
        return results, examined, cache_deltas


# ---------------------------------------------------------------------- #
# Process-parallel execution
# ---------------------------------------------------------------------- #
#
# ProcessExecutor escapes the GIL entirely: the read-only phases (overlap
# resolution, page decode, vectorized filtering) run in a pool of worker
# *processes*.  Nothing mutable crosses the process boundary — workers
# receive immutable page bytes (a shared-memory staging block, or an mmap
# of the page file for a plain filesystem backend) plus plain-data task
# descriptions, and return plain hit objects.  The deterministic writer
# phase is byte-for-byte the one the serial batch executor runs, in the
# parent, under the gate.

_pool_lock = threading.Lock()
_pools: dict[int, ProcessPoolExecutor] = {}


def _process_pool(workers: int) -> ProcessPoolExecutor:
    """A lazily created, reused worker pool per worker count.

    Pools are expensive to start (a fork or spawn per worker), so they are
    shared across batches and engines for the life of the process.  That
    is safe because workers are stateless: every task carries its own
    immutable inputs.
    """
    with _pool_lock:
        pool = _pools.get(workers)
        if pool is None:
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
            _pools[workers] = pool
        return pool


def _discard_pool(workers: int) -> None:
    """Drop a (presumably broken) pool so the next batch starts a fresh one."""
    with _pool_lock:
        pool = _pools.pop(workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def _shutdown_pools() -> None:
    with _pool_lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(_shutdown_pools)


def _attach_shared_memory(name: str) -> shared_memory.SharedMemory:
    """Attach to the parent's staging block without tracking it.

    The parent owns the block's lifecycle (it unlinks after the batch);
    ``track=False`` (Python 3.13+) keeps the worker's resource tracker out
    of it.  Older interpreters attach plainly and then withdraw the
    registration the attach just made, so the tracker never warns about a
    "leaked" segment the parent already unlinked.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13 signature
        handle = shared_memory.SharedMemory(name=name)
        try:
            resource_tracker.unregister(handle._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker quirks are non-fatal
            pass
        return handle


def _resolve_overlap_group(payload, trace: bool = False):
    """Worker half of overlap resolution for one combination group.

    ``payload`` is a list of ``(dataset_id, lo, hi, q_lo, q_hi,
    query_indices)`` tuples — the per-dataset leaf-MBR corner matrices of
    the prebuilt snapshot plus the group's extended windows.  Returns
    ``{(query index, dataset_id): [leaf indices]}``; indices select rows
    of the snapshot the parent shipped, which it maps back to
    ``PartitionNode`` objects (exactly the kernel + gather that
    ``PartitionTree.leaves_overlapping_batch`` runs in-process).

    With ``trace=True`` (parent has a tracer attached) the return value
    becomes ``(out, (start_wall, duration_s, pid))`` — plain timing data
    the parent grafts into its trace.  The computation itself is
    identical either way.
    """
    start_wall = time.time()
    start_perf = time.perf_counter()
    out = {}
    for dataset_id, lo, hi, q_lo, q_hi, query_indices in payload:
        matrix = intersect_matrix(q_lo, q_hi, lo, hi)
        for query_index, row in zip(query_indices, matrix):
            out[(query_index, dataset_id)] = np.nonzero(row)[0].tolist()
    if trace:
        return out, (start_wall, time.perf_counter() - start_perf, os.getpid())
    return out


def _decode_worker_group(task, source, handles) -> DecodedGroup:
    """Decode one staged group inside a worker (zero-copy where possible)."""
    kind = source[0]
    offsets = source[2] if kind == "mmap" else source[1]
    if not offsets:
        # A zero-page group (an empty merge segment): nothing staged for
        # it, so don't touch the buffers — there may not even be a
        # staging block when the whole batch stages nothing.
        records = np.empty(0, dtype=task["dtype"])
        records.setflags(write=False)
        return DecodedGroup.from_records(records, task["dimension"])
    if kind == "shm":
        _, offsets, n_records = source
        handle = handles.get("shm")
        if handle is None:
            handle = _attach_shared_memory(task["shm_name"])
            handles["shm"] = handle
        buffer = handle.buf
    else:
        _, path, offsets, n_records = source
        handle = handles.get(("mmap", path))
        if handle is None:
            with open(path, "rb") as stream:
                handle = mmap.mmap(stream.fileno(), 0, access=mmap.ACCESS_READ)
            handles[("mmap", path)] = handle
        buffer = memoryview(handle)
    dtype = task["dtype"]
    page_size = task["page_size"]
    parts = []
    for offset in offsets:
        decoded = decode_page_array(dtype, buffer[offset : offset + page_size])
        if len(decoded):
            parts.append(decoded)
    if not parts:
        records = np.empty(0, dtype=dtype)
    elif len(parts) == 1:
        records = parts[0]
    else:
        records = np.concatenate(parts)
    records.setflags(write=False)
    if len(records) < n_records:
        raise ValueError(
            f"staged group is corrupt: expected {n_records} records, "
            f"decoded {len(records)}"
        )
    return DecodedGroup.from_records(records[:n_records], task["dimension"])


def _filter_staged_query(task, handles) -> list[SpatialObject]:
    """Decode + filter one query's plan over staged pages (worker side)."""
    q_lo = task["q_lo"]
    q_hi = task["q_hi"]
    groups: dict = {}
    hits: list[SpatialObject] = []
    for dataset_id, source in task["plan"]:
        group = groups.get(source)
        if group is None:
            group = _decode_worker_group(task, source, handles)
            groups[source] = group
        mask = (group.dataset_ids == dataset_id) & intersect_mask(
            q_lo, q_hi, group.lo, group.hi
        )
        hits.extend(group.materialize(mask))
    return hits


def _filter_query_task(task):
    """Pool entry point: run one query's filter, then release the mappings.

    The decode/filter work runs in an inner call so every NumPy view over
    the shared buffers dies with that frame *before* the mappings are
    closed (closing an mmap or shared-memory segment with live exported
    buffers raises ``BufferError``).  The returned hits are plain Python
    objects with no ties to the mappings.

    When the task carries ``trace=True`` the return value becomes
    ``(hits, (start_wall, duration_s, pid))`` so the parent can graft the
    worker-side timing into its trace; the filter work is identical.
    """
    start_wall = time.time()
    start_perf = time.perf_counter()
    handles: dict = {}
    try:
        hits = _filter_staged_query(task, handles)
    finally:
        for handle in handles.values():
            try:
                handle.close()
            except (BufferError, OSError, ValueError):  # pragma: no cover
                pass
    if task.get("trace"):
        return hits, (start_wall, time.perf_counter() - start_perf, os.getpid())
    return hits


class ProcessExecutor(ParallelExecutor):
    """Runs one :class:`QueryBatch` across ``workers`` processes.

    Same contract as :class:`ParallelExecutor` — results (hit order
    included), reports, adaptive state and on-disk bytes are bit-identical
    to the serial batch executor — but the read-only phases run in worker
    *processes*, so page decode and filtering scale past the GIL.

    What crosses the process boundary, and how:

    * **overlap resolution** ships each prebuilt leaf snapshot's MBR
      corner matrices plus the group's extended windows; workers run the
      same ``intersect_matrix`` kernel and return leaf *indices*, which
      the parent maps back to live ``PartitionNode`` objects.
    * **page decode + filtering** ships raw page bytes.  On a plain
      filesystem backend workers ``mmap`` the page files read-only and
      decode ``np.frombuffer`` views straight over the mapping (zero
      copy, CRC trailers verified per access).  Any other backend —
      in-memory, fault-injecting, retrying — is staged instead: the
      parent reads every distinct group's pages once through the normal
      :meth:`Disk.read_run` path (so cache accounting and any retry
      layer's semantics are preserved and injected faults are absorbed
      *before* bytes reach workers) into one ``multiprocessing.shared_memory``
      block that workers attach to read-only.
    * the deterministic **writer phase** (CPU charges in submission
      order, then the statistics/refinement/merge replay) never leaves
      the parent; it is the identical code path every other engine runs
      under the gate.

    Like the thread executor, the simulated I/O trace is not reproduced
    bit-for-bit (mmap reads are not charged at all); that trace never
    feeds back into results or adaptive decisions.  If the pool dies
    (a worker killed mid-batch), the batch transparently re-runs on the
    thread executor — every pre-step is idempotent and no adaptive state
    has been touched yet.
    """

    _executor_name = "process"

    def run(self, batch: QueryBatch) -> BatchResult:
        """Execute the batch; equivalent to sequential execution in order."""
        if self._workers == 1 or len(batch) < 2:
            return BatchExecutor.run(self, batch)
        processor = self._processor
        queries = batch.queries
        catalog = processor.catalog
        for query in queries:
            for dataset_id in query.requested:
                catalog.get(dataset_id)  # validates every id before any work

        tracer = processor.tracer
        with maybe_span(
            tracer,
            "batch",
            queries=len(queries),
            executor=self._executor_name,
            workers=self._workers,
        ):
            with maybe_span(tracer, "batch.init_trees"):
                first_touch = self._initialize_trees(queries)
                extended = self._extended_windows(queries)
                self._prebuild_read_state(batch)
                decisions = self._route_decisions(batch)
                for decision in decisions.values():
                    if decision.merge_info is not None:
                        processor.merger.merge_file(decision.merge_info.combination)

            try:
                pool = _process_pool(self._workers)
                with maybe_span(tracer, "batch.overlap") as overlap_span:
                    needed0, versions0 = self._resolve_overlaps_process(
                        batch, extended, pool, tracer=tracer, parent=overlap_span
                    )
                with maybe_span(tracer, "batch.read_filter") as filter_span:
                    results, examined, read_counts = self._read_and_filter_process(
                        batch, needed0, decisions, pool,
                        tracer=tracer, parent=filter_span,
                    )
            except BrokenProcessPool:
                # A worker died (OOM kill, signal).  Nothing adaptive has
                # been touched and the setup above is idempotent, so fall
                # back to the thread executor for this batch and start a
                # fresh pool next time.
                _discard_pool(self._workers)
                return super().run(batch)

            with maybe_span(tracer, "batch.replay"):
                disk = catalog.datasets()[0].disk
                for query in queries:
                    disk.charge_cpu_records(examined[query.index])
                cache_deltas = [BufferCounters() for _ in queries]
                reports = self._replay_updates(
                    queries, first_touch, extended, needed0, versions0, results,
                    examined, cache_deltas,
                )
        return BatchResult(
            results=results,
            reports=reports,
            group_reads=read_counts[0],
            group_reads_deduped=read_counts[1],
        )

    def _resolve_overlaps_process(
        self,
        batch: QueryBatch,
        extended: dict[tuple[int, int], Box],
        pool: ProcessPoolExecutor,
        *,
        tracer=None,
        parent=None,
    ) -> tuple[dict[tuple[int, int], list[PartitionNode]], dict[int, int]]:
        """Overlap resolution in workers, one task per combination group."""
        trees = self._processor.live_trees
        dimension = self._processor.catalog.dimension
        versions0: dict[int, int] = {}
        snapshots: dict[int, object] = {}
        groups = batch.groups()
        for combination in groups:
            for dataset_id in combination:
                versions0[dataset_id] = trees[dataset_id].version
                if dataset_id not in snapshots:
                    snapshots[dataset_id] = trees[dataset_id].leaf_snapshot()
        futures = []
        for combination, group in groups.items():
            payload = []
            for dataset_id in sorted(combination):
                snapshot = snapshots[dataset_id]
                windows = [extended[(query.index, dataset_id)] for query in group]
                q_lo, q_hi = boxes_to_arrays(windows, dimension=dimension)
                payload.append(
                    (
                        dataset_id,
                        snapshot.lo,
                        snapshot.hi,
                        q_lo,
                        q_hi,
                        [query.index for query in group],
                    )
                )
            if tracer is None:
                futures.append(pool.submit(_resolve_overlap_group, payload))
            else:
                futures.append(pool.submit(_resolve_overlap_group, payload, True))
        needed0: dict[tuple[int, int], list[PartitionNode]] = {}
        for future in futures:  # merged in submission (group) order
            resolved = future.result()
            if tracer is not None:
                # Graft the worker-side timing shipped back as plain data.
                resolved, (start_wall, duration_s, pid) = resolved
                tracer.record_completed(
                    "batch.overlap.worker",
                    parent=parent,
                    start_wall=start_wall,
                    duration_s=duration_s,
                    pid=pid,
                )
            for (query_index, dataset_id), indices in resolved.items():
                leaves = snapshots[dataset_id].leaves
                needed0[(query_index, dataset_id)] = [leaves[j] for j in indices]
        return needed0, versions0

    def _read_and_filter_process(
        self,
        batch: QueryBatch,
        needed0: dict[tuple[int, int], list[PartitionNode]],
        decisions,
        pool: ProcessPoolExecutor,
        *,
        tracer=None,
        parent=None,
    ) -> tuple[list[list[SpatialObject]], list[int], tuple[int, int]]:
        """Stage every distinct group's pages once, filter per query in workers."""
        processor = self._processor
        catalog = processor.catalog
        disk = catalog.datasets()[0].disk
        page_size = disk.page_size
        dtype = catalog.datasets()[0].file.dtype

        plans = {
            query.index: self._query_plan(query, needed0, decisions)
            for query in batch.queries
        }
        group_reads = sum(len(plan) for plan in plans.values())

        # Stage distinct groups in first-use order (deterministic).  Reads
        # go through Disk.read_run, so charging, the buffer pool and any
        # retry/fault wrapper behave exactly as for in-process engines.
        sources: dict[tuple, tuple] = {}
        staged_chunks: list[bytes] = []
        staged_size = 0
        mmap_cache: dict[str, tuple[str, int] | None] = {}
        for query in batch.queries:
            for dataset_id, file, run in plans[query.index]:
                key = (file.name, run.extents, run.n_records)
                if key in sources:
                    continue
                if file.name not in mmap_cache:
                    mmap_cache[file.name] = disk.mmap_descriptor(file.name)
                descriptor = mmap_cache[file.name]
                if descriptor is not None:
                    path, _ = descriptor
                    offsets = tuple(
                        page_no * page_size for page_no in run.page_numbers()
                    )
                    sources[key] = ("mmap", path, offsets, run.n_records)
                else:
                    offsets = []
                    for extent in run.extents:
                        for page in disk.read_run(file.name, extent.start, extent.count):
                            offsets.append(staged_size)
                            staged_chunks.append(page)
                            staged_size += page_size
                    sources[key] = ("shm", tuple(offsets), run.n_records)
        dedup_hits = group_reads - len(sources)

        block = None
        if staged_size:
            block = shared_memory.SharedMemory(create=True, size=staged_size)
            position = 0
            for chunk in staged_chunks:
                block.buf[position : position + len(chunk)] = chunk
                position += page_size
        del staged_chunks

        results: list[list[SpatialObject]] = [[] for _ in batch.queries]
        try:
            futures = []
            for query in batch.queries:
                q_lo, q_hi = box_to_arrays(query.box)
                task = {
                    "q_lo": q_lo,
                    "q_hi": q_hi,
                    "dtype": dtype,
                    "dimension": catalog.dimension,
                    "page_size": page_size,
                    "shm_name": None if block is None else block.name,
                    "trace": tracer is not None,
                    "plan": [
                        (
                            dataset_id,
                            sources[(file.name, run.extents, run.n_records)],
                        )
                        for dataset_id, file, run in plans[query.index]
                    ],
                }
                futures.append(pool.submit(_filter_query_task, task))
            for query, future in zip(batch.queries, futures):
                hits = future.result()
                if tracer is not None:
                    # Graft the worker-side timing shipped back as data.
                    hits, (start_wall, duration_s, pid) = hits
                    tracer.record_completed(
                        "query.filter",
                        parent=parent,
                        start_wall=start_wall,
                        duration_s=duration_s,
                        query=query.index,
                        hits=len(hits),
                        pid=pid,
                    )
                results[query.index] = hits
        finally:
            if block is not None:
                block.close()
                block.unlink()
        examined = [0 for _ in batch.queries]
        for query in batch.queries:
            examined[query.index] = sum(
                run.n_records for _, _, run in plans[query.index]
            )
        return results, examined, (group_reads, dedup_hits)
