"""Thread-parallel batch execution with a deterministic writer phase.

:class:`ParallelExecutor` runs the same four-phase model as
:class:`~repro.core.batch.BatchExecutor` but fans the read-only middle out
across a :class:`~concurrent.futures.ThreadPoolExecutor`:

* **overlap resolution** is one task per combination group — each task
  resolves all of its group's query windows with one
  :meth:`~repro.core.partition.PartitionTree.leaves_overlapping_batch`
  kernel call over prebuilt leaf snapshots;
* **retrieval and filtering** is one task per query — page decode and the
  vectorized window mask run concurrently, with group reads deduplicated
  through a thread-safe :class:`ParallelReadSet` (per-key locks, so one
  group is decoded exactly once no matter how many queries race for it).

Everything that *mutates* engine state stays single-threaded and ordered:

* phase 1 initialises missing trees in sequential first-touch order before
  any worker starts (tree initialisation writes partition files);
* simulated CPU charges for the filtered records are applied in submission
  order after the parallel phase completes, so the accumulated
  ``cpu_seconds`` is the identical float sum the serial batch produces;
* phase 4 replays statistics, refinement and merging in submission order —
  the same deterministic writer phase the serial batch executor uses.

Because the parallel phases only read start-of-batch state and every
worker-side computation (plan construction, on-disk-order sorting, collect
order) is a deterministic function of that state, a parallel batch returns
bit-identical results (hit order included), ``QueryReport``\\ s, adaptive
state and on-disk bytes to the serial batch executor — and therefore, by
the batch oracle, result-identical state to sequential execution.  The
randomized differential fuzz harness (``tests/test_engine_fuzz.py``)
enforces this across engines, seeds and worker counts.

What is *not* reproduced bit-for-bit is the simulated I/O trace: threads
fetch pages in nondeterministic order, so head-position classification
(sequential vs random) and buffer-pool hit patterns may differ between
runs.  That trace never feeds back into results or adaptive decisions —
the cache is read-through/write-through and refinement depends only on
tree state and query windows — which is exactly why it can be left free.

Where the speedup comes from: NumPy releases the GIL inside its kernels
and the byte-copy work under the disk lock is small, so the decode +
filter work of independent queries overlaps on multi-core hosts.  Pair
``workers > 1`` with a sharded buffer pool
(``Disk(buffer_shards=...)``) so the decoded-array cache stripes its
lock contention as well.  On a single core (or for tiny batches) the
thread fan-out only adds overhead — ``workers=1`` falls back to the
serial batch executor.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.core.batch import (
    BatchExecutor,
    BatchQuery,
    BatchReadSet,
    BatchResult,
    QueryBatch,
)
from repro.core.partition import PartitionNode
from repro.core.query_processor import QueryProcessor
from repro.data.columnar import DecodedGroup
from repro.data.spatial_object import SpatialObject
from repro.geometry.box import Box
from repro.storage.buffer import BufferCounters
from repro.storage.pagedfile import PagedFile, StoredRun


def default_workers() -> int:
    """The worker count used when ``workers`` is requested but unspecified."""
    return min(8, os.cpu_count() or 1)


class ParallelReadSet(BatchReadSet):
    """A :class:`BatchReadSet` safe for concurrent readers.

    The dedup dictionary is guarded by one lock; decoding happens under a
    *per-group* lock so two queries racing for the same stored group never
    decode it twice (the loser blocks briefly, then counts a dedup hit),
    while queries needing different groups decode fully in parallel.
    Counter semantics match the serial read set exactly: ``group_reads``
    is the number of :meth:`read` calls and ``dedup_hits`` is that count
    minus the number of distinct groups, regardless of interleaving.
    """

    def __init__(self, dimension: int) -> None:
        super().__init__(dimension)
        self._registry_lock = threading.Lock()
        self._group_locks: dict[tuple, threading.Lock] = {}

    def read(self, file: PagedFile[SpatialObject], run: StoredRun) -> DecodedGroup:
        """The decoded records of one stored group (decoded exactly once)."""
        key = (file.name, run.extents, run.n_records)
        with self._registry_lock:
            self.group_reads += 1
            group = self._groups.get(key)
            if group is not None:
                self.dedup_hits += 1
                return group
            lock = self._group_locks.setdefault(key, threading.Lock())
        with lock:
            group = self._groups.get(key)
            if group is None:
                group = self._load(file, run)
                with self._registry_lock:
                    self._groups[key] = group
            else:
                with self._registry_lock:
                    self.dedup_hits += 1
        return group


class ParallelExecutor(BatchExecutor):
    """Runs one :class:`QueryBatch` across ``workers`` threads.

    Results, reports, adaptive state and on-disk bytes are bit-identical
    to :class:`~repro.core.batch.BatchExecutor` (see the module docstring
    for the argument); only wall-clock time and the per-query
    ``QueryReport.cache`` attribution — approximate under any batched
    execution — may differ.
    """

    def __init__(self, processor: QueryProcessor, workers: int | None = None) -> None:
        super().__init__(processor)
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._workers = workers

    @property
    def workers(self) -> int:
        """The maximum number of worker threads used per batch."""
        return self._workers

    def run(self, batch: QueryBatch) -> BatchResult:
        """Execute the batch; equivalent to sequential execution in order."""
        if self._workers == 1 or len(batch) < 2:
            return super().run(batch)
        processor = self._processor
        queries = batch.queries
        catalog = processor.catalog
        for query in queries:
            for dataset_id in query.requested:
                catalog.get(dataset_id)  # validates every id before any work

        # Writer-side setup: initialise trees in first-touch order, then
        # freeze everything the workers will consume — extended windows,
        # per-tree leaf snapshots, routing decisions and merge-file handles
        # — so the parallel phases run over immutable state.
        first_touch = self._initialize_trees(queries)
        extended = self._extended_windows(queries)
        self._prebuild_read_state(batch)
        decisions = self._route_decisions(batch)
        for decision in decisions.values():
            if decision.merge_info is not None:
                processor.merger.merge_file(decision.merge_info.combination)

        with ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="repro-batch"
        ) as executor:
            needed0, versions0 = self._resolve_overlaps_parallel(
                batch, extended, executor
            )
            read_set = ParallelReadSet(catalog.dimension)
            results, examined, cache_deltas = self._read_and_filter_parallel(
                batch, needed0, decisions, read_set, executor
            )

        # Deterministic writer phase: CPU charges in submission order (the
        # identical float sum the serial batch accumulates), then the
        # ordered replay of statistics, refinement and merging.
        disk = catalog.datasets()[0].disk
        for query in queries:
            disk.charge_cpu_records(examined[query.index])
        reports = self._replay_updates(
            queries, first_touch, extended, needed0, versions0, results, examined,
            cache_deltas,
        )
        return BatchResult(
            results=results,
            reports=reports,
            group_reads=read_set.group_reads,
            group_reads_deduped=read_set.dedup_hits,
        )

    # ------------------------------------------------------------------ #
    # Parallel phase 2 — overlap resolution, one task per combination group
    # ------------------------------------------------------------------ #

    def _prebuild_read_state(self, batch: QueryBatch) -> None:
        """Build every involved tree's leaf snapshot before fanning out.

        Snapshot construction mutates the tree's cache; doing it here —
        single-threaded, in sorted dataset order — keeps the parallel
        phases free of writes to shared structures.
        """
        trees = self._processor.live_trees
        involved = sorted({d for query in batch.queries for d in query.requested})
        for dataset_id in involved:
            trees[dataset_id].leaf_snapshot()

    def _resolve_overlaps_parallel(
        self,
        batch: QueryBatch,
        extended: dict[tuple[int, int], Box],
        executor: ThreadPoolExecutor,
    ) -> tuple[dict[tuple[int, int], list[PartitionNode]], dict[int, int]]:
        """Per-(query, dataset) overlapping leaves, one task per group."""
        trees = self._processor.live_trees
        versions0: dict[int, int] = {}
        groups = batch.groups()
        for combination in groups:
            for dataset_id in combination:
                versions0[dataset_id] = trees[dataset_id].version

        def resolve(
            combination: frozenset[int], group: list[BatchQuery]
        ) -> dict[tuple[int, int], list[PartitionNode]]:
            local: dict[tuple[int, int], list[PartitionNode]] = {}
            for dataset_id in sorted(combination):
                windows = [extended[(query.index, dataset_id)] for query in group]
                per_query = trees[dataset_id].leaves_overlapping_batch(windows)
                for query, leaves in zip(group, per_query):
                    local[(query.index, dataset_id)] = leaves
            return local

        futures = [
            executor.submit(resolve, combination, group)
            for combination, group in groups.items()
        ]
        needed0: dict[tuple[int, int], list[PartitionNode]] = {}
        for future in futures:  # merged in submission (group) order
            needed0.update(future.result())
        return needed0, versions0

    # ------------------------------------------------------------------ #
    # Parallel phase 3 — retrieval and filtering, one task per query
    # ------------------------------------------------------------------ #

    def _read_and_filter_parallel(
        self,
        batch: QueryBatch,
        needed0: dict[tuple[int, int], list[PartitionNode]],
        decisions,
        read_set: ParallelReadSet,
        executor: ThreadPoolExecutor,
    ) -> tuple[list[list[SpatialObject]], list[int], list[BufferCounters]]:
        """Every query's decode + filter as one concurrent task."""
        pool = self._processor.catalog.datasets()[0].disk.buffer_pool

        def work(
            query: BatchQuery,
        ) -> tuple[list[SpatialObject], int, BufferCounters]:
            cache_start = pool.counters()
            hits, count = self._filter_one_query(query, needed0, decisions, read_set)
            return hits, count, pool.counters().delta_since(cache_start)

        futures = [executor.submit(work, query) for query in batch.queries]
        results: list[list[SpatialObject]] = [[] for _ in batch.queries]
        examined: list[int] = [0 for _ in batch.queries]
        cache_deltas: list[BufferCounters] = [BufferCounters() for _ in batch.queries]
        for query, future in zip(batch.queries, futures):
            hits, count, delta = future.result()
            results[query.index] = hits
            examined[query.index] = count
            cache_deltas[query.index] = delta
        return results, examined, cache_deltas
