"""Space Odyssey: the paper's primary contribution.

The package mirrors the architecture of Figure 1 in the paper:

* the **Adaptor** (:mod:`repro.core.adaptor`) performs incremental,
  space-oriented indexing — it creates the first level of partitions the
  first time a dataset is queried and refines hot partitions in place as
  queries keep arriving;
* the **Statistics Collector** (:mod:`repro.core.statistics`) tracks which
  combinations of datasets are queried together and which partitions those
  queries retrieve;
* the **Merger** (:mod:`repro.core.merger`) copies partitions that are
  frequently retrieved together into append-only merge files whose layout
  allows sequential retrieval, under an LRU-evicted space budget;
* the **Query Processor** (:mod:`repro.core.query_processor`) orchestrates a
  query: routing between merge files and individual partition files,
  filtering, triggering refinement and merging;
* :class:`~repro.core.odyssey.SpaceOdyssey` is the public facade tying the
  components together.
"""

from repro.core.config import OdysseyConfig
from repro.core.odyssey import SpaceOdyssey
from repro.core.partition import PartitionNode, PartitionTree
from repro.core.query_processor import QueryReport
from repro.core.statistics import StatisticsCollector

__all__ = [
    "OdysseyConfig",
    "PartitionNode",
    "PartitionTree",
    "QueryReport",
    "SpaceOdyssey",
    "StatisticsCollector",
]
