"""Space Odyssey: the paper's primary contribution.

The package mirrors the architecture of Figure 1 in the paper:

* the **Adaptor** (:mod:`repro.core.adaptor`) performs incremental,
  space-oriented indexing — it creates the first level of partitions the
  first time a dataset is queried and refines hot partitions in place as
  queries keep arriving;
* the **Statistics Collector** (:mod:`repro.core.statistics`) tracks which
  combinations of datasets are queried together and which partitions those
  queries retrieve;
* the **Merger** (:mod:`repro.core.merger`) copies partitions that are
  frequently retrieved together into append-only merge files whose layout
  allows sequential retrieval, under an LRU-evicted space budget;
* the **Query Processor** (:mod:`repro.core.query_processor`) orchestrates a
  query: routing between merge files and individual partition files,
  filtering, triggering refinement and merging;
* :class:`~repro.core.odyssey.SpaceOdyssey` is the public facade tying the
  components together.

Batched execution
-----------------
On top of the per-query pipeline, :mod:`repro.core.batch` provides a
batched execution engine (:class:`~repro.core.batch.QueryBatch`,
:meth:`SpaceOdyssey.query_batch <repro.core.odyssey.SpaceOdyssey.query_batch>`)
that amortises work across a group of queries: queries are grouped by
requested dataset combination, partition overlap tests are resolved for
the whole batch with the vectorized kernels of
:mod:`repro.geometry.vectorized`, page reads are deduplicated through a
shared read set layered on the buffer pool, and statistics, refinement and
merging are applied once per batch — with per-query results and the
post-batch adaptive state guaranteed identical to sequential execution.
:mod:`repro.core.parallel` fans the read-only phases of a batch across a
thread pool (``query_batch(..., workers=K)``) while keeping the adaptive
updates in a single deterministic writer phase, bit-identical to the
serial batch.
"""

from repro.core.batch import BatchResult, QueryBatch
from repro.core.config import OdysseyConfig
from repro.core.odyssey import SpaceOdyssey
from repro.core.parallel import ParallelExecutor
from repro.core.partition import PartitionNode, PartitionTree
from repro.core.query_processor import QueryReport
from repro.core.recovery import DurabilityLog, RecoveryError
from repro.core.statistics import StatisticsCollector

__all__ = [
    "BatchResult",
    "DurabilityLog",
    "OdysseyConfig",
    "ParallelExecutor",
    "PartitionNode",
    "PartitionTree",
    "QueryBatch",
    "QueryReport",
    "RecoveryError",
    "SpaceOdyssey",
    "StatisticsCollector",
]
