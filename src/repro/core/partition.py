"""Incremental space-oriented partition trees.

Each dataset queried through Space Odyssey gets a :class:`PartitionTree` — a
generalized Octree whose nodes cover regular grid subdivisions of the
universe.  Leaves own a group of object records in the dataset's partition
file; internal nodes only route.  Trees start with a single unindexed state
and are populated lazily: the Adaptor creates the first level when the
dataset is first queried and refines leaves one level at a time afterwards.

Partition identity
------------------
A partition is identified by its *key*: the tuple of child indices on the
path from the root.  Because every dataset shares the same universe and the
same per-level split factor, equal keys denote the *same spatial region* in
every dataset — this is what lets the Merger recognise "the same partition"
across datasets and merge only partitions at the same refinement level
(equal key length).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.data.dataset import Dataset
from repro.data.spatial_object import SpatialObject, spatial_object_codec
from repro.geometry.box import Box
from repro.geometry.vectorized import (
    boxes_to_arrays,
    grid_child_indices,
    intersect_mask,
    intersect_matrix,
)
from repro.storage.pagedfile import PagedFile, StoredRun

#: A partition's identity: child indices along the path from the root.
PartitionKey = tuple[int, ...]


def partition_file_name(dataset_name: str) -> str:
    """Conventional name of a dataset's incremental partition file."""
    return f"odyssey/{dataset_name}.partitions"


@dataclass
class PartitionNode:
    """One node of a partition tree.

    A node is either a *leaf* (it owns a stored group of objects, possibly
    empty) or an *internal* node with exactly ``ppl`` children.
    """

    key: PartitionKey
    box: Box
    run: StoredRun | None = None
    children: list["PartitionNode"] | None = None
    hit_count: int = 0
    _volume: float | None = field(default=None, repr=False, compare=False)

    @property
    def level(self) -> int:
        """Depth of the node (level 1 = the first, coarsest partitions)."""
        return len(self.key)

    @property
    def is_leaf(self) -> bool:
        """Whether the node currently stores objects itself."""
        return self.children is None

    @property
    def n_objects(self) -> int:
        """Number of objects stored in the node (0 for internal nodes)."""
        if self.run is None:
            return 0
        return self.run.n_records

    def volume(self) -> float:
        """Volume of the region the node covers (cached; the box never changes)."""
        if self._volume is None:
            self._volume = self.box.volume()
        return self._volume


@dataclass(frozen=True, slots=True)
class TreeEpochSnapshot:
    """A full immutable capture of one tree's read state for an epoch.

    :class:`LeafSnapshot` freezes the leaf *set* and MBR arrays but shares
    the (mutable) :class:`PartitionNode` objects — a later refinement
    nulls a captured leaf's ``run`` in place.  The epoch capture therefore
    also freezes every leaf's :class:`~repro.storage.pagedfile.StoredRun`
    at capture time, keyed by partition key (keys are permanent and never
    reassigned), plus everything a reader needs without touching the live
    tree: the window-extension parameters and the partition file handle.
    Captured under the adaptation lock, so all fields are mutually
    consistent.
    """

    version: int
    snapshot: LeafSnapshot
    runs: tuple[StoredRun | None, ...]
    run_by_key: dict[PartitionKey, StoredRun | None]
    max_extent: tuple[float, ...]
    universe: Box
    file: PagedFile

    def run_of(self, leaf: PartitionNode) -> StoredRun | None:
        """The leaf's stored run as of the capture (not the live one)."""
        return self.run_by_key[leaf.key]

    def overlapping_batch(self, boxes: Sequence[Box]) -> list[list[PartitionNode]]:
        """Frozen-state :meth:`PartitionTree.leaves_overlapping_batch`.

        Runs the same ``intersect_matrix`` kernel over the captured MBR
        arrays, so it returns exactly the leaves (in exactly the order)
        the live tree would have returned at capture time — without
        touching the live tree's snapshot cache.
        """
        boxes = list(boxes)
        if not boxes:
            return []
        snapshot = self.snapshot
        if not snapshot.leaves:
            return [[] for _ in boxes]
        q_lo, q_hi = boxes_to_arrays(boxes, dimension=self.universe.dimension)
        matrix = intersect_matrix(q_lo, q_hi, snapshot.lo, snapshot.hi)
        leaves = snapshot.leaves
        return [[leaves[j] for j in np.nonzero(row)[0]] for row in matrix]


@dataclass(frozen=True, slots=True)
class LeafSnapshot:
    """An immutable view of a tree's leaves with their MBRs as NumPy arrays.

    ``leaves`` are ordered exactly as the scalar depth-first search of
    :meth:`PartitionTree.leaves_overlapping` visits them, so a vectorized
    overlap test that filters this sequence produces the *same leaves in
    the same order* as the scalar walk — the property the batched query
    engine relies on to stay bit-identical with sequential execution.
    ``version`` records the tree structure version the snapshot was taken
    at; the tree invalidates the cached snapshot whenever a refinement or
    the initial partitioning changes the leaf set.
    """

    version: int
    leaves: tuple[PartitionNode, ...]
    lo: np.ndarray
    hi: np.ndarray


class PartitionTree:
    """The incremental index of one dataset.

    The tree does not decide *when* to refine — that is the Adaptor's job —
    but owns all structural bookkeeping: node lookup, overlap search, object
    assignment and the partition file.
    """

    def __init__(self, dataset: Dataset, splits_per_dim: int) -> None:
        if splits_per_dim < 2:
            raise ValueError("splits_per_dim must be >= 2")
        self._dataset = dataset
        self._splits = splits_per_dim
        self._universe = dataset.universe
        codec = spatial_object_codec(dataset.dimension)
        self._file: PagedFile[SpatialObject] = PagedFile(
            dataset.disk, partition_file_name(dataset.name), codec
        )
        self._root_children: list[PartitionNode] | None = None
        self._nodes: dict[PartitionKey, PartitionNode] = {}
        self._max_extent: tuple[float, ...] = (0.0,) * dataset.dimension
        self._n_objects = 0
        self._version = 0
        self._leaf_snapshot: LeafSnapshot | None = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def dataset(self) -> Dataset:
        """The dataset this tree indexes."""
        return self._dataset

    @property
    def universe(self) -> Box:
        """The indexed space."""
        return self._universe

    @property
    def splits_per_dim(self) -> int:
        """Per-dimension split factor (``ppl ** (1/d)``)."""
        return self._splits

    @property
    def partitions_per_level(self) -> int:
        """Children per refined partition (``ppl``)."""
        return self._splits**self._universe.dimension

    @property
    def file(self) -> PagedFile[SpatialObject]:
        """The partition file the tree's leaves live in."""
        return self._file

    @property
    def is_initialized(self) -> bool:
        """Whether the first-level partitioning has been performed."""
        return self._root_children is not None

    @property
    def max_extent(self) -> tuple[float, ...]:
        """Maximum object extent per dimension (for query-window extension)."""
        return self._max_extent

    @property
    def n_objects(self) -> int:
        """Number of objects indexed by the tree."""
        return self._n_objects

    @property
    def n_partitions(self) -> int:
        """Number of leaf partitions currently in the tree."""
        return sum(1 for node in self._nodes.values() if node.is_leaf)

    @property
    def version(self) -> int:
        """Structure version; bumped whenever the leaf set changes."""
        return self._version

    @property
    def depth(self) -> int:
        """Deepest leaf level (0 when uninitialised)."""
        if not self._nodes:
            return 0
        return max(node.level for node in self._nodes.values() if node.is_leaf)

    def node(self, key: PartitionKey) -> PartitionNode:
        """Look up a node by key."""
        try:
            return self._nodes[key]
        except KeyError:
            raise KeyError(f"no partition with key {key!r}") from None

    def has_leaf(self, key: PartitionKey) -> bool:
        """Whether ``key`` names an existing *leaf* partition."""
        node = self._nodes.get(key)
        return node is not None and node.is_leaf

    def leaves(self) -> Iterator[PartitionNode]:
        """Iterate over all leaf partitions."""
        return (node for node in self._nodes.values() if node.is_leaf)

    # ------------------------------------------------------------------ #
    # Structure building (called by the Adaptor)
    # ------------------------------------------------------------------ #

    def child_box(self, parent_box: Box, child_index: int) -> Box:
        """The region of one child of a partition."""
        return parent_box.split_grid(self._splits)[child_index]

    def assign_to_children(
        self, parent_box: Box, objects: list[SpatialObject]
    ) -> list[list[SpatialObject]]:
        """Distribute objects to the ``ppl`` children of a region by centre."""
        groups: list[list[SpatialObject]] = [[] for _ in range(self.partitions_per_level)]
        for obj in objects:
            groups[parent_box.child_index(obj.center, self._splits)].append(obj)
        return groups

    def assign_array_to_children(
        self, parent_box: Box, records: np.ndarray
    ) -> list[np.ndarray]:
        """Columnar :meth:`assign_to_children` over structured record arrays.

        Object centres are compared against the child grid in one kernel
        call; each child receives the records assigned to it *in record
        order*, so the resulting groups are byte-identical to the scalar
        assignment.
        """
        if not len(records):
            return [records[:0] for _ in range(self.partitions_per_level)]
        centers = (records["lo"] + records["hi"]) / 2.0
        indices = grid_child_indices(
            centers, parent_box.lo, parent_box.hi, self._splits
        )
        return [records[indices == child] for child in range(self.partitions_per_level)]

    def install_first_level(
        self,
        groups: list[list[SpatialObject]],
        runs: list[StoredRun],
        max_extent: tuple[float, ...],
        n_objects: int,
    ) -> None:
        """Install the level-1 partitions produced by the initial raw scan."""
        if self.is_initialized:
            raise RuntimeError("partition tree is already initialised")
        if len(groups) != self.partitions_per_level or len(runs) != self.partitions_per_level:
            raise ValueError("expected one group and one run per first-level partition")
        child_boxes = self._universe.split_grid(self._splits)
        children: list[PartitionNode] = []
        for index, (box, run) in enumerate(zip(child_boxes, runs)):
            node = PartitionNode(key=(index,), box=box, run=run)
            children.append(node)
            self._nodes[node.key] = node
        self._root_children = children
        self._max_extent = max_extent
        self._n_objects = n_objects
        self._bump_version()

    def replace_with_children(
        self, parent: PartitionNode, runs: list[StoredRun]
    ) -> list[PartitionNode]:
        """Turn a leaf into an internal node whose children own ``runs``."""
        if not parent.is_leaf:
            raise ValueError(f"partition {parent.key!r} is not a leaf")
        if len(runs) != self.partitions_per_level:
            raise ValueError("expected one run per child partition")
        child_boxes = parent.box.split_grid(self._splits)
        children: list[PartitionNode] = []
        for index, (box, run) in enumerate(zip(child_boxes, runs)):
            node = PartitionNode(key=parent.key + (index,), box=box, run=run)
            children.append(node)
            self._nodes[node.key] = node
        parent.children = children
        parent.run = None
        self._bump_version()
        return children

    def _bump_version(self) -> None:
        self._version += 1
        self._leaf_snapshot = None

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #

    def leaves_overlapping(self, box: Box) -> list[PartitionNode]:
        """All leaf partitions whose region intersects ``box``."""
        if not self.is_initialized:
            raise RuntimeError("partition tree has not been initialised yet")
        results: list[PartitionNode] = []
        stack: list[PartitionNode] = [
            node for node in self._root_children or [] if node.box.intersects(box)
        ]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                results.append(node)
            else:
                stack.extend(
                    child for child in node.children or [] if child.box.intersects(box)
                )
        return results

    def leaf_snapshot(self) -> LeafSnapshot:
        """Leaves in scalar-search order, with their MBR corners as arrays.

        The snapshot is cached and rebuilt lazily after structural changes
        (the per-partition MBR arrays the vectorized overlap kernels
        consume); :attr:`version` ties a snapshot to the structure it was
        taken from.
        """
        if not self.is_initialized:
            raise RuntimeError("partition tree has not been initialised yet")
        snapshot = self._leaf_snapshot
        if snapshot is None or snapshot.version != self._version:
            leaves = self._leaves_in_search_order()
            lo, hi = boxes_to_arrays(
                [leaf.box for leaf in leaves], dimension=self._universe.dimension
            )
            snapshot = LeafSnapshot(
                version=self._version, leaves=tuple(leaves), lo=lo, hi=hi
            )
            self._leaf_snapshot = snapshot
        return snapshot

    def epoch_snapshot(self) -> TreeEpochSnapshot:
        """Capture the tree's full read state for an engine epoch.

        Must be called under the adaptation lock (no concurrent
        refinement), so the captured runs are consistent with the
        captured leaf set.  The result shares the cached
        :class:`LeafSnapshot` and the live node objects but freezes every
        leaf's run — see :class:`TreeEpochSnapshot`.
        """
        snapshot = self.leaf_snapshot()
        return TreeEpochSnapshot(
            version=self._version,
            snapshot=snapshot,
            runs=tuple(leaf.run for leaf in snapshot.leaves),
            run_by_key={leaf.key: leaf.run for leaf in snapshot.leaves},
            max_extent=self._max_extent,
            universe=self._universe,
            file=self._file,
        )

    def _leaves_in_search_order(self) -> list[PartitionNode]:
        """All leaves in the visitation order of :meth:`leaves_overlapping`.

        Uses the same explicit stack as the scalar walk but without the
        overlap filter.  Because pruning a node from a stack DFS removes
        its whole subtree without reordering the remaining visits, the
        scalar result for any query box is exactly this sequence filtered
        by the overlap predicate — which is what lets the vectorized path
        reproduce the scalar order.
        """
        order: list[PartitionNode] = []
        stack: list[PartitionNode] = list(self._root_children or [])
        while stack:
            node = stack.pop()
            if node.is_leaf:
                order.append(node)
            else:
                stack.extend(node.children or [])
        return order

    def leaves_overlapping_vectorized(self, box: Box) -> list[PartitionNode]:
        """Vectorized :meth:`leaves_overlapping`: one kernel call over the snapshot.

        Returns exactly the leaves (in exactly the order) the scalar DFS
        walk produces, by filtering the cached search-order snapshot with
        one :func:`~repro.geometry.vectorized.intersect_mask` call — the
        sequential engine's per-query overlap test.
        """
        snapshot = self.leaf_snapshot()
        if not snapshot.leaves:
            return []
        mask = intersect_mask(
            np.asarray(box.lo, dtype=np.float64),
            np.asarray(box.hi, dtype=np.float64),
            snapshot.lo,
            snapshot.hi,
        )
        leaves = snapshot.leaves
        return [leaves[j] for j in np.nonzero(mask)[0]]

    def leaves_overlapping_batch(self, boxes: Sequence[Box]) -> list[list[PartitionNode]]:
        """Leaf partitions intersecting each of ``boxes``, resolved in one kernel call.

        Returns one list per input box, each ordered identically to what
        :meth:`leaves_overlapping` would return for that box.
        """
        boxes = list(boxes)
        if not boxes:
            return []
        snapshot = self.leaf_snapshot()
        if not snapshot.leaves:
            return [[] for _ in boxes]
        q_lo, q_hi = boxes_to_arrays(boxes, dimension=self._universe.dimension)
        matrix = intersect_matrix(q_lo, q_hi, snapshot.lo, snapshot.hi)
        leaves = snapshot.leaves
        return [
            [leaves[j] for j in np.nonzero(row)[0]] for row in matrix
        ]

    def read_partition(self, node: PartitionNode) -> list[SpatialObject]:
        """Read one leaf partition's objects from the partition file."""
        if not node.is_leaf:
            raise ValueError(f"partition {node.key!r} is not a leaf")
        if node.run is None or node.run.n_records == 0:
            return []
        return self._file.read_group(node.run)

    def read_partition_array(self, node: PartitionNode) -> np.ndarray:
        """Columnar :meth:`read_partition`: the leaf's records as a structured array."""
        if not node.is_leaf:
            raise ValueError(f"partition {node.key!r} is not a leaf")
        if node.run is None or node.run.n_records == 0:
            dtype = self._file.dtype
            assert dtype is not None  # spatial codecs always carry one
            return np.empty(0, dtype=dtype)
        return self._file.read_group_array(node.run)

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #

    def total_stored_objects(self) -> int:
        """Sum of objects over all leaves (should equal :attr:`n_objects`)."""
        return sum(node.n_objects for node in self.leaves())

    def describe(self) -> dict[str, int]:
        """A small structural summary used in reports and tests."""
        return {
            "n_objects": self._n_objects,
            "n_partitions": self.n_partitions,
            "depth": self.depth,
            "file_pages": self._file.num_pages(),
        }
