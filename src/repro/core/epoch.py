"""Epoch-versioned snapshot reads: MVCC for the adaptive engine.

The engine mutates partition trees, the merge directory and statistics on
every query, which is why top-level operations serialize on the
QueryProcessor's gate lock.  This module decouples *readers* from that
lock: every completed adaptation publishes an immutable
:class:`EngineEpoch` — a copy-on-write capture of the partition trees'
leaf state, the merge-file map and per-combination statistics — and a
snapshot reader pins the current epoch by refcount, runs overlap
resolution, page decode and filtering entirely against the pinned
capture, and only re-enters the gate for the short writer phase (the
in-order replay of statistics, refinement and merging that
:mod:`repro.core.parallel` already runs single-threaded).

Three mechanisms make a pinned epoch readable while adaptation runs:

**Copy-on-write capture.**  :meth:`EpochManager.publish` (always called
under the gate) snapshots each tree's leaf runs
(:meth:`~repro.core.partition.PartitionTree.epoch_snapshot`) and a frozen
copy of the merge directory, reusing the previous epoch's captures for
any tree or directory whose version counter is unchanged — at
convergence, publishing is a dictionary copy, not a rebuild.

**Retained pre-images (undo pages).**  The paper's in-place refinement
overwrites partition pages, and merge eviction deletes files; both would
tear a pinned reader's view.  The manager registers as a *snapshot sink*
on the :class:`~repro.storage.disk.Disk`: under the disk lock, the
pre-image bytes of every destructively written page are retained into the
**latest published** epoch (first pre-image wins, so an epoch's overlay
holds each page's value as of its publish).  A reader pinned at epoch
``e`` resolves a page by walking the chain ``e → e.next → ...`` and
taking the first retained pre-image, falling back to the live page —
:meth:`EngineEpoch.lookup_page`, consulted by
:meth:`Disk.read_run_at` under the same lock that serializes retention.
Publish links ``prev.next`` *before* switching the retention target, so
a pre-image can never land in an epoch a pinned reader cannot reach.

**Refcounted release.**  Pins and unpins go through the manager's lock;
the chain is pruned from its head whenever the oldest epochs are
unpinned and superseded, so retained pages and captures are freed as
soon as no reader can need them (and a pinned epoch is never freed).

Correctness story: query answers are exact functions of the data and the
query window — refinement state only changes *how* data is read — so a
reader pinned to a slightly older epoch returns bit-identical hits.  The
writer phases of concurrent batches still serialize on the gate in
arrival order, so the adaptive state evolves exactly as sequential
execution.  In isolation, :class:`EpochExecutor` is bit-identical to the
serial batch executor, reports and ``objects_examined`` included; the
five-engine fuzz oracle (``tests/test_engine_fuzz.py``) enforces this.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.batch import BatchResult, QueryBatch
from repro.core.parallel import ParallelExecutor, ParallelReadSet
from repro.core.partition import PartitionNode, TreeEpochSnapshot
from repro.data.columnar import DecodedGroup
from repro.data.spatial_object import SpatialObject, spatial_object_codec
from repro.geometry.box import Box
from repro.obs.trace import maybe_span
from repro.storage.buffer import BufferCounters
from repro.storage.pagedfile import PagedFile, StoredRun

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.core.merge import MergeDirectory
    from repro.core.partition import PartitionTree
    from repro.core.query_processor import QueryProcessor
    from repro.core.statistics import StatisticsCollector
    from repro.storage.disk import Disk


@dataclass(frozen=True, slots=True)
class EpochStatistics:
    """Immutable per-epoch summary of the statistics collector."""

    queries_seen: int
    combination_counts: dict[frozenset[int], int]


class EngineEpoch:
    """One immutable published state of the engine.

    ``trees`` maps dataset id to its
    :class:`~repro.core.partition.TreeEpochSnapshot`; ``directory`` is a
    frozen merge-directory copy and ``merge_files`` this epoch's own
    :class:`~repro.storage.pagedfile.PagedFile` handles for it (the live
    merger's handle cache is mutable and must not be shared with
    lock-free readers).  ``retained`` is the undo-page overlay:
    pre-images of pages destroyed *while this epoch was the latest*,
    keyed ``(file_name, page_no)`` — mutated only under the disk lock.
    ``refcount``/``next`` are managed by the :class:`EpochManager` under
    its lock.
    """

    __slots__ = (
        "epoch_id",
        "trees",
        "directory",
        "directory_version",
        "merge_files",
        "statistics",
        "retained",
        "refcount",
        "next",
    )

    def __init__(
        self,
        epoch_id: int,
        trees: dict[int, TreeEpochSnapshot],
        directory: "MergeDirectory",
        directory_version: int,
        merge_files: dict[frozenset[int], PagedFile],
        statistics: EpochStatistics,
    ) -> None:
        self.epoch_id = epoch_id
        self.trees = trees
        self.directory = directory
        self.directory_version = directory_version
        self.merge_files = merge_files
        self.statistics = statistics
        self.retained: dict[tuple[str, int], bytes] = {}
        self.refcount = 0
        self.next: EngineEpoch | None = None

    def lookup_page(self, name: str, page_no: int) -> bytes | None:
        """The page's bytes as of this epoch, or ``None`` for "read live".

        Walks the epoch chain forward: the first epoch that retained a
        pre-image of the page destroyed it *after* this epoch was
        published, so that pre-image is exactly the page's value at pin
        time.  No retention anywhere on the chain means the live page is
        still the snapshot's page.  Called under the disk lock (from
        :meth:`Disk.read_run_at`), which also serializes all retention.
        """
        key = (name, page_no)
        epoch: EngineEpoch | None = self
        while epoch is not None:
            data = epoch.retained.get(key)
            if data is not None:
                return data
            epoch = epoch.next
        return None

    def retained_pages(self) -> int:
        """Number of pre-image pages this epoch currently retains."""
        return len(self.retained)


class EpochManager:
    """Publishes, pins and garbage-collects :class:`EngineEpoch` chains.

    Registered as a snapshot sink on the disk at construction, so every
    destructive page write feeds :meth:`retain`.  ``publish`` must only
    be called under the processor's gate (it is the writer phase's last
    step); ``pin``/``unpin`` are safe from any thread.
    """

    def __init__(self, disk: "Disk", dimension: int) -> None:
        self._disk = disk
        self._codec = spatial_object_codec(dimension)
        self._lock = threading.Lock()
        self._next_id = 0
        self._head: EngineEpoch | None = None
        self._current: EngineEpoch | None = None
        disk.add_snapshot_sink(self)

    # -- snapshot sink ------------------------------------------------------ #

    def retain(self, name: str, page_no: int, data: bytes) -> None:
        """Keep a destroyed page's pre-image for pinned readers.

        Called by the disk, under the disk lock, immediately before an
        in-place overwrite or file delete.  The pre-image goes into the
        latest *published* epoch; ``setdefault`` keeps the first
        pre-image per epoch — later overwrites of the same page destroy
        bytes no published epoch ever exposed.
        """
        current = self._current
        if current is not None:
            current.retained.setdefault((name, page_no), data)

    # -- pinning ------------------------------------------------------------ #

    def pin(self) -> EngineEpoch:
        """Pin and return the current epoch (must be balanced by unpin)."""
        with self._lock:
            epoch = self._current
            if epoch is None:
                raise RuntimeError("no epoch has been published yet")
            epoch.refcount += 1
            return epoch

    def unpin(self, epoch: EngineEpoch) -> None:
        """Release one pin; prunes any fully released superseded epochs."""
        with self._lock:
            if epoch.refcount <= 0:
                raise RuntimeError("unpin without a matching pin")
            epoch.refcount -= 1
            self._prune_locked()

    def _prune_locked(self) -> None:
        # Readers only walk the chain forward, so dropping unpinned
        # epochs from the head can never cut a pinned reader's path.
        while (
            self._head is not None
            and self._head is not self._current
            and self._head.refcount == 0
        ):
            self._head = self._head.next

    # -- publishing --------------------------------------------------------- #

    def publish(
        self,
        trees: dict[int, "PartitionTree"],
        directory: "MergeDirectory",
        statistics: "StatisticsCollector",
    ) -> EngineEpoch:
        """Capture the live state into a new epoch and make it current.

        Caller must hold the processor gate (publishes are the writer
        phase's last step, so captures are serialized and see quiescent
        state).  Copy-on-write: per-tree captures and the frozen
        directory are reused from the previous epoch when the respective
        version counters are unchanged.
        """
        prev = self._current
        epoch_trees: dict[int, TreeEpochSnapshot] = {}
        for dataset_id, tree in trees.items():
            previous = prev.trees.get(dataset_id) if prev is not None else None
            if previous is not None and previous.version == tree.version:
                epoch_trees[dataset_id] = previous
            else:
                epoch_trees[dataset_id] = tree.epoch_snapshot()
        if prev is not None and prev.directory_version == directory.version:
            frozen = prev.directory
            merge_files = prev.merge_files
        else:
            frozen = directory.freeze()
            merge_files = {
                info.combination: PagedFile(self._disk, info.file_name, self._codec)
                for info in frozen.all_files()
            }
        epoch = EngineEpoch(
            epoch_id=self._next_id,
            trees=epoch_trees,
            directory=frozen,
            directory_version=directory.version,
            merge_files=merge_files,
            statistics=EpochStatistics(
                queries_seen=statistics.queries_seen,
                combination_counts={
                    combination: stats.count
                    for combination, stats in statistics.combinations().items()
                },
            ),
        )
        self._next_id += 1
        if prev is not None:
            # Link BEFORE switching the retention target: once the new
            # epoch is current, pre-images land in it — and every older
            # pinned epoch must already be able to walk to them.
            prev.next = epoch
        with self._lock:
            self._current = epoch
            if self._head is None:
                self._head = epoch
            self._prune_locked()
        return epoch

    # -- introspection ------------------------------------------------------ #

    @property
    def current(self) -> EngineEpoch | None:
        """The latest published epoch."""
        return self._current

    def chain_length(self) -> int:
        """Number of epochs currently kept alive (head to current)."""
        with self._lock:
            count = 0
            epoch = self._head
            while epoch is not None:
                count += 1
                epoch = epoch.next
            return count

    def pinned_total(self) -> int:
        """Sum of refcounts over all live epochs."""
        with self._lock:
            total = 0
            epoch = self._head
            while epoch is not None:
                total += epoch.refcount
                epoch = epoch.next
            return total

    def retained_total(self) -> int:
        """Total retained pre-image pages over all live epochs."""
        with self._lock:
            total = 0
            epoch = self._head
            while epoch is not None:
                total += len(epoch.retained)
                epoch = epoch.next
            return total

    def retained_bytes_total(self) -> int:
        """Total bytes of retained pre-images over all live epochs."""
        with self._lock:
            total = 0
            epoch = self._head
            while epoch is not None:
                total += sum(len(data) for data in epoch.retained.values())
                epoch = epoch.next
            return total

    def gauges(self) -> dict[str, int]:
        """Retention gauges in one consistent reading (one lock hold).

        Keys: ``live_epochs`` (chain length head→current),
        ``pinned_readers`` (sum of refcounts), ``retained_pages`` and
        ``retained_bytes`` (pre-image overlay size).  This is the
        production-observable form of the leak-freedom the epoch stress
        tests assert: at quiescence everything but ``live_epochs == 1``
        should read zero.
        """
        with self._lock:
            live = pinned = pages = size = 0
            epoch = self._head
            while epoch is not None:
                live += 1
                pinned += epoch.refcount
                pages += len(epoch.retained)
                size += sum(len(data) for data in epoch.retained.values())
                epoch = epoch.next
            return {
                "live_epochs": live,
                "pinned_readers": pinned,
                "retained_pages": pages,
                "retained_bytes": size,
            }


class EpochReadSet(ParallelReadSet):
    """A read set whose group fetches resolve against a pinned epoch.

    Identical dedup and counter semantics to the parallel read set; only
    the load goes through
    :meth:`~repro.storage.pagedfile.PagedFile.read_group_array_at` with
    the epoch's pre-image overlay, so pages overwritten or deleted since
    the pin are served from retained bytes.  When the overlay has
    nothing for a run the read — charging, buffer pool and decoded-array
    cache included — is identical to the live path.
    """

    def __init__(self, dimension: int, epoch: EngineEpoch) -> None:
        super().__init__(dimension)
        self._epoch = epoch

    def _load(self, file: PagedFile[SpatialObject], run: StoredRun) -> DecodedGroup:
        return DecodedGroup.from_records(
            file.read_group_array_at(run, self._epoch.lookup_page), self._dimension
        )


@dataclass
class PreparedBatch:
    """Everything the lock-free read phase of one snapshot batch produced.

    Produced by :meth:`EpochExecutor.prepare`; consumed exactly once by
    :meth:`EpochExecutor.commit` (or
    :meth:`QueryProcessor.commit_batch`).  The epoch itself is already
    unpinned — all reads are materialized into ``results``.
    """

    executor: "EpochExecutor"
    batch: QueryBatch
    epoch_id: int
    first_touch: dict[int, int] = field(default_factory=dict)
    extended: dict[tuple[int, int], Box] = field(default_factory=dict)
    needed0: dict[tuple[int, int], list[PartitionNode]] = field(default_factory=dict)
    versions0: dict[int, int] = field(default_factory=dict)
    results: list[list[SpatialObject]] = field(default_factory=list)
    examined: list[int] = field(default_factory=list)
    cache_deltas: list[BufferCounters] = field(default_factory=list)
    group_reads: int = 0
    dedup_hits: int = 0


class EpochExecutor(ParallelExecutor):
    """Snapshot-read batch execution: lock-free reads, gated writer phase.

    Subclasses the parallel executor and redirects its read-state hooks
    (leaf runs, partition/merge files, routing directory, window
    extension) at a pinned :class:`EngineEpoch`, so planning, read-set
    dedup, vectorized filtering and the ordered replay are all reused
    unchanged.  ``workers=None`` runs the read phase serially (the batch
    still overlaps with other batches' writer phases); ``workers=K > 1``
    additionally fans this batch's reads across ``K`` threads.

    In isolation — no concurrent writers between pin and commit — the
    pinned epoch equals the start-of-batch live state, every overlay
    lookup misses, and execution is bit-identical to
    :class:`~repro.core.batch.BatchExecutor` (reports and
    ``objects_examined`` included).
    """

    _executor_name = "epoch"

    def __init__(self, processor: "QueryProcessor", workers: int | None = None) -> None:
        # None means "serial reads" here (matching query_batch), not
        # default_workers(): snapshot batches overlap each other, so the
        # intra-batch fan-out is opt-in.
        super().__init__(processor, workers=1 if workers is None else workers)
        self._epoch: EngineEpoch | None = None

    # -- read-state hooks: everything resolves against the pinned epoch ---- #

    def _leaf_run(self, dataset_id: int, leaf: PartitionNode) -> StoredRun | None:
        return self._epoch.trees[dataset_id].run_of(leaf)

    def _tree_file(self, dataset_id: int) -> PagedFile[SpatialObject]:
        return self._epoch.trees[dataset_id].file

    def _merge_file(self, info) -> PagedFile[SpatialObject]:
        return self._epoch.merge_files[info.combination]

    def _route_directory(self):
        return self._epoch.directory

    def _extended_windows(self, queries) -> dict[tuple[int, int], Box]:
        trees = self._epoch.trees
        extended: dict[tuple[int, int], Box] = {}
        for query in queries:
            for dataset_id in query.requested:
                snapshot = trees[dataset_id]
                extended[(query.index, dataset_id)] = query.box.expand(
                    snapshot.max_extent
                ).clamp(snapshot.universe)
        return extended

    # -- the two phases ----------------------------------------------------- #

    def run(self, batch: QueryBatch) -> BatchResult:
        """Execute the batch: lock-free read phase, then gated writer phase."""
        with maybe_span(
            self._processor.tracer,
            "batch",
            queries=len(batch),
            executor=self._executor_name,
            workers=self._workers,
        ):
            return self.commit(self.prepare(batch))

    def prepare(self, batch: QueryBatch) -> PreparedBatch:
        """The lock-free read phase: pin, resolve, read, filter, unpin.

        The gate is taken only if a requested dataset has no partition
        tree yet (initialisation writes the partition file); after the
        init is published, the fresh epoch is pinned and the read phase
        proceeds lock-free.
        """
        processor = self._processor
        queries = batch.queries
        if not queries:
            return PreparedBatch(executor=self, batch=batch, epoch_id=-1)
        catalog = processor.catalog
        for query in queries:
            for dataset_id in query.requested:
                catalog.get(dataset_id)  # validates every id before any work
        manager = processor.epochs
        tracer = processor.tracer
        with maybe_span(tracer, "epoch.prepare", queries=len(queries)) as prep:
            epoch = manager.pin()
            first_touch: dict[int, int] = {}
            involved = {d for query in queries for d in query.requested}
            if any(dataset_id not in epoch.trees for dataset_id in involved):
                manager.unpin(epoch)
                with processor.gate:
                    with maybe_span(tracer, "batch.init_trees"):
                        first_touch = self._initialize_trees(queries)
                    processor.publish_epoch()
                epoch = manager.pin()
            if prep is not None:
                prep.attributes["epoch"] = epoch.epoch_id
            self._epoch = epoch
            try:
                with maybe_span(tracer, "batch.overlap"):
                    extended = self._extended_windows(queries)
                    needed0, versions0 = self._resolve_overlaps_epoch(batch, extended)
                decisions = self._route_decisions(batch)
                read_set = EpochReadSet(catalog.dimension, epoch)
                with maybe_span(tracer, "batch.read_filter") as phase:
                    if self._workers == 1 or len(batch) < 2:
                        results, examined, cache_deltas = self._read_and_filter_pinned(
                            batch, needed0, decisions, read_set
                        )
                    else:
                        with ThreadPoolExecutor(
                            max_workers=self._workers, thread_name_prefix="repro-epoch"
                        ) as executor:
                            results, examined, cache_deltas = (
                                self._read_and_filter_parallel(
                                    batch,
                                    needed0,
                                    decisions,
                                    read_set,
                                    executor,
                                    tracer=tracer,
                                    parent=phase,
                                )
                            )
                return PreparedBatch(
                    executor=self,
                    batch=batch,
                    epoch_id=epoch.epoch_id,
                    first_touch=first_touch,
                    extended=extended,
                    needed0=needed0,
                    versions0=versions0,
                    results=results,
                    examined=examined,
                    cache_deltas=cache_deltas,
                    group_reads=read_set.group_reads,
                    dedup_hits=read_set.dedup_hits,
                )
            finally:
                self._epoch = None
                manager.unpin(epoch)

    def commit(self, prepared: PreparedBatch) -> BatchResult:
        """The writer phase: CPU charges and the ordered adaptive replay.

        Runs under the gate, so concurrent batches' writer phases apply
        in gate-acquisition (arrival) order — the adaptive state evolves
        exactly as sequential execution — and publishes the next epoch
        on the way out.
        """
        processor = self._processor
        batch = prepared.batch
        queries = batch.queries
        if not queries:
            return BatchResult(results=[], reports=[])
        disk = processor.catalog.datasets()[0].disk
        with maybe_span(
            processor.tracer,
            "epoch.commit",
            queries=len(queries),
            epoch=prepared.epoch_id,
        ):
            with processor.gate:
                for query in queries:
                    disk.charge_cpu_records(prepared.examined[query.index])
                reports = self._replay_updates(
                    queries,
                    prepared.first_touch,
                    prepared.extended,
                    prepared.needed0,
                    prepared.versions0,
                    prepared.results,
                    prepared.examined,
                    prepared.cache_deltas,
                )
                processor.publish_epoch()
                processor.commit_durable((q.box, q.requested) for q in queries)
        return BatchResult(
            results=prepared.results,
            reports=reports,
            group_reads=prepared.group_reads,
            group_reads_deduped=prepared.dedup_hits,
        )

    # -- epoch-local phase implementations ---------------------------------- #

    def _resolve_overlaps_epoch(
        self, batch: QueryBatch, extended: dict[tuple[int, int], Box]
    ) -> tuple[dict[tuple[int, int], list[PartitionNode]], dict[int, int]]:
        """Overlap resolution against the pinned epoch's frozen MBR arrays.

        Same kernel, same order as the live resolution — but through
        :meth:`TreeEpochSnapshot.overlapping_batch`, which never touches
        the live tree's mutable snapshot cache.
        """
        trees = self._epoch.trees
        needed0: dict[tuple[int, int], list[PartitionNode]] = {}
        versions0: dict[int, int] = {}
        for combination, group in batch.groups().items():
            for dataset_id in sorted(combination):
                snapshot = trees[dataset_id]
                versions0[dataset_id] = snapshot.version
                windows = [extended[(query.index, dataset_id)] for query in group]
                per_query = snapshot.overlapping_batch(windows)
                for query, leaves in zip(group, per_query):
                    needed0[(query.index, dataset_id)] = leaves
        return needed0, versions0

    def _read_and_filter_pinned(
        self,
        batch: QueryBatch,
        needed0: dict[tuple[int, int], list[PartitionNode]],
        decisions,
        read_set: EpochReadSet,
    ) -> tuple[list[list[SpatialObject]], list[int], list[BufferCounters]]:
        """Serial read phase without CPU charging (deferred to commit).

        CPU charges belong to the writer phase so they apply in arrival
        order — the same position (and therefore the identical float
        sum) the parallel executor gives them.
        """
        pool = self._processor.catalog.datasets()[0].disk.buffer_pool
        results: list[list[SpatialObject]] = [[] for _ in batch.queries]
        examined: list[int] = [0 for _ in batch.queries]
        cache_deltas: list[BufferCounters] = [BufferCounters() for _ in batch.queries]
        for query in batch.queries:
            cache_start = pool.counters()
            hits, count = self._filter_one_query(query, needed0, decisions, read_set)
            results[query.index] = hits
            examined[query.index] = count
            cache_deltas[query.index] = pool.counters().delta_since(cache_start)
        return results, examined, cache_deltas
