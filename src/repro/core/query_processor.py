"""The Query Processor: per-query orchestration (Section 3.2.3).

For every range query ``Q = {A; DS_1, ..., DS_N}`` the processor

1. lazily initialises the partition tree of any requested dataset that has
   never been queried before (one full raw scan — the expensive first query
   the paper describes);
2. extends the query window by each dataset's maximum object extent and
   collects the leaf partitions it overlaps;
3. consults the merge directory to decide whether the partitions can be
   read from a merge file (exact / superset / subset / none);
4. reads the partitions, filters the objects against the original query
   range and the requested datasets;
5. refines the hit partitions whose volume exceeds ``rt`` times the query
   volume (the Adaptor's job);
6. updates the statistics and gives the Merger the chance to create or
   extend a merge file for the queried combination.

A :class:`QueryReport` describing what happened is kept for the last query
so that tests, examples and the benchmark harness can introspect behaviour
without re-deriving it from disk counters.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.core.adaptor import Adaptor
from repro.core.config import OdysseyConfig
from repro.core.merge import MergeDirectory, RouteKind, choose_route
from repro.core.merger import Merger
from repro.core.partition import PartitionKey, PartitionNode, PartitionTree
from repro.core.statistics import StatisticsCollector
from repro.data.columnar import DecodedGroup
from repro.data.dataset import DatasetCatalog
from repro.data.spatial_object import SpatialObject
from repro.geometry.box import Box
from repro.geometry.vectorized import box_to_arrays, intersect_mask
from repro.obs.trace import maybe_span
from repro.storage.buffer import BufferCounters
from repro.storage.pagedfile import PagedFile, StoredRun

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.core.batch import BatchResult


@dataclass
class QueryReport:
    """Diagnostics of one executed query.

    ``cache`` reports the buffer-pool counter deltas (byte layer and
    decoded-array layer) attributed to this query; for batched execution
    the attribution is approximate (reads are shared across the batch) and
    the field is excluded from the batch-vs-sequential identity guarantee.
    """

    query_index: int
    requested: tuple[int, ...]
    route: str = RouteKind.NONE.value
    initialized_datasets: list[int] = field(default_factory=list)
    partitions_read: int = 0
    partitions_from_merge: int = 0
    objects_examined: int = 0
    results: int = 0
    refinements: int = 0
    merged: bool = False
    merge_new_partitions: int = 0
    evicted_merge_files: int = 0
    cache: BufferCounters | None = None
    #: Transparent I/O retries absorbed while answering this query (only
    #: attributed on the sequential path; excluded, like ``cache``, from
    #: the batch-vs-sequential identity guarantee).
    retries: int = 0

    @property
    def used_merge_file(self) -> bool:
        """Whether any partition was served from a merge file."""
        return self.partitions_from_merge > 0


class QueryProcessor:
    """Coordinates the Adaptor, Statistics Collector and Merger per query.

    Concurrency model: top-level operations (:meth:`execute`,
    :meth:`execute_batch`) serialize on one internal gate lock, so several
    application threads may share one engine without corrupting the
    adaptive state — interleaved calls execute in *some* serial order, and
    every query's answer is exact regardless of that order (results depend
    only on the data and the query window, never on refinement state).
    Parallelism lives *inside* a batch: ``execute_batch(..., workers=K)``
    fans the read-only phases of one batch across ``K`` threads while the
    gate is held (see :mod:`repro.core.parallel`).

    With ``OdysseyConfig(snapshot_reads=True)`` (the default) the gate
    additionally becomes a pure *writer* lock for the epoch read path
    (:mod:`repro.core.epoch`): every gated operation publishes an
    immutable :class:`~repro.core.epoch.EngineEpoch` on completion, and
    ``execute_batch(..., snapshot=True)`` — or the
    :meth:`prepare_batch`/:meth:`commit_batch` pair — runs its whole read
    phase against a pinned epoch without holding the gate, so concurrent
    batches overlap their reads and only their short writer phases
    serialize.  Because answers are exact regardless of refinement state
    (see above), a reader pinned to a slightly older epoch still returns
    exact hits.
    """

    def __init__(
        self,
        catalog: DatasetCatalog,
        config: OdysseyConfig,
        adaptor: Adaptor,
        statistics: StatisticsCollector,
        directory: MergeDirectory,
        merger: Merger,
    ) -> None:
        self._catalog = catalog
        self._config = config
        self._adaptor = adaptor
        self._statistics = statistics
        self._directory = directory
        self._merger = merger
        self._disk = catalog.datasets()[0].disk
        self._trees: dict[int, PartitionTree] = {}
        self._queries_executed = 0
        self._last_report: QueryReport | None = None
        self._gate = threading.RLock()
        self._durability = None
        self._tracer = None
        self._epochs = None
        if config.snapshot_reads:
            from repro.core.epoch import EpochManager

            self._epochs = EpochManager(self._disk, catalog.dimension)
            with self._gate:
                self.publish_epoch()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def trees(self) -> dict[int, PartitionTree]:
        """The per-dataset partition trees created so far."""
        return dict(self._trees)

    @property
    def queries_executed(self) -> int:
        """Number of queries processed."""
        return self._queries_executed

    @property
    def last_report(self) -> QueryReport | None:
        """Diagnostics of the most recent query."""
        return self._last_report

    # ------------------------------------------------------------------ #
    # Internal surface shared with the batch executor
    # ------------------------------------------------------------------ #
    # The batched engine (repro.core.batch) drives the same components and
    # the same live tree map as the sequential path, so both paths mutate
    # one adaptive state.

    @property
    def catalog(self) -> DatasetCatalog:
        """The dataset catalog queries run against."""
        return self._catalog

    @property
    def config(self) -> OdysseyConfig:
        """The engine configuration."""
        return self._config

    @property
    def adaptor(self) -> Adaptor:
        """The Adaptor performing initial partitioning and refinement."""
        return self._adaptor

    @property
    def statistics(self) -> StatisticsCollector:
        """The statistics collector."""
        return self._statistics

    @property
    def directory(self) -> MergeDirectory:
        """The merge directory."""
        return self._directory

    @property
    def merger(self) -> Merger:
        """The merger."""
        return self._merger

    @property
    def live_trees(self) -> dict[int, PartitionTree]:
        """The *live* tree map (shared, mutable — unlike :attr:`trees`)."""
        return self._trees

    def note_executed(self, report: QueryReport) -> None:
        """Record that one query finished (advances counters, keeps report)."""
        self._queries_executed += 1
        self._last_report = report

    # ------------------------------------------------------------------ #
    # Telemetry (observation only)
    # ------------------------------------------------------------------ #

    @property
    def tracer(self):
        """The attached :class:`~repro.obs.trace.Tracer` (or ``None``).

        Shared with the batch/parallel/epoch executors; tracing is
        observation only and never feeds back into any decision.
        """
        return self._tracer

    def attach_tracer(self, tracer) -> None:
        """Attach (or with ``None``, detach) a tracer for query spans."""
        self._tracer = tracer

    # ------------------------------------------------------------------ #
    # Durability (crash-consistent manifest journaling)
    # ------------------------------------------------------------------ #

    @property
    def durability(self):
        """The attached :class:`~repro.core.recovery.DurabilityLog` (or None)."""
        return self._durability

    def attach_durability(self, log) -> None:
        """Journal a manifest at every commit point from now on."""
        self._durability = log

    def commit_durable(self, entries) -> None:
        """Journal newly committed queries (``(box, dataset_ids)`` pairs).

        Must be called with the gate held, *after* the state mutation and
        epoch publish, so the journal order equals the commit order.  A
        no-op without an attached durability log or with no entries.
        """
        if self._durability is not None:
            self._durability.record(entries)

    # ------------------------------------------------------------------ #
    # Epoch surface (snapshot reads)
    # ------------------------------------------------------------------ #

    @property
    def gate(self) -> threading.RLock:
        """The adaptation (writer) lock top-level operations serialize on."""
        return self._gate

    @property
    def epochs(self):
        """The :class:`~repro.core.epoch.EpochManager`, or ``None`` when
        ``snapshot_reads`` is disabled."""
        return self._epochs

    def publish_epoch(self) -> None:
        """Capture and publish a new epoch from the current adaptive state.

        Must be called with the gate held (every caller in this module
        is); a no-op when snapshot reads are disabled.
        """
        if self._epochs is not None:
            with maybe_span(self._tracer, "epoch.publish"):
                self._epochs.publish(self._trees, self._directory, self._statistics)

    # ------------------------------------------------------------------ #
    # Query execution
    # ------------------------------------------------------------------ #

    def execute(self, box: Box, dataset_ids: Iterable[int]) -> list[SpatialObject]:
        """Execute one range query over the requested datasets."""
        ids = tuple(dataset_ids)
        with self._gate:
            with maybe_span(self._tracer, "query") as span:
                results = self._execute(box, ids)
                if span is not None:
                    report = self._last_report
                    span.attributes.update(
                        datasets=list(report.requested),
                        route=report.route,
                        examined=report.objects_examined,
                        hits=len(results),
                        refinements=report.refinements,
                    )
            self.publish_epoch()
            self.commit_durable([(box, ids)])
            return results

    def _execute(self, box: Box, dataset_ids: Iterable[int]) -> list[SpatialObject]:
        requested = frozenset(dataset_ids)
        if not requested:
            raise ValueError("a query must request at least one dataset")
        for dataset_id in requested:
            self._catalog.get(dataset_id)  # validates the id
        report = QueryReport(
            query_index=self._queries_executed, requested=tuple(sorted(requested))
        )
        columnar = self._config.columnar
        cache_start = self._disk.buffer_pool.counters()
        retries_start = self._disk.stats.retries
        self._statistics.tick()

        # 1. Lazy initialisation of partition trees (in-situ first touch).
        for dataset_id in sorted(requested):
            if dataset_id not in self._trees:
                with maybe_span(self._tracer, "query.init_tree", dataset=dataset_id):
                    tree = self._adaptor.create_tree(self._catalog.get(dataset_id))
                    self._adaptor.initialize(tree)
                    self._trees[dataset_id] = tree
                report.initialized_datasets.append(dataset_id)

        # 2. Locate the leaf partitions each dataset must read.  The
        # columnar path tests the query window against the tree's cached
        # leaf-MBR arrays in one kernel call; leaves and their order are
        # identical to the scalar DFS walk.
        needed: dict[int, list[PartitionNode]] = {}
        for dataset_id in sorted(requested):
            tree = self._trees[dataset_id]
            extended = box.expand(tree.max_extent).clamp(tree.universe)
            needed[dataset_id] = (
                tree.leaves_overlapping_vectorized(extended)
                if columnar
                else tree.leaves_overlapping(extended)
            )

        # 3. Routing: merge file vs individual partition files.
        decision = choose_route(self._directory, requested)
        report.route = decision.kind.value
        if decision.merge_info is not None:
            self._merger.mark_used(decision.merge_info.combination)

        # 4. Retrieval and filtering.  Reads are planned first and then
        # executed in on-disk order: merge-file segments in the order they
        # appear in the merge file (so co-located partitions are streamed
        # sequentially, which is the whole point of merging) and individual
        # partitions in partition-file order per dataset.
        results: list[SpatialObject] = []
        examined = 0
        accessed_keys: dict[int, set[PartitionKey]] = {}
        merge_plan: list[tuple[int, PartitionNode]] = []
        individual_plan: list[tuple[int, PartitionNode]] = []
        info = decision.merge_info
        for dataset_id in sorted(requested):
            keys: set[PartitionKey] = set()
            for leaf in needed[dataset_id]:
                keys.add(leaf.key)
                leaf.hit_count += 1
                report.partitions_read += 1
                use_merge = (
                    info is not None
                    and dataset_id in decision.covered_datasets
                    and info.has_segment(leaf.key, dataset_id)
                )
                if use_merge:
                    merge_plan.append((dataset_id, leaf))
                else:
                    individual_plan.append((dataset_id, leaf))
            accessed_keys[dataset_id] = keys

        if columnar:
            # Vectorized filtering: each stored group decodes into columnar
            # arrays, dataset membership and window overlap become one mask,
            # and SpatialObject instances exist only for the final hits.
            dimension = self._catalog.dimension
            q_lo, q_hi = box_to_arrays(box)

            def _filter_run(
                file: PagedFile[SpatialObject], run: StoredRun | None, dataset_id: int
            ) -> int:
                if run is None or run.n_records == 0:
                    return 0
                group = DecodedGroup.from_records(file.read_group_array(run), dimension)
                mask = (group.dataset_ids == dataset_id) & intersect_mask(
                    q_lo, q_hi, group.lo, group.hi
                )
                results.extend(group.materialize(mask))
                return group.n_records

        else:

            def _filter(objects: list[SpatialObject], dataset_id: int) -> int:
                count = 0
                for obj in objects:
                    count += 1
                    if obj.dataset_id == dataset_id and obj.intersects(box):
                        results.append(obj)
                return count

        if merge_plan and info is not None:
            merge_file = self._merger.merge_file(info.combination)
            merge_plan.sort(
                key=lambda item: self._segment_start(info, item[1].key, item[0])
            )
            for dataset_id, leaf in merge_plan:
                report.partitions_from_merge += 1
                segment = info.segment(leaf.key, dataset_id)
                if columnar:
                    examined += _filter_run(merge_file, segment, dataset_id)
                else:
                    examined += _filter(merge_file.read_group(segment), dataset_id)
        individual_plan.sort(key=lambda item: (item[0], self._partition_start(item[1])))
        for dataset_id, leaf in individual_plan:
            if columnar:
                examined += _filter_run(
                    self._trees[dataset_id].file, leaf.run, dataset_id
                )
            else:
                examined += _filter(
                    self._trees[dataset_id].read_partition(leaf), dataset_id
                )
        tree_disk = self._catalog.get(next(iter(requested))).disk
        tree_disk.charge_cpu_records(examined)
        report.objects_examined = examined
        report.results = len(results)

        # 5. Refinement of over-sized hit partitions.
        for dataset_id in sorted(requested):
            tree = self._trees[dataset_id]
            for leaf in needed[dataset_id]:
                outcome = self._adaptor.maybe_refine(tree, leaf, box)
                if outcome.refined:
                    report.refinements += 1

        # 6. Statistics and merging.
        self._statistics.record_query(requested, accessed_keys, query_volume=box.volume())
        merge_outcome = self._merger.maybe_merge(requested, self._trees)
        report.merged = merge_outcome.merged
        report.merge_new_partitions = merge_outcome.new_partitions
        report.evicted_merge_files = len(merge_outcome.evicted_combinations)
        report.cache = self._disk.buffer_pool.counters().delta_since(cache_start)
        report.retries = self._disk.stats.retries - retries_start

        self.note_executed(report)
        return results

    def execute_batch(
        self,
        queries,
        workers: int | None = None,
        snapshot: bool = False,
        executor: str | None = None,
    ) -> "BatchResult":
        """Execute a batch of queries through the batched engine.

        See :mod:`repro.core.batch` for the execution model; result sets
        and post-batch adaptive state are identical to calling
        :meth:`execute` once per query in order (hit order within a
        result and ``QueryReport.objects_examined`` may differ).

        ``workers`` selects a parallel executor
        (:mod:`repro.core.parallel`): ``None`` or ``1`` runs the serial
        batch engine; ``K > 1`` fans the read-only phases across ``K``
        workers with results, reports, adaptive state and on-disk bytes
        bit-identical to the serial batch.  ``executor`` picks the pool
        flavour — ``"thread"`` shares the engine's memory and relies on
        NumPy releasing the GIL; ``"process"`` ships page bytes to worker
        processes over shared memory (or lets them ``mmap`` the page
        files of a plain filesystem backend) so decode + filter scale
        past the GIL.  ``None`` defers to
        ``OdysseyConfig.batch_executor``.

        ``snapshot=True`` routes through the epoch executor
        (:mod:`repro.core.epoch`): the read phase runs against a pinned
        immutable epoch *without* holding the gate, and only the short
        writer phase serializes — so concurrent batches overlap their
        reads.  In isolation the epoch executor is bit-identical to the
        batch executor (reports and ``objects_examined`` included);
        requires ``OdysseyConfig(snapshot_reads=True)``.  Snapshot reads
        are thread-only (the epoch object graph is not shipped across
        processes); combining ``snapshot=True`` with
        ``executor="process"`` raises ``ValueError``.
        """
        from repro.core.batch import BatchExecutor, QueryBatch

        if executor is None:
            executor = self._config.batch_executor
        if executor not in ("thread", "process"):
            raise ValueError("executor must be 'thread' or 'process'")
        batch = queries if isinstance(queries, QueryBatch) else QueryBatch(queries)
        if snapshot:
            if executor == "process":
                raise ValueError("snapshot reads do not support executor='process'")
            if self._epochs is None:
                raise RuntimeError(
                    "snapshot reads require OdysseyConfig(snapshot_reads=True)"
                )
            from repro.core.epoch import EpochExecutor

            return EpochExecutor(self, workers).run(batch)
        with self._gate:
            if workers is not None and workers != 1:
                if executor == "process":
                    from repro.core.parallel import ProcessExecutor

                    result = ProcessExecutor(self, workers).run(batch)
                else:
                    from repro.core.parallel import ParallelExecutor

                    result = ParallelExecutor(self, workers).run(batch)
            else:
                result = BatchExecutor(self).run(batch)
            self.publish_epoch()
            self.commit_durable((q.box, q.requested) for q in batch.queries)
            return result

    def prepare_batch(self, queries, workers: int | None = None):
        """Run the lock-free read phase of a snapshot batch.

        Pins the current epoch, resolves overlaps, reads and filters every
        query against the pinned snapshot — all without the gate — and
        returns an opaque prepared batch for :meth:`commit_batch`.  The
        serving dispatcher uses this split to overlap the read phase of
        batch N+1 with the writer phase of batch N.
        """
        if self._epochs is None:
            raise RuntimeError(
                "snapshot reads require OdysseyConfig(snapshot_reads=True)"
            )
        from repro.core.batch import QueryBatch
        from repro.core.epoch import EpochExecutor

        batch = queries if isinstance(queries, QueryBatch) else QueryBatch(queries)
        return EpochExecutor(self, workers).prepare(batch)

    def commit_batch(self, prepared) -> "BatchResult":
        """Apply a prepared batch's writer phase (gate-held, in order)."""
        return prepared.executor.commit(prepared)

    @staticmethod
    def _segment_start(info, key: PartitionKey, dataset_id: int) -> int:
        """First page of a merge-file segment (for on-disk-order planning)."""
        run = info.segment(key, dataset_id)
        return run.extents[0].start if run.extents else 0

    @staticmethod
    def _partition_start(leaf: PartitionNode) -> int:
        """First page of a leaf partition (for on-disk-order planning)."""
        if leaf.run is None or not leaf.run.extents:
            return 0
        return leaf.run.extents[0].start
