"""The public Space Odyssey facade.

:class:`SpaceOdyssey` wires the Adaptor, Statistics Collector, Merger and
Query Processor together over a dataset catalog and exposes the
:class:`~repro.baselines.interface.MultiDatasetIndex` interface so the
benchmark harness can treat it exactly like the static baselines (with an
empty build phase — that is the point of the paper).

Typical usage::

    from repro import OdysseyConfig, SpaceOdyssey, build_benchmark_suite
    from repro.geometry import Box

    suite = build_benchmark_suite(n_datasets=10, objects_per_dataset=5000)
    odyssey = SpaceOdyssey(suite.catalog)
    hits = odyssey.query(Box.cube(center=(500, 500, 500), side=25.0), [0, 2, 5])

Batched execution
-----------------
When several exploration queries are available at once (a dashboard
refresh, a scripted sweep, a replayed trace), :meth:`SpaceOdyssey.query_batch`
executes them together through :mod:`repro.core.batch`: partition overlap
tests are resolved for the whole batch with vectorized NumPy kernels, page
reads are deduplicated through a shared read set, and object filtering is
a columnar mask instead of a per-object Python loop.  Results and the
post-batch adaptive state are guaranteed identical to issuing the same
queries sequentially in order::

    batch = odyssey.query_batch([
        (region_a, [0, 2, 5]),
        (region_b, [0, 2, 5]),
        (region_c, [1, 7]),
    ])
    batch.results[0]      # hits of the first query
    batch.reports[2]      # its QueryReport, as in sequential execution
"""

from __future__ import annotations

import os
import weakref
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Iterable

from repro.baselines.interface import MultiDatasetIndex
from repro.core.adaptor import Adaptor
from repro.core.config import OdysseyConfig
from repro.core.merge import MergeDirectory
from repro.core.merger import Merger
from repro.core.partition import PartitionTree
from repro.core.query_processor import QueryProcessor, QueryReport
from repro.core.statistics import StatisticsCollector
from repro.data.dataset import DatasetCatalog
from repro.data.spatial_object import SpatialObject
from repro.geometry.box import Box
from repro.obs.metrics import EngineSnapshot, Histogram, MetricsRegistry
from repro.obs.trace import Tracer
from repro.storage.backend import StorageBackend
from repro.storage.disk import Disk
from repro.storage.journal import ManifestJournal

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from repro.core.batch import BatchResult
    from repro.serve.service import QueryService


@dataclass(frozen=True, slots=True)
class ExplorationSummary:
    """A snapshot of the adaptive state after some queries have run."""

    queries_executed: int
    datasets_initialized: int
    total_partitions: int
    max_tree_depth: int
    merge_files: int
    merge_pages: int
    merges_performed: int
    merge_evictions: int


class SpaceOdyssey(MultiDatasetIndex):
    """Adaptive, in-situ exploration engine over multiple spatial datasets.

    Parameters
    ----------
    catalog:
        The datasets available for exploration (their raw files must
        already exist on the catalog's disk).
    config:
        Engine parameters; defaults to the paper's configuration
        (``rt = 4``, ``ppl = 64``, ``mt = 2``).
    journal:
        A path (or :class:`~repro.storage.journal.ManifestJournal`) to
        journal a crash-consistent manifest to at every commit point,
        enabling :meth:`recover` after a crash.  ``None`` (the default)
        disables durability — nothing about execution changes.
    """

    name = "Odyssey"

    def __init__(
        self,
        catalog: DatasetCatalog,
        config: OdysseyConfig | None = None,
        *,
        journal: str | os.PathLike[str] | ManifestJournal | None = None,
    ) -> None:
        self._catalog = catalog
        self._config = config or OdysseyConfig()
        # Validate ppl against the data dimensionality eagerly so a bad
        # configuration fails at construction, not on the first query.
        self._config.splits_per_dimension(catalog.dimension)
        self._disk: Disk = catalog.datasets()[0].disk
        self._statistics = StatisticsCollector()
        self._directory = MergeDirectory()
        self._adaptor = Adaptor(self._config)
        self._merger = Merger(
            disk=self._disk,
            config=self._config,
            directory=self._directory,
            statistics=self._statistics,
            dimension=catalog.dimension,
        )
        self._processor = QueryProcessor(
            catalog=catalog,
            config=self._config,
            adaptor=self._adaptor,
            statistics=self._statistics,
            directory=self._directory,
            merger=self._merger,
        )
        self._registry: MetricsRegistry | None = None
        self._services: "weakref.WeakSet[QueryService]" = weakref.WeakSet()
        if not self._config.enable_merging:
            self.name = "Odyssey w/o merging"
        if journal is not None:
            if not isinstance(journal, ManifestJournal):
                journal = ManifestJournal(journal)
            existing = journal.read_last()
            if existing is not None and existing.get("queries"):
                raise ValueError(
                    "journal already holds committed queries; use "
                    "SpaceOdyssey.recover() to rebuild from it instead of "
                    "attaching a fresh engine"
                )
            self.attach_journal(journal)
            # Make the pre-first-query state durable immediately, so a
            # crash before the first commit still recovers cleanly.
            self._processor.durability.checkpoint()

    # ------------------------------------------------------------------ #
    # Durability & recovery
    # ------------------------------------------------------------------ #

    def attach_journal(
        self, journal: ManifestJournal, *, committed: list | None = None
    ) -> None:
        """Start journaling a crash-consistent manifest at every commit point.

        ``committed`` seeds the durable query log (used by :meth:`recover`
        after replaying it); a fresh engine leaves it empty.
        """
        from repro.core.recovery import DurabilityLog

        self._processor.attach_durability(
            DurabilityLog(
                journal,
                catalog=self._catalog,
                config=self._config,
                committed=committed,
            )
        )
        if self.tracer is not None:
            journal.attach_tracer(self.tracer)

    @property
    def journal(self) -> ManifestJournal | None:
        """The manifest journal, or ``None`` when durability is disabled."""
        log = self._processor.durability
        return None if log is None else log.journal

    @classmethod
    def recover(
        cls,
        journal_path: str | os.PathLike[str] | ManifestJournal,
        *,
        backend: StorageBackend | None = None,
        disk: Disk | None = None,
        compact_every: int = 64,
        crash_hook=None,
    ) -> "SpaceOdyssey":
        """Rebuild an engine after a crash from its manifest journal.

        Re-opens the raw dataset files (which survive any crash intact),
        deletes every derived file (partition and merge files may be torn)
        and deterministically replays the committed query log, yielding an
        engine whose adaptive state, derived on-disk bytes and subsequent
        answers are bit-identical to a never-crashed engine that executed
        the same committed prefix.  See :mod:`repro.core.recovery`.
        """
        from repro.core.recovery import recover

        return recover(
            journal_path,
            backend=backend,
            disk=disk,
            compact_every=compact_every,
            crash_hook=crash_hook,
        )

    # ------------------------------------------------------------------ #
    # MultiDatasetIndex interface
    # ------------------------------------------------------------------ #

    def build(self) -> None:
        """No up-front work: Space Odyssey indexes while queries execute."""

    @property
    def is_built(self) -> bool:
        """Always true — there is nothing to build in advance."""
        return True

    def query(self, box: Box, dataset_ids: Iterable[int]) -> list[SpatialObject]:
        """Execute a range query over the requested datasets."""
        return self._processor.execute(box, dataset_ids)

    def query_batch(
        self,
        queries,
        *,
        workers: int | None = None,
        snapshot: bool = False,
        executor: str | None = None,
    ) -> "BatchResult":
        """Execute a batch of range queries together (see :mod:`repro.core.batch`).

        ``queries`` is an iterable of ``(box, dataset_ids)`` pairs,
        :class:`~repro.workload.query.RangeQuery` instances (so a
        :class:`~repro.workload.builder.Workload` works directly), or an
        already-built :class:`~repro.core.batch.QueryBatch`.  Per-query
        result *sets*, reports and the post-batch adaptive state are
        identical to calling :meth:`query` once per entry in order; the
        batch only amortises the work (vectorized overlap tests and
        filtering, page reads deduplicated across the batch).  Two
        documented deviations: hits may come back in a different order
        within a query's result list, and ``QueryReport.objects_examined``
        may differ because the batch reads against start-of-batch trees
        (see :mod:`repro.core.batch`).

        ``workers=K`` (``K > 1``) executes the batch through the
        thread-parallel engine (:mod:`repro.core.parallel`): overlap
        resolution fans out per combination group and page decode +
        filtering per query, while all adaptive updates replay through the
        same single-threaded deterministic writer phase — results (hit
        order included), reports, adaptive state and on-disk bytes are
        bit-identical to ``workers=1``.  Pair it with a sharded buffer
        pool (``Disk(buffer_shards=...)``) on multi-core hosts.

        ``executor="process"`` swaps the thread pool for a *process* pool
        (:class:`~repro.core.parallel.ProcessExecutor`): workers decode
        and filter page bytes outside the GIL, reading them zero-copy
        from an ``mmap`` of the page files (plain filesystem backend) or
        from a shared-memory staging block the parent fills through the
        normal charged read path (any other backend).  The deterministic
        writer replay never leaves the parent process, so this mode is
        bit-identical to the others as well.  ``executor=None`` defers
        to ``OdysseyConfig.batch_executor`` (default ``"thread"``).
        Process workers pay a real serialization cost per hit, so this
        mode wins when decode + filter dominate — large pages,
        compression enabled, or CPU-heavy filtering.

        ``snapshot=True`` executes through the epoch-snapshot engine
        (:mod:`repro.core.epoch`, requires
        ``OdysseyConfig(snapshot_reads=True)``, the default): the read
        phase runs lock-free against a pinned epoch, so it overlaps with
        other batches' writer phases; only the short in-order adaptive
        replay takes the gate.  In isolation a snapshot batch is
        bit-identical to the serial batch executor; under concurrency
        per-batch results stay exact (answers depend only on the data
        and the query window) while writer phases serialize in arrival
        order.  Here ``workers`` defaults to *serial* reads — the
        overlap is between batches — and ``workers=K > 1`` additionally
        fans this batch's reads across ``K`` threads.
        """
        return self._processor.execute_batch(
            queries, workers=workers, snapshot=snapshot, executor=executor
        )

    def prepare_batch(self, queries, *, workers: int | None = None):
        """Run a batch's lock-free snapshot read phase; defer the writer phase.

        Returns a :class:`~repro.core.epoch.PreparedBatch` whose results
        are fully materialized against a pinned epoch.  Pass it to
        :meth:`commit_batch` to apply CPU charges and the in-order
        adaptive replay (and publish the next epoch).  The serving
        frontend uses this split to pipeline: the dispatcher prepares
        batch N+1 while the writer thread commits batch N.
        """
        return self._processor.prepare_batch(queries, workers=workers)

    def commit_batch(self, prepared) -> "BatchResult":
        """Apply a prepared batch's writer phase and return its result."""
        return self._processor.commit_batch(prepared)

    @property
    def epochs(self):
        """The :class:`~repro.core.epoch.EpochManager` (``None`` if disabled)."""
        return self._processor.epochs

    def serve(
        self,
        *,
        max_batch: int = 32,
        max_delay_ms: float = 5.0,
        workers: int | None = None,
        max_pending: int | None = None,
        pipeline: bool | None = None,
        **degradation,
    ) -> "QueryService":
        """Start a multi-tenant serving frontend over this engine.

        Returns a running :class:`~repro.serve.QueryService`: many client
        threads call ``submit(box, dataset_ids)`` concurrently, a
        dedicated dispatcher coalesces submissions into batches (flushing
        at ``max_batch`` queries or after ``max_delay_ms``, whichever
        fires first), drains each batch through :meth:`query_batch`
        (``workers=K`` selects the thread-parallel executor), and resolves
        each submission's future with its hits or exception.  Per-client
        results are identical to issuing the same queries sequentially in
        arrival order.  Close the service (or use it as a context
        manager) to drain and release it; the engine stays fully usable
        afterwards, and direct ``query``/``query_batch`` calls made while
        the service runs simply interleave through the gate lock.

        ``pipeline`` controls two-batch pipelining over the
        epoch-snapshot engine (the dispatcher prepares batch N+1's
        lock-free read phase while a writer thread commits batch N).  It
        defaults to on whenever ``OdysseyConfig.snapshot_reads`` is
        enabled; per-client results remain identical to sequential
        arrival-order replay either way.

        Extra keyword arguments (``batch_retries``, ``retry_backoff_ms``,
        ``breaker_threshold``, ``breaker_cooldown_ms``) tune the
        service's graceful-degradation machinery; see
        :class:`~repro.serve.QueryService`.
        """
        from repro.serve.service import QueryService

        service = QueryService(
            self,
            max_batch=max_batch,
            max_delay_ms=max_delay_ms,
            workers=workers,
            max_pending=max_pending,
            pipeline=pipeline,
            **degradation,
        )
        # Weakly tracked so telemetry() can aggregate serving counters
        # without keeping closed services alive.
        self._services.add(service)
        return service

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def catalog(self) -> DatasetCatalog:
        """The datasets available to this engine."""
        return self._catalog

    @property
    def config(self) -> OdysseyConfig:
        """The engine configuration."""
        return self._config

    @property
    def disk(self) -> Disk:
        """The simulated disk all structures live on."""
        return self._disk

    @property
    def statistics(self) -> StatisticsCollector:
        """The statistics collector."""
        return self._statistics

    @property
    def merge_directory(self) -> MergeDirectory:
        """The merge directory."""
        return self._directory

    @property
    def merger(self) -> Merger:
        """The merger component."""
        return self._merger

    @property
    def trees(self) -> dict[int, PartitionTree]:
        """The per-dataset partition trees built so far."""
        return self._processor.trees

    @property
    def last_report(self) -> QueryReport | None:
        """Diagnostics of the most recently executed query."""
        return self._processor.last_report

    def summary(self) -> ExplorationSummary:
        """A structural snapshot of the adaptive state."""
        trees = self._processor.trees
        return ExplorationSummary(
            queries_executed=self._processor.queries_executed,
            datasets_initialized=len(trees),
            total_partitions=sum(tree.n_partitions for tree in trees.values()),
            max_tree_depth=max((tree.depth for tree in trees.values()), default=0),
            merge_files=len(self._directory),
            merge_pages=self._directory.total_pages(),
            merges_performed=self._merger.merges_performed,
            merge_evictions=self._merger.evictions,
        )

    # ------------------------------------------------------------------ #
    # Telemetry (see repro.obs)
    # ------------------------------------------------------------------ #

    @property
    def tracer(self) -> Tracer | None:
        """The attached tracer, or ``None`` (the default: tracing off)."""
        return self._processor.tracer

    def enable_tracing(self, capacity: int = 4096) -> Tracer:
        """Attach a fresh :class:`~repro.obs.Tracer` to every subsystem.

        Observation only: spans never feed back into routing, merging,
        charging or lock ordering, so a traced engine is bit-identical
        to an untraced one (the engine fuzz oracle runs one engine per
        mode with tracing enabled to keep this true).  Returns the
        tracer; read spans via ``tracer.finished()`` / ``drain()``.
        """
        tracer = Tracer(capacity=capacity)
        self._attach_tracer(tracer)
        return tracer

    def disable_tracing(self) -> None:
        """Detach the tracer, restoring the zero-overhead fast path."""
        self._attach_tracer(None)

    def _attach_tracer(self, tracer: Tracer | None) -> None:
        self._processor.attach_tracer(tracer)
        self._disk.attach_tracer(tracer)
        log = self._processor.durability
        if log is not None:
            log.journal.attach_tracer(tracer)

    def metrics_registry(self) -> MetricsRegistry:
        """The engine's metric registry (built lazily, then cached).

        Every subsystem counter family is adopted through a read-time
        adapter, so the registry adds no bookkeeping to any hot path and
        its totals always reconcile with the legacy counters.
        """
        if self._registry is None:
            registry = MetricsRegistry()
            registry.add_counter_source(
                "disk.io", lambda: asdict(self._disk.stats_snapshot())
            )
            registry.add_counter_source(
                "disk.buffer", lambda: asdict(self._disk.buffer_pool.counters())
            )
            registry.add_counter_source("engine", lambda: asdict(self.summary()))
            registry.add_counter_source("storage.retry", self._retry_counters)
            registry.add_counter_source("storage.faults", self._fault_counters)
            registry.add_counter_source("serve", self._serve_counters)
            registry.add_gauge_source("epoch", self._epoch_gauges)
            registry.add_gauge_source("trace", self._trace_gauges)
            registry.add_histogram_source(
                "serve.latency_seconds", self._serve_latency
            )
            self._registry = registry
        return self._registry

    def telemetry(self) -> EngineSnapshot:
        """One atomic, exportable snapshot of every engine metric.

        Pair with :func:`repro.obs.snapshot_to_json` or
        :func:`repro.obs.snapshot_to_prometheus`.
        """
        return self.metrics_registry().snapshot()

    def _backend_chain(self):
        backend = self._disk.backend
        while backend is not None:
            yield backend
            backend = getattr(backend, "inner", None)

    def _retry_counters(self) -> dict:
        from repro.storage.retry import RetryingBackend

        totals: dict[str, int] = {}
        for backend in self._backend_chain():
            if isinstance(backend, RetryingBackend):
                for key, value in asdict(backend.counters()).items():
                    totals[key] = totals.get(key, 0) + value
        return totals

    def _fault_counters(self) -> dict:
        from repro.storage.faults import FaultInjectingBackend

        totals: dict[str, int] = {}
        for backend in self._backend_chain():
            if isinstance(backend, FaultInjectingBackend):
                for key, value in asdict(backend.counters()).items():
                    totals[key] = totals.get(key, 0) + value
        return totals

    def _epoch_gauges(self) -> dict:
        manager = self._processor.epochs
        return {} if manager is None else manager.gauges()

    def _trace_gauges(self) -> dict:
        tracer = self.tracer
        if tracer is None:
            return {"enabled": 0}
        return {
            "enabled": 1,
            "spans_buffered": len(tracer),
            "spans_evicted": tracer.evicted,
            "capacity": tracer.capacity,
        }

    def _serve_counters(self) -> dict:
        totals: dict[str, int] = {}
        for service in list(self._services):
            stats = service.stats
            for name, value in asdict(stats).items():
                if not isinstance(value, int) or isinstance(value, bool):
                    continue  # the latency digest is not a counter
                if name == "max_batch_size":
                    totals[name] = max(totals.get(name, 0), value)
                else:
                    totals[name] = totals.get(name, 0) + value
        return totals

    def _serve_latency(self) -> Histogram | None:
        merged: Histogram | None = None
        for service in list(self._services):
            if merged is None:
                merged = Histogram("serve.latency_seconds")
            merged.merge(service.latency_histogram)
        return merged
