"""Configuration of Space Odyssey.

The defaults are the parameters used in the paper's evaluation
(Section 4.1): refinement threshold ``rt = 4``, ``ppl = 64`` partitions per
level, merging threshold ``mt = 2``, and merging only for combinations of at
least three datasets (Section 3.2.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class OdysseyConfig:
    """Tunable parameters of the Space Odyssey engine.

    Parameters
    ----------
    refinement_threshold:
        ``rt`` — a partition hit by a query is refined one level when the
        ratio of partition volume to query volume exceeds this threshold.
    partitions_per_level:
        ``ppl`` — how many children a partition is split into.  Must be a
        perfect ``dimension``-th power (e.g. 8 or 64 in 3-D, 4 or 16 in
        2-D); the paper uses 64 to speed up convergence over a plain
        Octree's 8.
    merge_threshold:
        ``mt`` — a combination of datasets becomes a merge candidate once
        it has been retrieved strictly more than this many times.
    min_merge_combination:
        Minimum combination size ``|C|`` eligible for merging; the paper
        merges only combinations of three or more datasets.
    merge_space_budget_pages:
        Maximum number of disk pages all merge files may occupy together;
        least-recently-used merge files are dropped when exceeded.
        ``None`` means unbounded.
    enable_merging:
        Master switch for the merging machinery (Figure 5c runs Space
        Odyssey with merging disabled to isolate its effect).
    refine_levels_per_query:
        How many levels a hit partition may be refined per query.  The
        paper refines one level per query; larger values converge faster at
        a higher per-query cost (useful for ablations).
    max_depth:
        Safety bound on partition-tree depth, preventing runaway
        refinement for degenerate query volumes.
    merge_partition_min_hits:
        A partition is copied into a merge file only after it has been
        retrieved by at least this many queries of the combination.  This
        (together with ``merge_only_converged``) is our answer to the
        paper's open issue on merging partitions at the right moment: it
        stops the merger from copying partitions that were touched once in
        passing and never again.  Set to 1 for the paper's plain behaviour
        of merging every retrieved partition.
    merge_only_converged:
        When true, a partition is merged only once it is no longer a
        refinement candidate for this combination's typical query volume
        (``V_partition <= rt * avg(V_query)``).  This avoids copying large
        unconverged partitions whose copies would immediately be
        superseded by refined originals (another of the paper's open
        issues).
    adaptive_merge_threshold:
        When true, the merger uses the cost model of
        :mod:`repro.core.cost` to adapt the merge threshold at run time
        (the paper lists this as future work; disabled by default).
    columnar:
        Implementation switch, not a paper parameter: when true (the
        default) the engine runs its columnar-native hot path — pages
        decode into NumPy structured arrays, query filtering and partition
        assignment are vectorized masks, and partition/merge files are
        written straight from arrays.  When false the engine runs the
        original per-record scalar path.  Both paths are bit-identical in
        results, reports and on-disk bytes (the differential oracle in
        ``tests/test_columnar_differential.py`` enforces this); the scalar
        path is kept as the reference implementation and performance
        baseline.
    snapshot_reads:
        Implementation switch, not a paper parameter: when true (the
        default) the engine maintains MVCC-style epoch snapshots
        (:mod:`repro.core.epoch`) — every adaptation publishes a new
        immutable ``EngineEpoch`` and destructive page writes retain
        pre-images for pinned readers, enabling
        ``query_batch(..., snapshot=True)`` and the serving frontend's
        pipelined dispatch (the read phase of batch N+1 overlaps the
        writer phase of batch N).  Epoch bookkeeping changes no charged
        I/O, no results and no on-disk bytes; set to false to strip the
        machinery entirely (snapshot reads then raise ``RuntimeError``).
    batch_executor:
        Implementation switch, not a paper parameter: the default executor
        ``query_batch(..., workers=K)`` fans out on when no per-call
        ``executor=`` is given.  ``"thread"`` (the default) runs the
        thread-pool executor; ``"process"`` runs the process-pool executor
        (:class:`~repro.core.parallel.ProcessExecutor`) whose workers
        decode and filter pages over shared-memory/mmap buffers outside
        the GIL.  Both are bit-identical to the serial batch engine in
        results, reports, adaptive state and on-disk bytes (enforced by
        ``tests/test_engine_fuzz.py``).
    """

    refinement_threshold: float = 4.0
    partitions_per_level: int = 64
    merge_threshold: int = 2
    min_merge_combination: int = 3
    merge_space_budget_pages: int | None = None
    enable_merging: bool = True
    refine_levels_per_query: int = 1
    max_depth: int = 16
    merge_partition_min_hits: int = 2
    merge_only_converged: bool = True
    adaptive_merge_threshold: bool = False
    columnar: bool = True
    snapshot_reads: bool = True
    batch_executor: str = "thread"

    def __post_init__(self) -> None:
        if self.refinement_threshold <= 0:
            raise ValueError("refinement_threshold must be positive")
        if self.partitions_per_level < 2:
            raise ValueError("partitions_per_level must be >= 2")
        if self.merge_threshold < 0:
            raise ValueError("merge_threshold must be non-negative")
        if self.min_merge_combination < 1:
            raise ValueError("min_merge_combination must be >= 1")
        if self.merge_space_budget_pages is not None and self.merge_space_budget_pages < 1:
            raise ValueError("merge_space_budget_pages must be >= 1 or None")
        if self.refine_levels_per_query < 0:
            raise ValueError("refine_levels_per_query must be non-negative")
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if self.merge_partition_min_hits < 1:
            raise ValueError("merge_partition_min_hits must be >= 1")
        if self.batch_executor not in ("thread", "process"):
            raise ValueError("batch_executor must be 'thread' or 'process'")

    def splits_per_dimension(self, dimension: int) -> int:
        """Per-dimension split count such that ``splits**dimension == ppl``.

        Raises ``ValueError`` when ``partitions_per_level`` is not a perfect
        ``dimension``-th power, because the space-oriented splitting must be
        regular along every axis.
        """
        if dimension < 1:
            raise ValueError("dimension must be >= 1")
        splits = round(self.partitions_per_level ** (1.0 / dimension))
        for candidate in (splits - 1, splits, splits + 1):
            if candidate >= 2 and candidate**dimension == self.partitions_per_level:
                return candidate
        raise ValueError(
            f"partitions_per_level={self.partitions_per_level} is not a perfect "
            f"{dimension}-th power of an integer >= 2"
        )

    def queries_to_full_refinement(
        self, partition_volume: float, query_volume: float
    ) -> int:
        """The paper's convergence formula: ``log_ppl(Vp / (Vq * rt))``.

        Number of queries that must hit a partition of volume
        ``partition_volume`` before it is refined down to (roughly) the
        query volume, given the refinement threshold.
        """
        if partition_volume <= 0 or query_volume <= 0:
            raise ValueError("volumes must be positive")
        ratio = partition_volume / (query_volume * self.refinement_threshold)
        if ratio <= 1:
            return 0
        return math.ceil(math.log(ratio, self.partitions_per_level))

    def without_merging(self) -> "OdysseyConfig":
        """A copy of this configuration with merging disabled (Figure 5c)."""
        from dataclasses import replace

        return replace(self, enable_merging=False)
