"""Command-line interface for regenerating the paper's figures.

Examples
--------
Run the Figure 4 panel with Zipf-distributed dataset ids at the default
(small) scale and print the table::

    python -m repro.cli fig4 --ids-dist zipf

Run the merging ablation (Figure 5c) at medium scale and save the raw data::

    python -m repro.cli fig5c --scale medium --output results/fig5c.json

Run everything the paper reports::

    python -m repro.cli all --scale small --output-dir results/

Execute workloads through the batched engine, 32 queries at a time::

    python -m repro.cli fig5b --scale small --batch-size 32

Same, with each batch fanned across four worker threads::

    python -m repro.cli fig5b --scale small --batch-size 32 --workers 4

Record a machine-readable wall-clock performance snapshot (including a
parallel-batch worker sweep and the open-loop serving phase)::

    python -m repro.cli bench --scale small --json BENCH_small.json --workers 1,2,4

Same snapshot with the fault-tolerance phase (a seeded fault campaign
under the retry layer plus a timed crash/recovery drill)::

    python -m repro.cli bench --scale small --faults

Benchmark the multi-tenant serving frontend alone — open-loop arrivals
through the dynamic batcher, reporting sustained QPS and p50/p99 latency::

    python -m repro.cli serve-bench --scale small --rate 500 --clients 8

Run a short traced workload and export the engine's telemetry snapshot
(all subsystem counters, gauges and latency histograms) as JSON or
Prometheus text, optionally with the span trace::

    python -m repro.cli stats --format prometheus
    python -m repro.cli stats --output stats.json --trace trace.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench import experiments, perf, reporting
from repro.bench.scales import SCALES


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return number


def _positive_int_list(value: str) -> tuple[int, ...]:
    try:
        numbers = tuple(int(part) for part in value.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be comma-separated positive integers, got {value!r}"
        ) from None
    if not numbers or any(number < 1 for number in numbers):
        raise argparse.ArgumentTypeError(
            f"must be comma-separated positive integers, got {value!r}"
        )
    return numbers


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        default="small",
        choices=sorted(SCALES),
        help="experiment scale preset (default: small)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="optional path of a JSON file to write the raw result to",
    )
    parser.add_argument(
        "--batch-size",
        type=_positive_int,
        default=1,
        help=(
            "execute the workload in batches of this many queries "
            "(Space Odyssey uses its vectorized batch engine; default: 1)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help=(
            "threads per batch (requires --batch-size > 1; Space Odyssey "
            "uses its thread-parallel batch executor; results are "
            "identical, simulated timings may wobble slightly; default: 1)"
        ),
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Reproduce the evaluation of 'Space Odyssey' (ExploreDB/PODS 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig4 = sub.add_parser("fig4", help="Figure 4: total processing cost")
    fig4.add_argument(
        "--ids-dist",
        default="zipf",
        choices=["zipf", "heavy_hitter", "self_similar", "uniform"],
        help="distribution of the queried dataset combinations",
    )
    fig4.add_argument(
        "--ranges",
        default="clustered",
        choices=["clustered", "uniform"],
        help="distribution of the query ranges",
    )
    fig4.add_argument(
        "--datasets-queried",
        default="1,3,5,7,9",
        help="comma-separated numbers of datasets queried (x axis)",
    )
    _add_common(fig4)

    fig5a = sub.add_parser("fig5a", help="Figure 5a: per-query times (clustered/self-similar)")
    _add_common(fig5a)
    fig5b = sub.add_parser("fig5b", help="Figure 5b: per-query times (uniform/uniform)")
    _add_common(fig5b)
    fig5c = sub.add_parser("fig5c", help="Figure 5c: effect of merging")
    _add_common(fig5c)

    bench = sub.add_parser(
        "bench",
        help="measure a wall-clock perf snapshot and write BENCH_<scale>.json",
    )
    bench.add_argument(
        "--scale",
        default="small",
        choices=sorted(SCALES),
        help="experiment scale preset (default: small)",
    )
    bench.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="output path of the JSON snapshot (default: BENCH_<scale>.json)",
    )
    bench.add_argument(
        "--queries",
        type=_positive_int,
        default=64,
        help="number of workload queries in the measured passes (default: 64)",
    )
    bench.add_argument(
        "--batch-size",
        type=_positive_int,
        default=32,
        help="chunk size of the batched steady-state pass (default: 32)",
    )
    bench.add_argument(
        "--repeats",
        type=_positive_int,
        default=3,
        help=(
            "seed-repeated passes per steady-state phase; the snapshot "
            "records best-of in wall_seconds plus mean ± std in each "
            "phase's stats block (default: 3)"
        ),
    )
    bench.add_argument(
        "--workers",
        type=_positive_int_list,
        default=(1, 2, 4),
        metavar="K1,K2,...",
        help=(
            "comma-separated worker counts for the parallel-batch sweep "
            "recorded in the snapshot (default: 1,2,4)"
        ),
    )
    bench.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help=(
            "pool flavour of the worker sweep: 'thread' shares the "
            "engine's memory, 'process' decodes and filters pages in "
            "worker processes outside the GIL (default: thread)"
        ),
    )
    bench.add_argument(
        "--compression",
        choices=("zlib", "zstd"),
        default=None,
        help=(
            "compress the raw dataset files' pages at build time; every "
            "phase then measures reads of compressed pages (default: off)"
        ),
    )
    bench.add_argument(
        "--concurrent-threads",
        type=int,
        default=2,
        metavar="N",
        help=(
            "threads of the concurrent_batches (epoch-overlap) phase: each "
            "runs the chunked workload through query_batch(snapshot=True) "
            "at once against one shared engine (default: 2; 0 skips)"
        ),
    )
    bench.add_argument(
        "--no-serve",
        action="store_true",
        help="skip the open-loop serving phase of the snapshot",
    )
    bench.add_argument(
        "--faults",
        action="store_true",
        help=(
            "add the fault-tolerance phase: a seeded fault campaign under "
            "the retry layer (faults injected / retries / corrupt reads "
            "detected / client-visible errors) plus a timed crash/recovery "
            "drill, recorded in the snapshot"
        ),
    )
    bench.add_argument(
        "--serve-rate",
        type=float,
        default=None,
        metavar="QPS",
        help=(
            "offered rate of the serving phase (default: 70%% of the "
            "measured batch-mode capacity)"
        ),
    )
    bench.add_argument(
        "--serve-clients",
        type=_positive_int,
        default=4,
        help="concurrent client threads of the serving phase (default: 4)",
    )
    bench.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "dump the observability phase's span trace (per-phase query "
            "tracing of the batched pass) to this JSON file"
        ),
    )

    stats = sub.add_parser(
        "stats",
        help=(
            "run a short traced workload on a fresh engine and export its "
            "telemetry snapshot (JSON or Prometheus text)"
        ),
    )
    stats.add_argument(
        "--scale",
        default="tiny",
        choices=sorted(SCALES),
        help="experiment scale preset of the probe engine (default: tiny)",
    )
    stats.add_argument(
        "--queries",
        type=_positive_int,
        default=32,
        help="workload queries executed before the snapshot (default: 32)",
    )
    stats.add_argument(
        "--batch-size",
        type=_positive_int,
        default=8,
        help="batch size of the probe workload (default: 8)",
    )
    stats.add_argument(
        "--format",
        default="json",
        choices=["json", "prometheus"],
        help="snapshot encoding (default: json)",
    )
    stats.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the snapshot here instead of stdout",
    )
    stats.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="also dump the probe run's span trace to this JSON file",
    )

    serve_bench = sub.add_parser(
        "serve-bench",
        help=(
            "open-loop benchmark of the multi-tenant serving frontend "
            "(dynamic batching; reports sustained QPS and p50/p99 latency)"
        ),
    )
    serve_bench.add_argument(
        "--scale",
        default="small",
        choices=sorted(SCALES),
        help="experiment scale preset (default: small)",
    )
    serve_bench.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="optional output path of the JSON serve snapshot",
    )
    serve_bench.add_argument(
        "--queries",
        type=_positive_int,
        default=64,
        help="distinct workload queries (default: 64)",
    )
    serve_bench.add_argument(
        "--repeats",
        type=_positive_int,
        default=4,
        help="times the workload is repeated through the service (default: 4)",
    )
    serve_bench.add_argument(
        "--rate",
        type=float,
        default=None,
        metavar="QPS",
        help=(
            "offered arrival rate; default derives from measured batch "
            "capacity at --utilization"
        ),
    )
    serve_bench.add_argument(
        "--utilization",
        type=float,
        default=0.7,
        help="fraction of measured capacity to offer when --rate is absent "
        "(default: 0.7)",
    )
    serve_bench.add_argument(
        "--clients",
        type=_positive_int,
        default=4,
        help="concurrent client threads (default: 4)",
    )
    serve_bench.add_argument(
        "--max-batch",
        type=_positive_int,
        default=32,
        help="size trigger of the dynamic batcher (default: 32)",
    )
    serve_bench.add_argument(
        "--max-delay-ms",
        type=float,
        default=5.0,
        help="deadline trigger of the dynamic batcher in ms (default: 5)",
    )
    serve_bench.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="worker threads per drained batch (default: 1)",
    )

    everything = sub.add_parser("all", help="run every figure and write JSON results")
    everything.add_argument("--scale", default="small", choices=sorted(SCALES))
    everything.add_argument("--output-dir", default="results", help="directory for JSON results")
    everything.add_argument(
        "--batch-size",
        type=_positive_int,
        default=1,
        help="execute every workload in batches of this many queries (default: 1)",
    )
    everything.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="threads per batch for every workload (default: 1)",
    )
    return parser


def _maybe_save(result, output: str | None) -> None:
    if output:
        path = reporting.save_json(result, output)
        print(f"\nraw result written to {path}")


def _run_stats(args) -> None:
    """The ``stats`` command: probe workload → telemetry snapshot."""
    from repro.bench.runner import generate_workload
    from repro.bench.scales import get_scale
    from repro.data.suite import build_benchmark_suite
    from repro.obs import snapshot_to_json, snapshot_to_prometheus, write_trace

    scale = get_scale(args.scale)
    suite = build_benchmark_suite(
        n_datasets=scale.n_datasets,
        objects_per_dataset=scale.objects_per_dataset,
        seed=scale.seed,
        model=scale.disk_model(),
    )
    workload = list(
        generate_workload(
            suite.universe,
            suite.catalog.dataset_ids(),
            args.queries,
            seed=scale.seed,
            datasets_per_query=min(2, scale.n_datasets),
            volume_fraction=5e-3,
        )
    )
    from repro.core.odyssey import SpaceOdyssey

    odyssey = SpaceOdyssey(suite.catalog)
    tracer = odyssey.enable_tracing()
    for start in range(0, len(workload), args.batch_size):
        odyssey.query_batch(workload[start : start + args.batch_size])
    snapshot = odyssey.telemetry()
    if args.format == "prometheus":
        rendered = snapshot_to_prometheus(snapshot)
    else:
        rendered = snapshot_to_json(snapshot)
    if args.output:
        Path(args.output).write_text(rendered + "\n")
        print(f"telemetry snapshot written to {args.output}")
    else:
        print(rendered)
    if args.trace:
        count = write_trace(tracer, args.trace)
        print(f"{count} spans written to {args.trace}", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    """Entry point of the ``repro-bench`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if (
        args.command not in ("bench", "serve-bench")
        and getattr(args, "workers", 1) > 1
        and args.batch_size == 1
    ):
        parser.error("--workers > 1 requires --batch-size > 1 (nothing to fan out)")

    if args.command == "fig4":
        ks = tuple(int(part) for part in args.datasets_queried.split(",") if part.strip())
        result = experiments.figure4(
            ids_distribution=args.ids_dist,
            ranges=args.ranges,
            scale=args.scale,
            datasets_queried=ks,
            batch_size=args.batch_size,
            workers=args.workers,
        )
        print(reporting.format_figure4_table(result))
        _maybe_save(result, args.output)
    elif args.command == "fig5a":
        result = experiments.figure5a(
            scale=args.scale, batch_size=args.batch_size, workers=args.workers
        )
        print(reporting.format_figure5_summary(result))
        _maybe_save(result, args.output)
    elif args.command == "fig5b":
        result = experiments.figure5b(
            scale=args.scale, batch_size=args.batch_size, workers=args.workers
        )
        print(reporting.format_figure5_summary(result))
        _maybe_save(result, args.output)
    elif args.command == "fig5c":
        result = experiments.figure5c(
            scale=args.scale, batch_size=args.batch_size, workers=args.workers
        )
        print(reporting.format_figure5c_summary(result))
        _maybe_save(result, args.output)
    elif args.command == "bench":
        snapshot = perf.run_perf_snapshot(
            args.scale,
            n_queries=args.queries,
            batch_size=args.batch_size,
            repeats=args.repeats,
            workers=args.workers,
            concurrent_threads=args.concurrent_threads,
            serve=not args.no_serve,
            serve_rate_qps=args.serve_rate,
            serve_clients=args.serve_clients,
            faults=args.faults,
            compression=args.compression,
            executor=args.executor,
            trace_path=args.trace,
        )
        print(perf.format_snapshot_summary(snapshot))
        path = perf.save_snapshot(
            snapshot, args.json or perf.default_snapshot_path(args.scale)
        )
        print(f"\nperf snapshot written to {path}")
    elif args.command == "stats":
        _run_stats(args)
    elif args.command == "serve-bench":
        snapshot = perf.run_serve_snapshot(
            args.scale,
            n_queries=args.queries,
            serve_repeats=args.repeats,
            rate_qps=args.rate,
            utilization=args.utilization,
            n_clients=args.clients,
            max_batch=args.max_batch,
            max_delay_ms=args.max_delay_ms,
            workers=args.workers if args.workers > 1 else None,
        )
        print(f"serve snapshot — scale: {snapshot['scale']}\n")
        print(perf.format_serve_phase(snapshot["serve"]))
        if args.json:
            path = perf.save_snapshot(snapshot, args.json)
            print(f"\nserve snapshot written to {path}")
    elif args.command == "all":
        output_dir = Path(args.output_dir)
        batch = args.batch_size
        workers = args.workers
        panels = {
            "fig4a": lambda: experiments.figure4(
                "zipf", "clustered", args.scale, batch_size=batch, workers=workers
            ),
            "fig4b": lambda: experiments.figure4(
                "heavy_hitter", "clustered", args.scale, batch_size=batch,
                workers=workers,
            ),
            "fig4c": lambda: experiments.figure4(
                "self_similar", "clustered", args.scale, batch_size=batch,
                workers=workers,
            ),
            "fig4d": lambda: experiments.figure4(
                "uniform", "uniform", args.scale, batch_size=batch, workers=workers
            ),
            "fig5a": lambda: experiments.figure5a(
                args.scale, batch_size=batch, workers=workers
            ),
            "fig5b": lambda: experiments.figure5b(
                args.scale, batch_size=batch, workers=workers
            ),
            "fig5c": lambda: experiments.figure5c(
                args.scale, batch_size=batch, workers=workers
            ),
        }
        for name, runner in panels.items():
            print(f"=== {name} ===")
            result = runner()
            if name.startswith("fig4"):
                print(reporting.format_figure4_table(result))
            elif name == "fig5c":
                print(reporting.format_figure5c_summary(result))
            else:
                print(reporting.format_figure5_summary(result))
            reporting.save_json(result, output_dir / f"{name}.json")
            print()
        print(f"raw results written to {output_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
