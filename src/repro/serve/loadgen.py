"""Open-loop load generation against a :class:`~repro.serve.QueryService`.

The serving layer is measured the way inference servers are: an
**open-loop** arrival process.  Query arrivals are scheduled on the wall
clock at a fixed offered rate *regardless of completions* — clients never
wait for an answer before sending the next query — so queueing delay
shows up in the latency distribution instead of silently throttling the
offered load (the "coordinated omission" failure mode of closed loops).

Each request's latency is measured from its **scheduled arrival time** to
future completion: if the submitting client fell behind schedule or the
query sat in the batcher's queue, that wait is part of the number, which
is what a tail-latency percentile is supposed to capture.

The arrival schedule is deterministic (arrival ``k`` at ``k /
rate_qps`` seconds, interleaved round-robin over ``n_clients`` submitter
threads), so two runs at the same rate offer the same load pattern.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import wait
from dataclasses import asdict, dataclass
from typing import Any, Sequence

import numpy as np

from repro.serve.service import QueryService, Submission
from repro.workload.query import RangeQuery


@dataclass(frozen=True, slots=True)
class LatencySummary:
    """Latency percentiles of one open-loop run, in milliseconds."""

    p50_ms: float
    p90_ms: float
    p99_ms: float
    mean_ms: float
    max_ms: float

    @classmethod
    def from_samples(cls, samples_ms: Sequence[float]) -> "LatencySummary":
        array = np.asarray(samples_ms, dtype=np.float64)
        return cls(
            p50_ms=float(np.percentile(array, 50)),
            p90_ms=float(np.percentile(array, 90)),
            p99_ms=float(np.percentile(array, 99)),
            mean_ms=float(array.mean()),
            max_ms=float(array.max()),
        )


@dataclass(frozen=True, slots=True)
class OpenLoopReport:
    """Everything one open-loop run measured."""

    queries: int
    completed: int
    failed: int
    offered_qps: float
    sustained_qps: float
    wall_seconds: float
    n_clients: int
    latency: LatencySummary | None

    def to_json(self) -> dict[str, Any]:
        """A JSON-ready dict (latency flattened under ``latency_ms``)."""
        payload: dict[str, Any] = {
            "queries": self.queries,
            "completed": self.completed,
            "failed": self.failed,
            "offered_qps": self.offered_qps,
            "sustained_qps": self.sustained_qps,
            "wall_seconds": self.wall_seconds,
            "n_clients": self.n_clients,
        }
        payload["latency_ms"] = (
            asdict(self.latency) if self.latency is not None else None
        )
        return payload


def _normalize(queries) -> list[tuple]:
    normalized = []
    for query in queries:
        if isinstance(query, RangeQuery):
            normalized.append((query.box, query.dataset_ids))
        else:
            box, dataset_ids = query
            normalized.append((box, tuple(dataset_ids)))
    return normalized


def run_open_loop(
    service: QueryService,
    queries,
    *,
    rate_qps: float,
    n_clients: int = 4,
    timeout_s: float = 300.0,
) -> OpenLoopReport:
    """Offer ``queries`` to a service at ``rate_qps`` and measure latency.

    ``queries`` is a sequence of :class:`~repro.workload.query.RangeQuery`
    or ``(box, dataset_ids)`` pairs; arrival ``k`` is scheduled at ``k /
    rate_qps`` seconds after the common start, round-robined over
    ``n_clients`` submitter threads.  Returns sustained QPS (completions
    over the span from start to last completion) and the latency
    distribution from scheduled arrival to completion.
    """
    if rate_qps <= 0:
        raise ValueError("rate_qps must be positive")
    if n_clients < 1:
        raise ValueError("n_clients must be >= 1")
    plan = _normalize(queries)
    if not plan:
        raise ValueError("an open-loop run needs at least one query")
    n = len(plan)
    done_at: list[float | None] = [None] * n
    scheduled_at: list[float] = [k / rate_qps for k in range(n)]
    submissions: list[Submission | None] = [None] * n
    errors: list[BaseException] = []
    start_gate = threading.Barrier(n_clients + 1)
    t0_holder: list[float] = []

    def client(client_index: int) -> None:
        try:
            start_gate.wait(timeout=30)
            t0 = t0_holder[0]
            for k in range(client_index, n, n_clients):
                target = t0 + scheduled_at[k]
                delay = target - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                submission = service.submit(*plan[k])
                submissions[k] = submission

                def completion(_future, index: int = k) -> None:
                    done_at[index] = time.perf_counter()

                submission.future.add_done_callback(completion)
        except BaseException as exc:  # pragma: no cover - harness failure
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(index,), name=f"loadgen-{index}")
        for index in range(n_clients)
    ]
    for thread in threads:
        thread.start()
    t0_holder.append(time.perf_counter())
    start_gate.wait(timeout=30)
    for thread in threads:
        thread.join(timeout=timeout_s)
    if errors:
        raise errors[0]

    futures = [s.future for s in submissions if s is not None]
    pending = wait(futures, timeout=timeout_s)
    if pending.not_done:  # pragma: no cover - saturation guard
        raise TimeoutError(
            f"{len(pending.not_done)} of {n} served queries did not complete "
            f"within {timeout_s}s"
        )
    # `wait` observes resolution before the done-callbacks run (they fire
    # just after the future's waiters are woken), so give the last
    # timestamps a moment to land.
    grace = time.perf_counter() + 5.0
    while (
        any(
            done_at[k] is None
            for k, submission in enumerate(submissions)
            if submission is not None
        )
        and time.perf_counter() < grace
    ):
        time.sleep(0.001)

    t0 = t0_holder[0]
    completed = 0
    failed = 0
    latencies_ms: list[float] = []
    last_done = t0
    for k, submission in enumerate(submissions):
        if submission is None:  # pragma: no cover - harness failure
            failed += 1
            continue
        finished = done_at[k]
        if finished is None:  # pragma: no cover - callback never landed
            failed += 1
            continue
        last_done = max(last_done, finished)
        if submission.future.exception() is None:
            completed += 1
            latencies_ms.append((finished - (t0 + scheduled_at[k])) * 1000.0)
        else:
            failed += 1
    wall = max(last_done - t0, 1e-9)
    return OpenLoopReport(
        queries=n,
        completed=completed,
        failed=failed,
        offered_qps=rate_qps,
        sustained_qps=completed / wall,
        wall_seconds=wall,
        n_clients=min(n_clients, n),
        latency=LatencySummary.from_samples(latencies_ms) if latencies_ms else None,
    )
