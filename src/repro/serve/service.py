"""The multi-tenant query service: dynamic batching over one engine.

Many concurrent clients submit range queries to a :class:`QueryService`;
a dedicated dispatcher thread coalesces them into batches — flushing on
whichever of two triggers fires first, a **size** trigger (``max_batch``
queued queries) or a **deadline** trigger (the oldest queued query has
waited ``max_delay_ms``) — and drains each batch through
:meth:`~repro.core.odyssey.SpaceOdyssey.query_batch`, optionally with the
thread-parallel executor (``workers=K``).  Every submission gets its own
:class:`~concurrent.futures.Future`, so results *and* exceptions route
back to the client that submitted them.

Pipelined dispatch
------------------
When the engine has epoch-snapshot reads enabled
(``OdysseyConfig.snapshot_reads``, the default), the service pipelines
two batches: the dispatcher runs each batch's *lock-free read phase*
(:meth:`~repro.core.odyssey.SpaceOdyssey.prepare_batch`, pinned to a
published epoch) and hands the prepared batch to a dedicated writer
thread, which applies the *writer phases* — CPU charges plus the
in-order adaptive replay under the engine's gate — strictly in arrival
order.  The read phase of batch N+1 therefore overlaps the writer phase
of batch N.  Per-client results are unchanged: a snapshot read returns
exact answers (they depend only on the data and the query window), and
the writer thread commits batches in the same arrival order the
sequential dispatcher would have, so the adaptive state evolves
identically.  Disable with ``pipeline=False`` to get the classic
one-batch-at-a-time dispatcher.

Determinism contract
--------------------
Submissions are assigned a global **arrival sequence number** and queued
in that order (both under one submission lock), the dispatcher forms
batches from consecutive queued entries, and batched execution is
sequential-equivalent by the engine's own guarantee (see
:mod:`repro.core.batch`).  The service therefore executes exactly the
serial schedule "all accepted queries, in arrival order" — every client's
results are identical to issuing the same queries sequentially in arrival
order on a private engine, and the served engine's post-run adaptive
state equals that sequential run's.  ``tests/test_serve_differential.py``
enforces this with the same packed-bytes/adaptive-state/on-disk oracle as
the batch differential suite.

Failure isolation & graceful degradation
----------------------------------------
A batch whose execution raises (e.g. one query requests an unknown
dataset id — the batch executor validates ids before doing any work)
falls back to executing its queries one by one through
:meth:`~repro.core.odyssey.SpaceOdyssey.query`: only the offending
queries' futures receive the exception, every other query in the batch
still completes with its exact answer, and the arrival-order schedule is
preserved.

Under storage faults the service degrades gracefully instead of hanging
or crash-looping:

* **Transient errors retry with backoff.**  A *read-only* phase (the
  pipelined ``prepare_batch``) that fails with a transient storage error
  (:func:`repro.storage.errors.is_transient`) is retried in place up to
  ``batch_retries`` times with bounded exponential backoff.  In the
  sequential fallback each individual query gets the same treatment.
  (The backend usually absorbs transient faults itself via
  :class:`~repro.storage.retry.RetryingBackend`; service-level retry is
  the second line of defence once the backend's budget is exhausted.)
* **A circuit breaker sheds load.**  ``breaker_threshold`` consecutive
  batches ending with failed queries open the breaker: subsequent
  batches are failed *immediately* with :class:`ServiceDegraded` — a
  typed error, never a hang — without touching the engine, until
  ``breaker_cooldown_ms`` elapses.  The next batch is then let through
  (half-open); success closes the breaker.
* **Health is observable.**  :attr:`QueryService.healthy` reports the
  breaker state and :class:`ServiceStats` carries the fault counters
  (``retries``, ``degraded``, ``breaker_opens``).

Shutdown semantics
------------------
``close(drain=True)`` (also the context-manager exit) stops accepting
submissions, lets the dispatcher execute everything already queued (a
final *drain* flush), and joins it — the engine's gate lock is released
and the engine stays fully usable afterwards.  ``close(drain=False)``
additionally fails still-queued submissions with :class:`ServiceClosed`
instead of executing them; the batch in flight (if any) always completes,
because a top-level ``query_batch`` call cannot be interrupted mid-write.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, fields, replace
from queue import Empty, Queue
from typing import Iterable

from repro.core.odyssey import SpaceOdyssey
from repro.data.spatial_object import SpatialObject
from repro.geometry.box import Box
from repro.obs.metrics import Histogram, HistogramSummary
from repro.obs.trace import maybe_span
from repro.storage.errors import is_transient


class ServiceClosed(RuntimeError):
    """Submitting to a closed service, or a pending query dropped by abort."""


class ServiceDegraded(RuntimeError):
    """The circuit breaker is open: the query was shed, not executed.

    Raised *to the submission's future* (a typed, immediate outcome —
    never a hang) while the service rides out a run of storage failures.
    The breaker closes again after ``breaker_cooldown_ms`` once a batch
    succeeds.
    """


#: Queue sentinel that tells the dispatcher to exit after the current drain.
_SHUTDOWN = object()

#: Flush-trigger labels, in ServiceStats order.
FLUSH_SIZE = "size"
FLUSH_DEADLINE = "deadline"
FLUSH_DRAIN = "drain"


@dataclass(frozen=True, slots=True)
class ServiceStats:
    """A point-in-time snapshot of one service's serving counters.

    ``submitted == completed + failed + cancelled + pending`` at any
    quiescent point (after :meth:`QueryService.close` the pending term is
    zero).  ``size_flushes + deadline_flushes + drain_flushes ==
    batches``.  ``fallbacks`` counts batches that raised and were replayed
    query-by-query for failure isolation.

    The fault counters describe graceful degradation: ``retries`` counts
    service-level retries of transiently-failed work (backoff included),
    ``degraded`` counts queries shed with :class:`ServiceDegraded` while
    the circuit breaker was open (each is also counted in ``failed``),
    and ``breaker_opens`` counts open transitions.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    batches: int = 0
    queries_batched: int = 0
    size_flushes: int = 0
    deadline_flushes: int = 0
    drain_flushes: int = 0
    fallbacks: int = 0
    max_batch_size: int = 0
    retries: int = 0
    degraded: int = 0
    breaker_opens: int = 0
    #: Submit→resolve latency digest (count/total/min/max/p50/p90/p99),
    #: or ``None`` before any query has resolved.  Only snapshots handed
    #: out by :attr:`QueryService.stats` carry it.
    latency: HistogramSummary | None = None

    @property
    def mean_batch_size(self) -> float | None:
        """Average dispatched batch size, or ``None`` before any dispatch."""
        if self.batches == 0:
            return None
        return self.queries_batched / self.batches


class Submission:
    """One accepted query: its arrival order, window, and result future.

    ``seq`` is the global arrival sequence number — the position this
    query holds in the serial schedule the service is guaranteed to be
    equivalent to.  ``future`` is a plain
    :class:`concurrent.futures.Future` resolving to the query's hit list.
    """

    __slots__ = ("seq", "box", "dataset_ids", "future", "submitted_at")

    def __init__(
        self, seq: int, box: Box, dataset_ids: tuple[int, ...], submitted_at: float
    ) -> None:
        self.seq = seq
        self.box = box
        self.dataset_ids = dataset_ids
        self.future: Future[list[SpatialObject]] = Future()
        self.submitted_at = submitted_at

    def result(self, timeout: float | None = None) -> list[SpatialObject]:
        """Block until the query completes and return its hits."""
        return self.future.result(timeout)

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """Block until the query completes and return its exception, if any."""
        return self.future.exception(timeout)

    def done(self) -> bool:
        """Whether the query has completed (successfully or not)."""
        return self.future.done()


class QueryService:
    """Serve a continuous stream of range queries from many clients.

    Parameters
    ----------
    odyssey:
        The engine to serve.  The service's dispatcher is one more client
        of the engine's gate lock; other threads may keep calling
        ``query``/``query_batch`` directly and simply interleave.
    max_batch:
        Size trigger: flush as soon as this many queries are queued.
    max_delay_ms:
        Deadline trigger: flush when the oldest queued query has waited
        this long, even if the batch is not full.  ``0`` disables
        coalescing delay entirely (every flush is whatever is already
        queued the moment the dispatcher looks).
    workers:
        Worker threads per drained batch, passed through to
        ``query_batch(..., workers=K)``; ``None`` or ``1`` uses the serial
        batch engine.
    max_pending:
        Optional backpressure bound: with a value, :meth:`submit` blocks
        once this many queries are queued undispatched (the queue is
        bounded).  ``None`` (default) never blocks.
    pipeline:
        Two-batch pipelining over the epoch-snapshot engine (see the
        module docstring).  ``None`` (default) enables it exactly when
        the engine has ``snapshot_reads``; ``True`` requires it
        (``ValueError`` otherwise); ``False`` forces the classic
        dispatcher.
    batch_retries:
        How many times transiently-failed work is retried at the service
        level (read-only prepare phases, and each query of a sequential
        fallback) before the failure is surfaced.  ``0`` disables
        service-level retry.
    retry_backoff_ms:
        Base delay of the exponential backoff between service-level
        retries (doubled per attempt, capped at ``retry_backoff_max_ms``).
    retry_backoff_max_ms:
        Ceiling of the exponential backoff.  The wait itself is
        interruptible: it is an ``Event.wait``, so an abort
        (``close(drain=False)``) wakes the dispatcher immediately
        instead of letting it finish the full delay.
    breaker_threshold:
        Open the circuit breaker after this many *consecutive* batches
        ended with failed queries; while open, queries are shed with
        :class:`ServiceDegraded`.  ``None`` disables the breaker.
    breaker_cooldown_ms:
        How long the breaker sheds load before letting a probe batch
        through (half-open).
    sleep:
        Injectable sleep function (tests use a recording stub so retry
        backoff does not slow the suite).
    """

    def __init__(
        self,
        odyssey: SpaceOdyssey,
        *,
        max_batch: int = 32,
        max_delay_ms: float = 5.0,
        workers: int | None = None,
        max_pending: int | None = None,
        pipeline: bool | None = None,
        batch_retries: int = 2,
        retry_backoff_ms: float = 1.0,
        retry_backoff_max_ms: float = 100.0,
        breaker_threshold: int | None = 5,
        breaker_cooldown_ms: float = 100.0,
        sleep=time.sleep,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_delay_ms < 0:
            raise ValueError("max_delay_ms must be non-negative")
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1 (or None)")
        if batch_retries < 0:
            raise ValueError("batch_retries must be non-negative")
        if retry_backoff_ms < 0:
            raise ValueError("retry_backoff_ms must be non-negative")
        if retry_backoff_max_ms < 0:
            raise ValueError("retry_backoff_max_ms must be non-negative")
        if breaker_threshold is not None and breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1 (or None)")
        if breaker_cooldown_ms < 0:
            raise ValueError("breaker_cooldown_ms must be non-negative")
        if pipeline is None:
            pipeline = odyssey.config.snapshot_reads
        elif pipeline and not odyssey.config.snapshot_reads:
            raise ValueError(
                "pipeline=True requires OdysseyConfig(snapshot_reads=True)"
            )
        self._odyssey = odyssey
        self._pipeline = pipeline
        self._max_batch = max_batch
        self._max_delay_s = max_delay_ms / 1000.0
        self._workers = workers
        self._batch_retries = batch_retries
        self._retry_backoff_s = retry_backoff_ms / 1000.0
        self._retry_backoff_max_s = retry_backoff_max_ms / 1000.0
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown_s = breaker_cooldown_ms / 1000.0
        # Backoff waits block on this event rather than sleeping, so an
        # abort (close(drain=False)) wakes the dispatcher mid-backoff.
        # An injected ``sleep`` stub (tests) is honoured as-is.
        self._abort_event = threading.Event()
        self._sleep = self._abort_event.wait if sleep is time.sleep else sleep
        # Breaker state: touched only by the executing thread (dispatcher
        # or writer) except for the read-only `healthy` property, which
        # tolerates a stale glimpse.
        self._consecutive_failed_batches = 0
        self._breaker_open_until: float | None = None
        self._queue: Queue = Queue(maxsize=max_pending or 0)
        # One lock orders arrivals: sequence numbers and queue insertion
        # happen atomically, so queue order IS arrival order.
        self._submit_lock = threading.Lock()
        self._seq = itertools.count()
        self._closed = False
        self._abort = False
        self._stats_lock = threading.Lock()
        self._stats = ServiceStats()
        self._latency = Histogram("serve.latency_seconds")
        self._writer: threading.Thread | None = None
        if self._pipeline:
            # Depth 2: the dispatcher may finish preparing batch N+1
            # while the writer still holds batch N — any deeper and read
            # phases would race ever further ahead of the committed
            # adaptive state for no extra overlap.
            self._write_queue: Queue = Queue(maxsize=2)
            self._writer = threading.Thread(
                target=self._write_loop, name="odyssey-serve-writer", daemon=True
            )
            self._writer.start()
        self._dispatcher = threading.Thread(
            target=self._run, name="odyssey-serve-dispatcher", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------ #
    # Client surface
    # ------------------------------------------------------------------ #

    def submit(self, box: Box, dataset_ids: Iterable[int]) -> Submission:
        """Enqueue one range query; returns immediately with its future.

        Raises :class:`ServiceClosed` if the service has been closed.
        Dataset ids are *not* validated here — an invalid query completes
        its future with the engine's exception, exactly as the sequential
        call would have raised it.
        """
        ids = tuple(dataset_ids)
        with self._submit_lock:
            if self._closed:
                raise ServiceClosed("cannot submit to a closed QueryService")
            submission = Submission(
                seq=next(self._seq),
                box=box,
                dataset_ids=ids,
                submitted_at=time.perf_counter(),
            )
            self._queue.put(submission)
        with self._stats_lock:
            self._stats = _bump(self._stats, submitted=1)
        return submission

    def query(
        self,
        box: Box,
        dataset_ids: Iterable[int],
        timeout: float | None = None,
    ) -> list[SpatialObject]:
        """Submit one query and block until its result is available."""
        return self.submit(box, dataset_ids).result(timeout)

    @property
    def stats(self) -> ServiceStats:
        """A snapshot of the serving counters (latency digest included)."""
        with self._stats_lock:
            stats = self._stats
        summary = self._latency.summary()
        return replace(stats, latency=summary if summary.count else None)

    @property
    def latency_histogram(self) -> Histogram:
        """The live submit→resolve latency histogram (mergeable across
        services by the engine's metrics registry)."""
        return self._latency

    @property
    def closed(self) -> bool:
        """Whether the service has stopped accepting submissions."""
        with self._submit_lock:
            return self._closed

    @property
    def odyssey(self) -> SpaceOdyssey:
        """The engine being served."""
        return self._odyssey

    @property
    def pipelined(self) -> bool:
        """Whether dispatch is pipelined over the epoch-snapshot engine."""
        return self._pipeline

    @property
    def healthy(self) -> bool:
        """``False`` while the circuit breaker is shedding load."""
        return self._breaker_open_until is None

    def close(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop accepting submissions and shut the dispatcher down.

        ``drain=True`` executes everything already queued before
        returning; ``drain=False`` fails still-queued submissions with
        :class:`ServiceClosed` (the batch currently executing always
        finishes — the engine's gate lock is never broken mid-write).
        Idempotent; the engine remains fully usable afterwards.
        """
        with self._submit_lock:
            first_close = not self._closed
            self._closed = True
            if first_close:
                if not drain:
                    self._abort = True
                    self._abort_event.set()
                self._queue.put(_SHUTDOWN)
        self._dispatcher.join(timeout)
        if self._dispatcher.is_alive():
            raise TimeoutError("serve dispatcher did not stop within the timeout")

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drain=exc_type is None)

    # ------------------------------------------------------------------ #
    # Dispatcher
    # ------------------------------------------------------------------ #

    def _run(self) -> None:
        """Dispatcher loop: coalesce arrivals, drain batches, until shutdown."""
        while True:
            first = self._queue.get()
            if first is _SHUTDOWN:
                break
            batch = [first]
            reason = FLUSH_SIZE  # what stopped collection if the loop runs out
            shutting_down = False
            deadline = time.monotonic() + self._max_delay_s
            while len(batch) < self._max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    reason = FLUSH_DEADLINE
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except Empty:
                    reason = FLUSH_DEADLINE
                    break
                if item is _SHUTDOWN:
                    reason = FLUSH_DRAIN
                    shutting_down = True
                    break
                batch.append(item)
            self._dispatch(batch, reason)
            if shutting_down:
                break
        # Post-shutdown: with drain the queue is empty by construction
        # (the sentinel is the last thing a closing service enqueues);
        # with abort, _dispatch already failed everything it saw, and
        # nothing can follow the sentinel.
        if self._writer is not None:
            self._write_queue.put(_SHUTDOWN)
            self._writer.join()

    def _dispatch(self, batch: list[Submission], reason: str) -> None:
        """Execute one coalesced batch and resolve its futures.

        In pipelined mode this only runs the lock-free read phase and
        hands the prepared batch to the writer thread (bounded queue, so
        the dispatcher stays at most two batches ahead); otherwise it
        drains the batch through ``query_batch`` right here.
        """
        if self._abort:
            error = ServiceClosed("service closed before this query was executed")
            for submission in batch:
                self._resolve(submission, error=error)
            self._note_batch(batch, reason, fallbacks=0)
            return
        if self._pipeline:
            prepared = None
            if not self._breaker_is_open():
                with maybe_span(
                    self._odyssey.tracer,
                    "serve.prepare",
                    queries=len(batch),
                    flush=reason,
                ):
                    try:
                        prepared = self._retry_transient(
                            lambda: self._odyssey.prepare_batch(
                                [(s.box, s.dataset_ids) for s in batch],
                                workers=self._workers,
                            )
                        )
                    except BaseException:
                        # A failed read phase (e.g. an unknown dataset id —
                        # ids are validated before any work) leaves no state
                        # behind; the writer replays the batch sequentially
                        # for failure isolation, keeping arrival order.
                        prepared = None
            self._write_queue.put((batch, reason, prepared))
            return
        if self._shed_if_degraded(batch, reason):
            return
        fallbacks = 0
        failed = 0
        with maybe_span(
            self._odyssey.tracer, "serve.batch", queries=len(batch), flush=reason
        ) as span:
            try:
                result = self._odyssey.query_batch(
                    [(s.box, s.dataset_ids) for s in batch], workers=self._workers
                )
            except BaseException:
                # Failure isolation: replay the batch sequentially (same
                # arrival order) so only the offending queries fail.  The
                # batch executor validates every dataset id before doing
                # any work, so a validation failure left no partial state.
                fallbacks = 1
                failed = self._replay_sequentially(batch)
            else:
                for submission, hits in zip(batch, result.results):
                    self._resolve(submission, hits=hits)
            if span is not None:
                span.attributes.update(fallback=bool(fallbacks), failed=failed)
        self._breaker_record(failed)
        self._note_batch(batch, reason, fallbacks=fallbacks)

    def _write_loop(self) -> None:
        """Writer thread: commit prepared batches strictly in arrival order."""
        while True:
            item = self._write_queue.get()
            if item is _SHUTDOWN:
                break
            batch, reason, prepared = item
            if self._shed_if_degraded(batch, reason):
                continue
            fallbacks = 0
            failed = 0
            with maybe_span(
                self._odyssey.tracer, "serve.commit", queries=len(batch), flush=reason
            ) as span:
                if prepared is None:
                    fallbacks = 1
                    failed = self._replay_sequentially(batch)
                else:
                    try:
                        result = self._odyssey.commit_batch(prepared)
                    except BaseException:
                        fallbacks = 1
                        failed = self._replay_sequentially(batch)
                    else:
                        for submission, hits in zip(batch, result.results):
                            self._resolve(submission, hits=hits)
                if span is not None:
                    span.attributes.update(fallback=bool(fallbacks), failed=failed)
            self._breaker_record(failed)
            self._note_batch(batch, reason, fallbacks=fallbacks)

    def _replay_sequentially(self, batch: list[Submission]) -> int:
        """The failure-isolation fallback: one engine call per submission.

        Each query that fails transiently is retried with backoff before
        its error is surfaced.  Returns how many queries failed.
        """
        failed = 0
        for submission in batch:
            try:
                hits = self._retry_transient(
                    lambda: self._odyssey.query(
                        submission.box, submission.dataset_ids
                    )
                )
            except BaseException as exc:
                failed += 1
                self._resolve(submission, error=exc)
            else:
                self._resolve(submission, hits=hits)
        return failed

    # ------------------------------------------------------------------ #
    # Graceful degradation
    # ------------------------------------------------------------------ #

    def _retry_transient(self, call):
        """Run ``call``, retrying transient storage errors with backoff."""
        attempt = 0
        while True:
            try:
                return call()
            except BaseException as exc:
                if attempt >= self._batch_retries or not is_transient(exc):
                    raise
                with self._stats_lock:
                    self._stats = _bump(self._stats, retries=1)
                self._sleep(
                    min(
                        self._retry_backoff_s * (2**attempt),
                        self._retry_backoff_max_s,
                    )
                )
                if self._abort_event.is_set():
                    # Aborted mid-backoff: surface the original failure
                    # instead of burning more attempts during shutdown.
                    raise
                attempt += 1

    def _breaker_is_open(self) -> bool:
        """Whether the breaker currently sheds load (handles half-open)."""
        if self._breaker_open_until is None:
            return False
        if time.monotonic() >= self._breaker_open_until:
            # Half-open: let the next batch probe the engine.  A success
            # closes the breaker in _breaker_record; a failure re-opens.
            return False
        return True

    def _shed_if_degraded(self, batch: list[Submission], reason: str) -> bool:
        """Fail the whole batch with ServiceDegraded if the breaker is open."""
        if not self._breaker_is_open():
            return False
        error = ServiceDegraded(
            "circuit breaker open after repeated storage failures; "
            "query shed without execution"
        )
        for submission in batch:
            self._resolve(submission, error=error)
        with self._stats_lock:
            self._stats = _bump(self._stats, degraded=len(batch))
        self._note_batch(batch, reason, fallbacks=0)
        return True

    def _breaker_record(self, failed_queries: int) -> None:
        """Track consecutive failed batches; open/close the breaker."""
        if self._breaker_threshold is None:
            return
        if failed_queries == 0:
            self._consecutive_failed_batches = 0
            self._breaker_open_until = None
            return
        self._consecutive_failed_batches += 1
        if self._consecutive_failed_batches >= self._breaker_threshold:
            self._breaker_open_until = time.monotonic() + self._breaker_cooldown_s
            with self._stats_lock:
                self._stats = _bump(self._stats, breaker_opens=1)

    def _note_batch(self, batch: list[Submission], reason: str, fallbacks: int) -> None:
        with self._stats_lock:
            self._stats = _bump(
                self._stats,
                batches=1,
                queries_batched=len(batch),
                size_flushes=1 if reason == FLUSH_SIZE else 0,
                deadline_flushes=1 if reason == FLUSH_DEADLINE else 0,
                drain_flushes=1 if reason == FLUSH_DRAIN else 0,
                fallbacks=fallbacks,
            )
            if len(batch) > self._stats.max_batch_size:
                self._stats = _replace_max(self._stats, len(batch))

    def _resolve(
        self,
        submission: Submission,
        hits: list[SpatialObject] | None = None,
        error: BaseException | None = None,
    ) -> None:
        """Route one outcome to its future (tolerating client-side cancel)."""
        try:
            if error is not None:
                submission.future.set_exception(error)
                outcome = "failed"
            else:
                submission.future.set_result(hits if hits is not None else [])
                outcome = "completed"
        except InvalidStateError:
            # The client cancelled the future while it was queued.  The
            # query still executed (the arrival-order schedule is never
            # edited after the fact); only the delivery is dropped.
            outcome = "cancelled"
        self._latency.observe(time.perf_counter() - submission.submitted_at)
        with self._stats_lock:
            self._stats = _bump(self._stats, **{outcome: 1})


def _bump(stats: ServiceStats, **increments: int) -> ServiceStats:
    """A copy of ``stats`` with the given counters incremented."""
    values = {f.name: getattr(stats, f.name) for f in fields(stats)}
    for name, delta in increments.items():
        values[name] += delta
    return ServiceStats(**values)


def _replace_max(stats: ServiceStats, size: int) -> ServiceStats:
    values = {f.name: getattr(stats, f.name) for f in fields(stats)}
    values["max_batch_size"] = size
    return ServiceStats(**values)
