"""Multi-tenant serving frontend for the Space Odyssey engine.

``serve`` turns the four-mode engine into a servable system: many
concurrent clients submit range queries to one :class:`QueryService`,
a dedicated dispatcher coalesces them with size and deadline triggers
(the way inference servers batch requests), drains each batch through
:meth:`~repro.core.odyssey.SpaceOdyssey.query_batch`, and routes results
or exceptions back through per-request futures — with per-client results
guaranteed identical to issuing the same queries sequentially in arrival
order (see :mod:`repro.serve.service` for the contract).

:mod:`repro.serve.loadgen` measures the service the way serving systems
are judged: sustained QPS and p50/p99 latency under an open-loop arrival
process.
"""

from repro.serve.loadgen import LatencySummary, OpenLoopReport, run_open_loop
from repro.serve.service import (
    QueryService,
    ServiceClosed,
    ServiceDegraded,
    ServiceStats,
    Submission,
)

__all__ = [
    "LatencySummary",
    "OpenLoopReport",
    "QueryService",
    "ServiceClosed",
    "ServiceDegraded",
    "ServiceStats",
    "Submission",
    "run_open_loop",
]
