"""Sort-Tile-Recursive (STR) packing and external-sort cost accounting.

STR (Leutenegger, Lopez et al., ICDE '97) bulk-loads an R-tree by recursively
sorting the objects along each dimension and tiling them into equal-size
slabs, producing leaves that are nearly square and nearly full.  Both the
R-tree and FLAT baselines use this packing.

The sort itself runs in memory here (the simulation holds the objects), but
at the paper's scale it would be an *external* multi-pass sort, which is a
large part of why FLAT and the R-tree are so much slower to build than the
simple Grid.  :func:`charge_external_sort` therefore charges the disk model
for the sequential read/write passes an external merge sort of the given
size would perform, keeping the build-time comparison honest.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.data.spatial_object import SpatialObject
from repro.storage.disk import Disk


def str_sort_tile(
    objects: Sequence[SpatialObject],
    leaf_capacity: int,
    dimension: int | None = None,
) -> list[list[SpatialObject]]:
    """Pack ``objects`` into STR leaves of at most ``leaf_capacity`` objects.

    The classic recursive formulation: sort by the first dimension's centre,
    cut into vertical slabs of equal leaf count, then recurse on the
    remaining dimensions within each slab.  Returns the leaves in packing
    order, which is spatially coherent — consecutive leaves are close to
    each other, so grouping them bottom-up yields a well-shaped tree.
    """
    if leaf_capacity < 1:
        raise ValueError("leaf_capacity must be >= 1")
    objects = list(objects)
    if not objects:
        return []
    if dimension is None:
        dimension = objects[0].dimension

    def tile(chunk: list[SpatialObject], axis: int) -> list[list[SpatialObject]]:
        if len(chunk) <= leaf_capacity:
            return [chunk]
        chunk.sort(key=lambda obj: obj.center[axis])
        if axis == dimension - 1:
            return [
                chunk[start : start + leaf_capacity]
                for start in range(0, len(chunk), leaf_capacity)
            ]
        n_leaves = math.ceil(len(chunk) / leaf_capacity)
        remaining_dims = dimension - axis
        slabs = math.ceil(n_leaves ** (1.0 / remaining_dims))
        slab_size = math.ceil(len(chunk) / slabs)
        leaves: list[list[SpatialObject]] = []
        for start in range(0, len(chunk), slab_size):
            leaves.extend(tile(chunk[start : start + slab_size], axis + 1))
        return leaves

    return [leaf for leaf in tile(objects, 0) if leaf]


def external_sort_passes(data_pages: int, memory_pages: int) -> int:
    """Number of read+write passes an external merge sort needs.

    One pass creates sorted runs of ``memory_pages`` pages; each subsequent
    pass merges up to ``memory_pages - 1`` runs.  Data that fits in memory
    needs a single (read-only) pass, which we count as one.
    """
    if data_pages <= 0:
        return 0
    if memory_pages < 3:
        memory_pages = 3
    if data_pages <= memory_pages:
        return 1
    runs = math.ceil(data_pages / memory_pages)
    passes = 1
    fan_in = memory_pages - 1
    while runs > 1:
        runs = math.ceil(runs / fan_in)
        passes += 1
    return passes


def charge_external_sort(
    disk: Disk,
    data_pages: int,
    memory_pages: int,
    n_phases: int = 1,
    records: int = 0,
) -> None:
    """Charge the disk model for ``n_phases`` external sorts of the data.

    Each pass reads and writes the whole dataset sequentially.  STR performs
    one sort phase per dimension (the recursive slab sorts touch the whole
    data once per level), so the R-tree build calls this with
    ``n_phases = dimension``.  ``records`` adds the comparison CPU cost.
    """
    if data_pages <= 0:
        return
    passes = external_sort_passes(data_pages, memory_pages)
    from repro.storage.cost_model import AccessKind  # local import to avoid cycle at module load

    for _ in range(n_phases * passes):
        read_seconds = disk.model.access_time_s(AccessKind.RANDOM, data_pages)
        write_seconds = disk.model.access_time_s(AccessKind.RANDOM, data_pages)
        disk.stats.record_read(AccessKind.RANDOM, data_pages, read_seconds)
        disk.stats.record_write(AccessKind.RANDOM, data_pages, write_seconds)
    if records:
        comparisons = int(records * max(1.0, math.log2(max(records, 2))))
        disk.charge_cpu_records(comparisons * n_phases)


def leaf_mbr(objects: Sequence[SpatialObject]):
    """Minimum bounding box of a leaf's objects."""
    from repro.geometry.box import Box

    return Box.bounding([obj.box for obj in objects])


def group_consecutive(items: Sequence, group_size: int) -> list[list]:
    """Group a sequence into consecutive chunks of at most ``group_size``.

    Because STR leaves are produced in spatially coherent order, grouping
    consecutive entries is how the upper levels of the bulk-loaded tree are
    formed.
    """
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    return [list(items[start : start + group_size]) for start in range(0, len(items), group_size)]


SortKey = Callable[[SpatialObject], float]
