"""Static spatial indexing baselines used in the paper's evaluation.

Space Odyssey is compared against three static, build-everything-up-front
indexes, each wrapped in one or both of two multi-dataset strategies:

* :class:`~repro.baselines.grid.GridIndex` — a static uniform grid (the
  paper uses 60³ cells), the cheapest index to build;
* :class:`~repro.baselines.rtree.STRRTree` — a bulk-loaded R-tree packed
  with Sort-Tile-Recursive (Leutenegger et al.);
* :class:`~repro.baselines.flat.FLATIndex` — the state of the art for this
  workload (Tauheed et al., ICDE '12): STR-packed leaf pages plus a leaf
  neighbourhood graph; queries locate a seed leaf and then crawl
  neighbours, making it the most expensive to build and the fastest to
  query.

The strategies are *one-for-each* (1fE: one index per dataset, probe the
queried ones) and *all-in-one* (Ain1: one index over all objects, filter by
dataset id), implemented in :mod:`repro.baselines.strategies`.
"""

from repro.baselines.flat import FLATIndex
from repro.baselines.grid import GridIndex
from repro.baselines.interface import (
    BruteForceScan,
    MultiDatasetIndex,
    SingleCollectionIndex,
)
from repro.baselines.rtree import STRRTree
from repro.baselines.strategies import AllInOne, OneForEach

__all__ = [
    "AllInOne",
    "BruteForceScan",
    "FLATIndex",
    "GridIndex",
    "MultiDatasetIndex",
    "OneForEach",
    "STRRTree",
    "SingleCollectionIndex",
]
