"""Bulk-loaded R-tree (STR packing).

The paper's ``RTree`` baseline is a bulk-loaded R-tree built with the
Sort-Tile-Recursive algorithm (it uses libspatialindex; this is a
from-scratch reimplementation on the simulated disk).  Leaves hold object
records, internal nodes hold ``(child page, child MBR)`` entries; every node
occupies exactly one page, so a range query costs one random page read per
node visited.

Build cost = one sequential scan of the raw data + the external-sort passes
STR needs (one sort phase per dimension, charged through
:func:`repro.baselines.str_packing.charge_external_sort`) + sequential
writes of the leaf and node pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.baselines.interface import SingleCollectionIndex
from repro.baselines.str_packing import charge_external_sort, group_consecutive, str_sort_tile
from repro.data.dataset import Dataset
from repro.data.spatial_object import SpatialObject, spatial_object_codec
from repro.geometry.box import Box
from repro.storage.codec import FixedRecordCodec, records_per_page
from repro.storage.disk import Disk
from repro.storage.pagedfile import PagedFile


@dataclass(frozen=True, slots=True)
class NodeEntry:
    """One entry of an internal node: a child page reference and its MBR."""

    child_page: int
    child_is_leaf: bool
    box: Box


def node_entry_codec(dimension: int) -> FixedRecordCodec[NodeEntry]:
    """Fixed-size codec for internal-node entries (64 bytes in 3-D)."""
    fmt = "<qq" + "d" * (2 * dimension)

    def to_fields(entry: NodeEntry) -> tuple:
        return (entry.child_page, 1 if entry.child_is_leaf else 0, *entry.box.lo, *entry.box.hi)

    def from_fields(fields: tuple) -> NodeEntry:
        child_page, is_leaf = fields[0], bool(fields[1])
        coords = fields[2:]
        lo = tuple(coords[:dimension])
        hi = tuple(coords[dimension:])
        return NodeEntry(child_page=child_page, child_is_leaf=is_leaf, box=Box(lo, hi))

    return FixedRecordCodec(fmt, to_fields, from_fields)


class STRRTree(SingleCollectionIndex):
    """A paged, bulk-loaded R-tree.

    Parameters
    ----------
    disk:
        Simulated disk for the leaf and node files.
    name:
        Unique index name (used to derive file names).
    universe:
        Indexed space (only its dimensionality is needed; kept for
        symmetry with the other indexes).
    build_memory_pages:
        Memory budget, in pages, available to the external sorts during the
        bulk load; smaller budgets mean more sort passes and a slower build.
    """

    def __init__(
        self,
        disk: Disk,
        name: str,
        universe: Box,
        build_memory_pages: int = 1024,
    ) -> None:
        self._disk = disk
        self._universe = universe
        self._dimension = universe.dimension
        self._build_memory_pages = build_memory_pages
        obj_codec = spatial_object_codec(self._dimension)
        self._leaf_file: PagedFile[SpatialObject] = PagedFile(
            disk, f"rtree/{name}.leaves", obj_codec
        )
        self._node_file: PagedFile[NodeEntry] = PagedFile(
            disk, f"rtree/{name}.nodes", node_entry_codec(self._dimension)
        )
        self._leaf_capacity = records_per_page(obj_codec.record_size, disk.page_size)
        self._fanout = records_per_page(
            node_entry_codec(self._dimension).record_size, disk.page_size
        )
        self._root_page: int | None = None
        self._root_is_leaf = False
        self._height = 0
        self._n_objects = 0
        self._built = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def is_built(self) -> bool:
        """Whether the tree has been bulk loaded."""
        return self._built

    @property
    def height(self) -> int:
        """Number of levels (1 = a single leaf)."""
        return self._height

    @property
    def n_objects(self) -> int:
        """Number of indexed objects."""
        return self._n_objects

    @property
    def leaf_capacity(self) -> int:
        """Objects per leaf page."""
        return self._leaf_capacity

    @property
    def fanout(self) -> int:
        """Entries per internal node page."""
        return self._fanout

    # ------------------------------------------------------------------ #
    # Build
    # ------------------------------------------------------------------ #

    def build(self, datasets: Sequence[Dataset]) -> None:
        """Bulk load the tree from the raw files of ``datasets``."""
        if self._built:
            raise RuntimeError("R-tree is already built")
        objects: list[SpatialObject] = []
        raw_pages = 0
        for dataset in datasets:
            objects.extend(dataset.scan())
            raw_pages += dataset.size_pages()
        self._n_objects = len(objects)
        charge_external_sort(
            self._disk,
            data_pages=raw_pages,
            memory_pages=self._build_memory_pages,
            n_phases=self._dimension,
            records=len(objects),
        )
        leaves = str_sort_tile(objects, self._leaf_capacity, self._dimension)
        entries: list[NodeEntry] = []
        for leaf in leaves:
            run = self._leaf_file.append_group(leaf)
            page = run.extents[0].start
            entries.append(
                NodeEntry(
                    child_page=page,
                    child_is_leaf=True,
                    box=Box.bounding([obj.box for obj in leaf]),
                )
            )
        self._height = 1
        if not entries:
            self._root_page = None
            self._built = True
            return
        while len(entries) > 1:
            next_entries: list[NodeEntry] = []
            for group in group_consecutive(entries, self._fanout):
                run = self._node_file.append_group(group)
                page = run.extents[0].start
                next_entries.append(
                    NodeEntry(
                        child_page=page,
                        child_is_leaf=False,
                        box=Box.bounding([entry.box for entry in group]),
                    )
                )
            entries = next_entries
            self._height += 1
        root = entries[0]
        self._root_page = root.child_page
        self._root_is_leaf = root.child_is_leaf
        self._built = True

    # ------------------------------------------------------------------ #
    # Query
    # ------------------------------------------------------------------ #

    def query(self, box: Box) -> list[SpatialObject]:
        """Standard R-tree range search: descend every intersecting subtree."""
        if not self._built:
            raise RuntimeError("R-tree must be built before querying")
        if self._root_page is None:
            return []
        results: list[SpatialObject] = []
        examined = 0
        stack: list[tuple[int, bool]] = [(self._root_page, self._root_is_leaf)]
        while stack:
            page, is_leaf = stack.pop()
            if is_leaf:
                for obj in self._leaf_file.read_page_records(page):
                    examined += 1
                    if obj.intersects(box):
                        results.append(obj)
            else:
                for entry in self._node_file.read_page_records(page):
                    examined += 1
                    if entry.box.intersects(box):
                        stack.append((entry.child_page, entry.child_is_leaf))
        self._disk.charge_cpu_records(examined)
        return results

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def drop(self) -> None:
        """Delete the leaf and node files."""
        self._leaf_file.delete()
        self._node_file.delete()
        self._root_page = None
        self._built = False
        self._n_objects = 0
        self._height = 0
