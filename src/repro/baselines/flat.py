"""FLAT: the state-of-the-art baseline (Tauheed et al., ICDE '12).

FLAT ("Accelerating Range Queries For Brain Simulations") targets exactly
the paper's workload: range queries over dense neuroscience data where deep
R-tree traversals cost too many random I/Os.  Its two defining ideas are

1. the space is fully decomposed into non-overlapping *regions*, one per
   STR-packed leaf page, with precomputed *neighbourhood links* between
   touching regions; and
2. a query first locates a single *seed* region through a small seed index
   and then **crawls** the neighbourhood links, reading only leaf pages whose
   region intersects the query.

Building FLAT is the most expensive of all approaches (external STR sorts,
a second pass to compute the neighbourhood graph, writing the adjacency and
seed structures), but once built its queries touch the fewest pages — the
exact trade-off the paper's Figure 4/5 rely on.

Implementation notes
--------------------
* Regions are produced by a region-aware STR tiling
  (:func:`tile_with_regions`): they partition the universe exactly, and each
  object's *centre* lies in its leaf's region.  Correctness therefore uses
  the same query-window-extension argument as the Grid and Space Odyssey:
  crawling every region that intersects the query extended by the maximum
  object extent visits every leaf that can contain a matching object.
* Because regions tile the space, the set of regions intersecting any box is
  face-connected, so a breadth-first crawl from the seed cannot miss any of
  them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.baselines.interface import SingleCollectionIndex
from repro.baselines.rtree import NodeEntry, node_entry_codec
from repro.baselines.str_packing import charge_external_sort, group_consecutive
from repro.data.dataset import Dataset
from repro.data.spatial_object import SpatialObject, spatial_object_codec
from repro.geometry.box import Box
from repro.storage.codec import FixedRecordCodec, records_per_page
from repro.storage.disk import Disk
from repro.storage.pagedfile import PagedFile


# --------------------------------------------------------------------------- #
# Region-aware STR tiling
# --------------------------------------------------------------------------- #


def tile_with_regions(
    objects: Sequence[SpatialObject],
    leaf_capacity: int,
    universe: Box,
) -> list[tuple[list[SpatialObject], Box]]:
    """STR-tile ``objects`` and compute a covering region per leaf.

    The regions partition ``universe`` exactly (no gaps, no overlaps except
    shared faces) and every object's centre lies inside its leaf's region.
    Splits are placed halfway between the bordering objects' centres.
    """
    if leaf_capacity < 1:
        raise ValueError("leaf_capacity must be >= 1")
    objects = list(objects)
    if not objects:
        return [([], universe)]
    dimension = universe.dimension

    def tile(chunk: list[SpatialObject], axis: int, region: Box) -> Iterator[tuple[list[SpatialObject], Box]]:
        remaining_dims = dimension - axis
        if len(chunk) <= leaf_capacity or remaining_dims == 0:
            yield chunk, region
            return
        chunk.sort(key=lambda obj: obj.center[axis])
        n_leaves = -(-len(chunk) // leaf_capacity)
        if axis == dimension - 1:
            slabs = n_leaves
        else:
            slabs = max(1, round(n_leaves ** (1.0 / remaining_dims)))
        slab_size = -(-len(chunk) // slabs)
        pieces: list[list[SpatialObject]] = [
            chunk[start : start + slab_size] for start in range(0, len(chunk), slab_size)
        ]
        pieces = [piece for piece in pieces if piece]
        # Region boundaries along this axis: midpoints between the last
        # centre of one slab and the first centre of the next.
        cuts: list[float] = [region.lo[axis]]
        for left, right in zip(pieces, pieces[1:]):
            boundary = (left[-1].center[axis] + right[0].center[axis]) / 2.0
            boundary = min(max(boundary, region.lo[axis]), region.hi[axis])
            boundary = max(boundary, cuts[-1])
            cuts.append(boundary)
        cuts.append(region.hi[axis])
        for index, piece in enumerate(pieces):
            lo = list(region.lo)
            hi = list(region.hi)
            lo[axis] = cuts[index]
            hi[axis] = cuts[index + 1]
            sub_region = Box(tuple(lo), tuple(hi))
            if axis == dimension - 1:
                yield piece, sub_region
            else:
                yield from tile(piece, axis + 1, sub_region)

    return list(tile(objects, 0, universe))


# --------------------------------------------------------------------------- #
# Adjacency records
# --------------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class AdjacencyRecord:
    """One directed neighbourhood link between two leaf regions."""

    leaf: int
    neighbor: int


def adjacency_codec() -> FixedRecordCodec[AdjacencyRecord]:
    """Codec for neighbourhood links (16 bytes per link)."""
    return FixedRecordCodec(
        "<qq",
        lambda rec: (rec.leaf, rec.neighbor),
        lambda fields: AdjacencyRecord(leaf=fields[0], neighbor=fields[1]),
    )


def compute_region_adjacency(regions: Sequence[Box], bins_per_dim: int = 16) -> dict[int, set[int]]:
    """Neighbour sets of touching regions, computed with coarse-grid binning.

    Two regions are neighbours when their closed boxes intersect (they share
    at least a face, edge or corner).  Binning keeps the pair comparisons
    local instead of quadratic in the number of leaves.
    """
    if not regions:
        return {}
    universe = Box.bounding(regions)
    buckets: dict[int, list[int]] = {}
    for index, region in enumerate(regions):
        for cell in universe.grid_cells_overlapping(region, bins_per_dim):
            buckets.setdefault(cell, []).append(index)
    adjacency: dict[int, set[int]] = {index: set() for index in range(len(regions))}
    for members in buckets.values():
        for position, left in enumerate(members):
            for right in members[position + 1 :]:
                if left == right or right in adjacency[left]:
                    continue
                if regions[left].intersects(regions[right]):
                    adjacency[left].add(right)
                    adjacency[right].add(left)
    return adjacency


# --------------------------------------------------------------------------- #
# The index
# --------------------------------------------------------------------------- #


class FLATIndex(SingleCollectionIndex):
    """FLAT: STR-packed leaves + region neighbourhood links + a seed index.

    Parameters
    ----------
    disk, name, universe:
        As for the other indexes.
    build_memory_pages:
        Memory budget for the external sorts during the bulk load.
    """

    def __init__(
        self,
        disk: Disk,
        name: str,
        universe: Box,
        build_memory_pages: int = 1024,
    ) -> None:
        self._disk = disk
        self._universe = universe
        self._dimension = universe.dimension
        self._build_memory_pages = build_memory_pages
        obj_codec = spatial_object_codec(self._dimension)
        self._leaf_file: PagedFile[SpatialObject] = PagedFile(
            disk, f"flat/{name}.leaves", obj_codec
        )
        self._adj_file: PagedFile[AdjacencyRecord] = PagedFile(
            disk, f"flat/{name}.adjacency", adjacency_codec()
        )
        self._seed_file: PagedFile[NodeEntry] = PagedFile(
            disk, f"flat/{name}.seeds", node_entry_codec(self._dimension)
        )
        self._leaf_capacity = records_per_page(obj_codec.record_size, disk.page_size)
        self._fanout = records_per_page(
            node_entry_codec(self._dimension).record_size, disk.page_size
        )
        self._regions: list[Box] = []
        self._leaf_pages: list[int] = []
        self._adjacency: dict[int, set[int]] = {}
        self._max_extent: tuple[float, ...] = (0.0,) * self._dimension
        self._root_page: int | None = None
        self._root_is_leaf_level = False
        self._n_objects = 0
        self._built = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def is_built(self) -> bool:
        """Whether the index has been built."""
        return self._built

    @property
    def n_objects(self) -> int:
        """Number of indexed objects."""
        return self._n_objects

    @property
    def n_leaves(self) -> int:
        """Number of leaf pages / regions."""
        return len(self._leaf_pages)

    @property
    def max_extent(self) -> tuple[float, ...]:
        """Maximum object extent per dimension."""
        return self._max_extent

    @property
    def regions(self) -> list[Box]:
        """The space-covering regions (one per leaf), in leaf order."""
        return list(self._regions)

    @property
    def adjacency(self) -> dict[int, set[int]]:
        """Neighbourhood links between regions (leaf index -> neighbour set)."""
        return {leaf: set(neighbors) for leaf, neighbors in self._adjacency.items()}

    # ------------------------------------------------------------------ #
    # Build
    # ------------------------------------------------------------------ #

    def build(self, datasets: Sequence[Dataset]) -> None:
        """Bulk load FLAT: pack leaves, compute neighbourhoods, build seeds."""
        if self._built:
            raise RuntimeError("FLAT is already built")
        objects: list[SpatialObject] = []
        raw_pages = 0
        for dataset in datasets:
            objects.extend(dataset.scan())
            raw_pages += dataset.size_pages()
        self._n_objects = len(objects)
        max_extent = [0.0] * self._dimension
        for obj in objects:
            for axis, extent in enumerate(obj.box.extents):
                if extent > max_extent[axis]:
                    max_extent[axis] = extent
        self._max_extent = tuple(max_extent)
        # Phase 1: external STR sort + leaf packing (same cost as the R-tree).
        charge_external_sort(
            self._disk,
            data_pages=raw_pages,
            memory_pages=self._build_memory_pages,
            n_phases=self._dimension,
            records=len(objects),
        )
        tiles = tile_with_regions(objects, self._leaf_capacity, self._universe)
        self._regions = [region for _, region in tiles]
        for leaf_objects, _ in tiles:
            run = self._leaf_file.append_group(leaf_objects)
            if run.extents:
                self._leaf_pages.append(run.extents[0].start)
            else:
                # Empty leaf (only possible for an empty collection): mark it
                # with a sentinel so region/page lists stay aligned without
                # ever reading a non-existent page.
                self._leaf_pages.append(-1)
        # Phase 2: neighbourhood computation.  FLAT re-reads the packed
        # leaves to derive the region graph and writes the adjacency pages.
        for page in self._leaf_pages:
            if page >= 0:
                self._leaf_file.read_page_records(page)
        self._adjacency = compute_region_adjacency(self._regions)
        links = [
            AdjacencyRecord(leaf=leaf, neighbor=neighbor)
            for leaf, neighbors in self._adjacency.items()
            for neighbor in sorted(neighbors)
        ]
        pair_checks = sum(len(n) for n in self._adjacency.values()) + len(self._regions)
        self._disk.charge_cpu_records(pair_checks * 4)
        if links:
            self._adj_file.append_group(links)
        # Phase 3: the seed index — a small STR-style tree over the regions.
        entries = [
            NodeEntry(child_page=page, child_is_leaf=True, box=region)
            for page, region in zip(self._leaf_pages, self._regions)
        ]
        if not entries:
            self._root_page = None
            self._built = True
            return
        while len(entries) > 1:
            next_entries: list[NodeEntry] = []
            for group in group_consecutive(entries, self._fanout):
                run = self._seed_file.append_group(group)
                page = run.extents[0].start
                next_entries.append(
                    NodeEntry(
                        child_page=page,
                        child_is_leaf=False,
                        box=Box.bounding([entry.box for entry in group]),
                    )
                )
            entries = next_entries
        root = entries[0]
        self._root_page = root.child_page
        self._root_is_leaf_level = root.child_is_leaf
        self._built = True

    # ------------------------------------------------------------------ #
    # Query
    # ------------------------------------------------------------------ #

    def query(self, box: Box) -> list[SpatialObject]:
        """Seed-and-crawl range search."""
        if not self._built:
            raise RuntimeError("FLAT must be built before querying")
        if self._root_page is None or not self._regions:
            return []
        extended = box.expand(self._max_extent).clamp(self._universe)
        seed = self._find_seed(extended)
        if seed is None:
            return []
        results: list[SpatialObject] = []
        examined = 0
        visited: set[int] = set()
        frontier: deque[int] = deque([seed])
        visited.add(seed)
        while frontier:
            leaf = frontier.popleft()
            leaf_page = self._leaf_pages[leaf]
            leaf_objects = (
                self._leaf_file.read_page_records(leaf_page) if leaf_page >= 0 else []
            )
            for obj in leaf_objects:
                examined += 1
                if obj.intersects(box):
                    results.append(obj)
            for neighbor in self._adjacency.get(leaf, ()):  # crawl the links
                if neighbor in visited:
                    continue
                examined += 1
                if self._regions[neighbor].intersects(extended):
                    visited.add(neighbor)
                    frontier.append(neighbor)
        self._disk.charge_cpu_records(examined)
        return results

    def _find_seed(self, extended: Box) -> int | None:
        """Locate one region intersecting the extended query via the seed tree."""
        if self._root_is_leaf_level:
            # A single leaf: the root entry points directly at it.
            return 0 if self._regions[0].intersects(extended) else None
        page_to_leaf = {page: index for index, page in enumerate(self._leaf_pages)}
        stack: list[int] = [self._root_page]
        while stack:
            page = stack.pop()
            for entry in self._seed_file.read_page_records(page):
                if not entry.box.intersects(extended):
                    continue
                if entry.child_is_leaf:
                    return page_to_leaf[entry.child_page]
                stack.append(entry.child_page)
        return None

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def drop(self) -> None:
        """Delete all on-disk structures."""
        self._leaf_file.delete()
        self._adj_file.delete()
        self._seed_file.delete()
        self._regions = []
        self._leaf_pages = []
        self._adjacency = {}
        self._root_page = None
        self._built = False
        self._n_objects = 0
