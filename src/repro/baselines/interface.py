"""Index interfaces shared by every approach in the evaluation.

Two levels of abstraction are used:

* :class:`SingleCollectionIndex` — a spatial index over one *collection* of
  objects (one dataset, or — for the all-in-one strategy — the union of
  several datasets).  It is built once from raw files and then answers
  plain range queries.
* :class:`MultiDatasetIndex` — the approach-level interface the benchmark
  harness talks to.  It answers the paper's queries
  ``Q = {A; DS_1, ..., DS_N}``: a range ``A`` evaluated over a requested
  subset of datasets.  Space Odyssey, the 1fE/Ain1 strategy wrappers and
  the brute-force oracle all implement it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Sequence

from repro.data.dataset import Dataset, DatasetCatalog
from repro.data.spatial_object import SpatialObject
from repro.geometry.box import Box


class SingleCollectionIndex(ABC):
    """A static spatial index over one collection of objects."""

    @abstractmethod
    def build(self, datasets: Sequence[Dataset]) -> None:
        """Read the raw files of ``datasets`` and build the index on disk."""

    @abstractmethod
    def query(self, box: Box) -> list[SpatialObject]:
        """Return every indexed object whose MBR intersects ``box``."""

    @property
    @abstractmethod
    def is_built(self) -> bool:
        """Whether :meth:`build` has completed."""

    def drop(self) -> None:
        """Remove any on-disk structures the index created (optional)."""


class MultiDatasetIndex(ABC):
    """An approach that answers range queries over subsets of datasets."""

    #: Human-readable approach name used in reports (e.g. ``"FLAT-Ain1"``).
    name: str = "abstract"

    @abstractmethod
    def build(self) -> None:
        """Perform all up-front work (may be a no-op for adaptive approaches)."""

    @abstractmethod
    def query(self, box: Box, dataset_ids: Iterable[int]) -> list[SpatialObject]:
        """Objects from the requested datasets whose MBRs intersect ``box``."""

    @property
    @abstractmethod
    def is_built(self) -> bool:
        """Whether the up-front build (if any) has completed."""


class BruteForceScan(MultiDatasetIndex):
    """The correctness oracle: scan the raw file of every queried dataset.

    It builds nothing and pays a full sequential scan of each requested
    dataset per query.  Tests compare every other approach against it.
    """

    name = "BruteForce"

    def __init__(self, catalog: DatasetCatalog) -> None:
        self._catalog = catalog

    def build(self) -> None:
        """Nothing to build."""

    @property
    def is_built(self) -> bool:
        """Always true: there is no build phase."""
        return True

    def query(self, box: Box, dataset_ids: Iterable[int]) -> list[SpatialObject]:
        """Scan each requested dataset and keep intersecting objects."""
        results: list[SpatialObject] = []
        for dataset_id in dataset_ids:
            dataset = self._catalog.get(dataset_id)
            results.extend(dataset.range_query_scan(box))
        return results


def result_keys(objects: Iterable[SpatialObject]) -> set[tuple[int, int]]:
    """The set of ``(dataset_id, oid)`` identities of a query answer.

    Query answers are sets of objects; different approaches return them in
    different orders and this helper makes answers comparable.
    """
    return {obj.key() for obj in objects}
