"""Multi-dataset strategies: one-for-each (1fE) and all-in-one (Ain1).

The static baselines index a single collection of objects; the paper
evaluates two ways of using them when there are many datasets:

* **1fE** builds one index per dataset.  A query probes only the indexes of
  the datasets it requests and unions the answers — cheap when few datasets
  are queried, increasingly expensive as more are.
* **Ain1** builds a single index over the union of all datasets.  A query
  probes that one (large) structure and filters out objects belonging to
  datasets that were not requested — insensitive to how many datasets are
  queried, but always pays for the full structure.

Space Odyssey is described by the paper as a hybrid of the two: per-dataset
adaptive indexes (like 1fE) plus merged hot areas (like Ain1).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.baselines.interface import MultiDatasetIndex, SingleCollectionIndex
from repro.data.dataset import DatasetCatalog
from repro.data.spatial_object import SpatialObject
from repro.geometry.box import Box

#: Builds a fresh single-collection index with a unique name.
IndexFactory = Callable[[str], SingleCollectionIndex]


class OneForEach(MultiDatasetIndex):
    """One index per dataset; probe only the indexes of the queried datasets."""

    def __init__(
        self,
        catalog: DatasetCatalog,
        index_factory: IndexFactory,
        name: str = "1fE",
    ) -> None:
        self._catalog = catalog
        self._factory = index_factory
        self.name = name
        self._indexes: dict[int, SingleCollectionIndex] = {}
        self._built = False

    @property
    def is_built(self) -> bool:
        """Whether every per-dataset index has been built."""
        return self._built

    @property
    def indexes(self) -> dict[int, SingleCollectionIndex]:
        """The per-dataset indexes, keyed by dataset id."""
        return dict(self._indexes)

    def build(self) -> None:
        """Build one index over each dataset's raw file."""
        if self._built:
            raise RuntimeError(f"{self.name} is already built")
        for dataset in self._catalog:
            index = self._factory(f"{self.name}_{dataset.name}")
            index.build([dataset])
            self._indexes[dataset.dataset_id] = index
        self._built = True

    def query(self, box: Box, dataset_ids: Iterable[int]) -> list[SpatialObject]:
        """Probe the index of every requested dataset and union the answers."""
        if not self._built:
            raise RuntimeError(f"{self.name} must be built before querying")
        results: list[SpatialObject] = []
        for dataset_id in dataset_ids:
            self._catalog.get(dataset_id)  # validate the id
            results.extend(self._indexes[dataset_id].query(box))
        return results

    def drop(self) -> None:
        """Drop every per-dataset index."""
        for index in self._indexes.values():
            index.drop()
        self._indexes.clear()
        self._built = False


class AllInOne(MultiDatasetIndex):
    """A single index over all datasets; filter answers by dataset id."""

    def __init__(
        self,
        catalog: DatasetCatalog,
        index_factory: IndexFactory,
        name: str = "Ain1",
    ) -> None:
        self._catalog = catalog
        self._factory = index_factory
        self.name = name
        self._index: SingleCollectionIndex | None = None
        self._built = False

    @property
    def is_built(self) -> bool:
        """Whether the combined index has been built."""
        return self._built

    @property
    def index(self) -> SingleCollectionIndex | None:
        """The underlying combined index (``None`` before :meth:`build`)."""
        return self._index

    def build(self) -> None:
        """Build one index over the union of every dataset's objects."""
        if self._built:
            raise RuntimeError(f"{self.name} is already built")
        self._index = self._factory(f"{self.name}_all")
        self._index.build(self._catalog.datasets())
        self._built = True

    def query(self, box: Box, dataset_ids: Iterable[int]) -> list[SpatialObject]:
        """Probe the combined index and filter out non-requested datasets."""
        if not self._built or self._index is None:
            raise RuntimeError(f"{self.name} must be built before querying")
        requested = set(dataset_ids)
        for dataset_id in requested:
            self._catalog.get(dataset_id)  # validate the id
        return [obj for obj in self._index.query(box) if obj.dataset_id in requested]

    def drop(self) -> None:
        """Drop the combined index."""
        if self._index is not None:
            self._index.drop()
        self._index = None
        self._built = False
