"""Static uniform grid index.

The paper's ``Grid`` baseline partitions the indexed space into a fixed
number of uniform cells (60³ in the paper, chosen by a parameter sweep).
Objects are assigned to exactly one cell by their centre; to stay correct
without replication the index keeps the maximum object extent per dimension
and extends every query window by it (query-window extension, the same
technique Space Odyssey uses).

Build behaviour follows the paper: objects are assigned to cells in memory
and flushed to disk whenever the memory buffer fills up, so a cell may end
up scattered over several page runs (the price of a bounded build memory
budget).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Sequence

from repro.baselines.interface import SingleCollectionIndex
from repro.data.dataset import Dataset
from repro.data.spatial_object import SpatialObject, spatial_object_codec
from repro.geometry.box import Box
from repro.storage.disk import Disk
from repro.storage.pagedfile import PagedFile, StoredRun


@dataclass
class _CellState:
    """Where one grid cell's objects live on disk."""

    runs: list[StoredRun] = field(default_factory=list)
    n_objects: int = 0


class GridIndex(SingleCollectionIndex):
    """A static uniform grid over the universe.

    Parameters
    ----------
    disk:
        The simulated disk to store cell data on.
    name:
        Unique name for this index's file (several grids can coexist, e.g.
        one per dataset under the 1fE strategy).
    universe:
        The space to partition.
    cells_per_dim:
        Number of cells along each dimension (an int applies to all
        dimensions).  The paper uses 60 for its full-scale datasets; the
        scaled-down experiment presets use proportionally fewer cells.
    build_buffer_objects:
        How many objects may be buffered in memory before cells are flushed
        to disk, modelling the bounded memory budget of the paper's setup.
    """

    def __init__(
        self,
        disk: Disk,
        name: str,
        universe: Box,
        cells_per_dim: int | Sequence[int] = 16,
        build_buffer_objects: int = 100_000,
    ) -> None:
        if build_buffer_objects < 1:
            raise ValueError("build_buffer_objects must be >= 1")
        self._disk = disk
        self._universe = universe
        self._cells_per_dim = (
            (cells_per_dim,) * universe.dimension
            if isinstance(cells_per_dim, int)
            else tuple(int(c) for c in cells_per_dim)
        )
        if len(self._cells_per_dim) != universe.dimension:
            raise ValueError("cells_per_dim dimensionality mismatch")
        if any(c < 1 for c in self._cells_per_dim):
            raise ValueError("cells_per_dim entries must be >= 1")
        self._build_buffer_objects = build_buffer_objects
        codec = spatial_object_codec(universe.dimension)
        self._file: PagedFile[SpatialObject] = PagedFile(disk, f"grid/{name}.cells", codec)
        self._cells: dict[int, _CellState] = {}
        self._max_extent: tuple[float, ...] = (0.0,) * universe.dimension
        self._built = False
        self._n_objects = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def is_built(self) -> bool:
        """Whether the grid has been built."""
        return self._built

    @property
    def universe(self) -> Box:
        """The indexed space."""
        return self._universe

    @property
    def cells_per_dim(self) -> tuple[int, ...]:
        """Grid resolution per dimension."""
        return self._cells_per_dim

    @property
    def n_cells(self) -> int:
        """Total number of grid cells."""
        total = 1
        for count in self._cells_per_dim:
            total *= count
        return total

    @property
    def n_objects(self) -> int:
        """Number of indexed objects."""
        return self._n_objects

    @property
    def max_extent(self) -> tuple[float, ...]:
        """Maximum object extent per dimension (query-window extension)."""
        return self._max_extent

    def occupied_cells(self) -> int:
        """Number of cells that contain at least one object."""
        return len(self._cells)

    # ------------------------------------------------------------------ #
    # Build
    # ------------------------------------------------------------------ #

    def build(self, datasets: Sequence[Dataset]) -> None:
        """Scan the raw files once and assign every object to its cell.

        Cells are buffered in memory and flushed (appended to the cell
        file) whenever ``build_buffer_objects`` objects are pending, so the
        build makes a single sequential pass over the input and mostly
        sequential writes to the output.
        """
        if self._built:
            raise RuntimeError("grid is already built")
        buffer: dict[int, list[SpatialObject]] = defaultdict(list)
        buffered = 0
        max_extent = [0.0] * self._universe.dimension
        for dataset in datasets:
            for obj in dataset.scan():
                cell = self._universe.child_index(obj.center, self._cells_per_dim)
                buffer[cell].append(obj)
                buffered += 1
                self._n_objects += 1
                for axis, extent in enumerate(obj.box.extents):
                    if extent > max_extent[axis]:
                        max_extent[axis] = extent
                if buffered >= self._build_buffer_objects:
                    self._flush(buffer)
                    buffer = defaultdict(list)
                    buffered = 0
        if buffered:
            self._flush(buffer)
        self._disk.charge_cpu_records(self._n_objects)
        self._max_extent = tuple(max_extent)
        self._built = True

    def _flush(self, buffer: dict[int, list[SpatialObject]]) -> None:
        for cell in sorted(buffer):
            run = self._file.append_group(buffer[cell])
            state = self._cells.setdefault(cell, _CellState())
            state.runs.append(run)
            state.n_objects += run.n_records

    # ------------------------------------------------------------------ #
    # Query
    # ------------------------------------------------------------------ #

    def query(self, box: Box) -> list[SpatialObject]:
        """Read every cell the extended query overlaps and filter exactly."""
        if not self._built:
            raise RuntimeError("grid must be built before querying")
        extended = box.expand(self._max_extent).clamp(self._universe)
        results: list[SpatialObject] = []
        examined = 0
        for cell in self._universe.grid_cells_overlapping(extended, self._cells_per_dim):
            state = self._cells.get(cell)
            if state is None:
                continue
            for run in state.runs:
                for obj in self._file.read_group(run):
                    examined += 1
                    if obj.intersects(box):
                        results.append(obj)
        self._disk.charge_cpu_records(examined)
        return results

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def drop(self) -> None:
        """Delete the cell file and reset the directory."""
        self._file.delete()
        self._cells.clear()
        self._built = False
        self._n_objects = 0
