"""Geometric primitives used throughout the library.

All spatial reasoning in the reproduction is expressed with axis-aligned
d-dimensional boxes (:class:`~repro.geometry.box.Box`).  Neuroscience meshes,
queries, index partitions and tree nodes are all represented (or
approximated, in the case of meshes) by such boxes, exactly as in the
original Space Odyssey prototype where every object carries its minimum
bounding rectangle.
"""

from repro.geometry.box import Box
from repro.geometry.random_boxes import (
    random_box_with_volume,
    random_point_in_box,
    sample_boxes,
)
from repro.geometry.vectorized import (
    box_to_arrays,
    boxes_to_arrays,
    grid_child_indices,
    intersect_mask,
    intersect_matrix,
)

__all__ = [
    "Box",
    "box_to_arrays",
    "boxes_to_arrays",
    "grid_child_indices",
    "intersect_mask",
    "intersect_matrix",
    "random_box_with_volume",
    "random_point_in_box",
    "sample_boxes",
]
