"""Random sampling helpers for boxes and points.

These are shared by the synthetic dataset generators (`repro.data.generator`)
and the workload range generators (`repro.workload.ranges`).  All sampling is
driven by a caller-supplied :class:`numpy.random.Generator` so that datasets
and workloads are fully reproducible from a seed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.box import Box


def random_point_in_box(rng: np.random.Generator, box: Box) -> tuple[float, ...]:
    """A point drawn uniformly at random from ``box``."""
    coords = rng.uniform(low=box.lo, high=box.hi)
    return tuple(float(c) for c in coords)


def random_box_with_volume(
    rng: np.random.Generator,
    universe: Box,
    volume_fraction: float,
    *,
    center: Sequence[float] | None = None,
    aspect_jitter: float = 0.0,
) -> Box:
    """A box of (approximately) fixed volume placed inside ``universe``.

    The box is a hyper-cube whose volume is ``volume_fraction`` of the
    universe volume, optionally perturbed per dimension by
    ``aspect_jitter`` (a relative factor drawn from ``U(1-j, 1+j)``).  This
    mirrors the paper's query generator which uses a fixed query volume
    (``qvol``) of 10^-4 % of the queried brain volume.

    The resulting box is clamped so it never exceeds the universe.
    """
    if not 0.0 < volume_fraction <= 1.0:
        raise ValueError("volume_fraction must be in (0, 1]")
    dim = universe.dimension
    target_volume = universe.volume() * volume_fraction
    side = target_volume ** (1.0 / dim)
    sides = np.full(dim, side)
    if aspect_jitter > 0.0:
        factors = rng.uniform(1.0 - aspect_jitter, 1.0 + aspect_jitter, size=dim)
        # Renormalise so the volume stays (close to) the target.
        factors /= np.prod(factors) ** (1.0 / dim)
        sides = sides * factors
    if center is None:
        center = random_point_in_box(rng, universe)
    box = Box.from_center(tuple(float(c) for c in center), tuple(float(s) for s in sides))
    return box.clamp(universe)


def sample_boxes(
    rng: np.random.Generator,
    universe: Box,
    count: int,
    *,
    mean_extent_fraction: float = 0.001,
    extent_jitter: float = 0.5,
) -> list[Box]:
    """Sample ``count`` small object boxes uniformly inside ``universe``.

    Used by the uniform dataset generator and by the property-based tests.
    Each box's side per dimension is ``mean_extent_fraction`` of the
    universe side, jittered by ``extent_jitter`` relative spread.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    boxes: list[Box] = []
    universe_extents = np.asarray(universe.extents)
    for _ in range(count):
        center = np.asarray(random_point_in_box(rng, universe))
        spread = rng.uniform(1.0 - extent_jitter, 1.0 + extent_jitter, size=universe.dimension)
        extents = universe_extents * mean_extent_fraction * spread
        box = Box.from_center(tuple(center), tuple(float(e) for e in extents))
        boxes.append(box.clamp(universe))
    return boxes
