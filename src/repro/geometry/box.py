"""Axis-aligned d-dimensional boxes.

:class:`Box` is the single geometric primitive used by the whole library:
spatial objects carry a box as their minimum bounding rectangle, range
queries are boxes, and the space-oriented partitions of Space Odyssey's
incremental index are boxes produced by regular grid splits of their parent.

Boxes are immutable value objects so they can be shared freely between the
index structures, the statistics collector and the merge directory without
defensive copying.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True, slots=True)
class Box:
    """An axis-aligned box ``[lo[i], hi[i]]`` in each dimension ``i``.

    The box is closed on both sides; two boxes that merely touch are
    considered intersecting, mirroring the behaviour of the C++ prototype
    (objects lying exactly on a partition boundary must not be lost).

    Parameters
    ----------
    lo:
        Lower corner, one coordinate per dimension.
    hi:
        Upper corner; ``hi[i] >= lo[i]`` must hold for every dimension.
    """

    lo: tuple[float, ...]
    hi: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ValueError(
                f"corner dimensionality mismatch: lo has {len(self.lo)} "
                f"coordinates, hi has {len(self.hi)}"
            )
        if not self.lo:
            raise ValueError("a box must have at least one dimension")
        for axis, (low, high) in enumerate(zip(self.lo, self.hi)):
            if math.isnan(low) or math.isnan(high):
                raise ValueError(f"NaN coordinate on axis {axis}")
            if high < low:
                raise ValueError(
                    f"inverted box on axis {axis}: lo={low} > hi={high}"
                )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_corners(cls, lo: Sequence[float], hi: Sequence[float]) -> "Box":
        """Build a box from two corner sequences (lists, arrays, tuples)."""
        return cls(tuple(float(c) for c in lo), tuple(float(c) for c in hi))

    @classmethod
    def from_center(cls, center: Sequence[float], extents: Sequence[float]) -> "Box":
        """Build a box from its centre and full side lengths per dimension."""
        if len(center) != len(extents):
            raise ValueError("center and extents must have the same dimensionality")
        lo = tuple(float(c) - float(e) / 2.0 for c, e in zip(center, extents))
        hi = tuple(float(c) + float(e) / 2.0 for c, e in zip(center, extents))
        return cls(lo, hi)

    @classmethod
    def cube(cls, center: Sequence[float], side: float) -> "Box":
        """A hyper-cube of side ``side`` centred at ``center``."""
        return cls.from_center(center, [side] * len(center))

    @classmethod
    def unit(cls, dimension: int) -> "Box":
        """The unit hyper-cube ``[0, 1]^dimension``."""
        if dimension < 1:
            raise ValueError("dimension must be >= 1")
        return cls((0.0,) * dimension, (1.0,) * dimension)

    @classmethod
    def bounding(cls, boxes: Iterable["Box"]) -> "Box":
        """The minimum bounding box of a non-empty collection of boxes."""
        boxes = list(boxes)
        if not boxes:
            raise ValueError("cannot compute the bounding box of nothing")
        dim = boxes[0].dimension
        lo = [math.inf] * dim
        hi = [-math.inf] * dim
        for box in boxes:
            if box.dimension != dim:
                raise ValueError("cannot bound boxes of mixed dimensionality")
            for axis in range(dim):
                lo[axis] = min(lo[axis], box.lo[axis])
                hi[axis] = max(hi[axis], box.hi[axis])
        return cls(tuple(lo), tuple(hi))

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #

    @property
    def dimension(self) -> int:
        """Number of dimensions."""
        return len(self.lo)

    @property
    def center(self) -> tuple[float, ...]:
        """Geometric centre of the box."""
        return tuple((low + high) / 2.0 for low, high in zip(self.lo, self.hi))

    @property
    def extents(self) -> tuple[float, ...]:
        """Side length per dimension."""
        return tuple(high - low for low, high in zip(self.lo, self.hi))

    def side(self, axis: int) -> float:
        """Side length along one axis."""
        return self.hi[axis] - self.lo[axis]

    def volume(self) -> float:
        """d-dimensional volume (area for d = 2)."""
        return math.prod(self.extents)

    def is_degenerate(self) -> bool:
        """True when at least one side has zero length."""
        return any(high == low for low, high in zip(self.lo, self.hi))

    # ------------------------------------------------------------------ #
    # Predicates
    # ------------------------------------------------------------------ #

    def intersects(self, other: "Box") -> bool:
        """True when the two (closed) boxes share at least one point."""
        self._check_dimension(other)
        return all(
            s_lo <= o_hi and o_lo <= s_hi
            for s_lo, s_hi, o_lo, o_hi in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def contains_point(self, point: Sequence[float]) -> bool:
        """True when ``point`` lies inside the (closed) box."""
        if len(point) != self.dimension:
            raise ValueError("point dimensionality mismatch")
        return all(
            low <= coord <= high
            for low, high, coord in zip(self.lo, self.hi, point)
        )

    def contains_box(self, other: "Box") -> bool:
        """True when ``other`` lies fully inside this box."""
        self._check_dimension(other)
        return all(
            s_lo <= o_lo and o_hi <= s_hi
            for s_lo, s_hi, o_lo, o_hi in zip(self.lo, self.hi, other.lo, other.hi)
        )

    # ------------------------------------------------------------------ #
    # Derived boxes
    # ------------------------------------------------------------------ #

    def intersection(self, other: "Box") -> "Box | None":
        """The overlapping region of two boxes, or ``None`` if disjoint."""
        self._check_dimension(other)
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        if any(low > high for low, high in zip(lo, hi)):
            return None
        return Box(lo, hi)

    def union(self, other: "Box") -> "Box":
        """The minimum bounding box of the two boxes."""
        self._check_dimension(other)
        lo = tuple(min(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(max(a, b) for a, b in zip(self.hi, other.hi))
        return Box(lo, hi)

    def expand(self, amounts: Sequence[float] | float) -> "Box":
        """Grow the box by ``amounts`` on *each side* of every dimension.

        This is the *query-window extension* operation from Stefanakis et
        al. used by both Space Odyssey and the Grid baseline: queries are
        extended by the maximum object extent so that objects assigned to a
        partition by their centre are never missed.
        """
        if isinstance(amounts, (int, float)):
            amounts = [float(amounts)] * self.dimension
        if len(amounts) != self.dimension:
            raise ValueError("expansion amounts dimensionality mismatch")
        if any(a < 0 for a in amounts):
            raise ValueError("expansion amounts must be non-negative")
        lo = tuple(low - a for low, a in zip(self.lo, amounts))
        hi = tuple(high + a for high, a in zip(self.hi, amounts))
        return Box(lo, hi)

    def clamp(self, universe: "Box") -> "Box":
        """Clip this box to lie within ``universe``.

        Used when extended query windows spill over the dataset universe.
        The result keeps at least a degenerate slab on the universe
        boundary so it remains a valid box.
        """
        self._check_dimension(universe)
        lo = tuple(
            min(max(low, u_lo), u_hi)
            for low, u_lo, u_hi in zip(self.lo, universe.lo, universe.hi)
        )
        hi = tuple(
            max(min(high, u_hi), u_lo)
            for high, u_lo, u_hi in zip(self.hi, universe.lo, universe.hi)
        )
        return Box(lo, hi)

    def translate(self, offsets: Sequence[float]) -> "Box":
        """Shift the box by ``offsets``."""
        if len(offsets) != self.dimension:
            raise ValueError("offset dimensionality mismatch")
        lo = tuple(low + off for low, off in zip(self.lo, offsets))
        hi = tuple(high + off for high, off in zip(self.hi, offsets))
        return Box(lo, hi)

    # ------------------------------------------------------------------ #
    # Space-oriented splitting
    # ------------------------------------------------------------------ #

    def split_grid(self, cells_per_dim: Sequence[int] | int) -> list["Box"]:
        """Split the box into a regular grid of child boxes.

        The children are returned in row-major order of their integer grid
        coordinates; :meth:`child_index` maps a point to the index of the
        child containing it, which the partition trees use for cheap
        centre-based object assignment.
        """
        counts = self._normalize_counts(cells_per_dim)
        children: list[Box] = []
        for coords in itertools.product(*(range(c) for c in counts)):
            lo = []
            hi = []
            for axis, cell in enumerate(coords):
                step = self.side(axis) / counts[axis]
                lo.append(self.lo[axis] + cell * step)
                hi.append(self.lo[axis] + (cell + 1) * step)
            # Snap the last cell to the exact upper bound so floating point
            # error can never leave a sliver of space uncovered.
            for axis, cell in enumerate(coords):
                if cell == counts[axis] - 1:
                    hi[axis] = self.hi[axis]
            children.append(Box(tuple(lo), tuple(hi)))
        return children

    def child_index(self, point: Sequence[float], cells_per_dim: Sequence[int] | int) -> int:
        """Row-major index of the grid child (see :meth:`split_grid`) containing ``point``."""
        counts = self._normalize_counts(cells_per_dim)
        if len(point) != self.dimension:
            raise ValueError("point dimensionality mismatch")
        index = 0
        for axis, coord in enumerate(point):
            side = self.side(axis)
            if side == 0:
                cell = 0
            else:
                offset = (coord - self.lo[axis]) / side
                cell = int(offset * counts[axis])
                cell = min(max(cell, 0), counts[axis] - 1)
            index = index * counts[axis] + cell
        return index

    def grid_cells_overlapping(
        self, query: "Box", cells_per_dim: Sequence[int] | int
    ) -> Iterator[int]:
        """Yield row-major indices of grid children that intersect ``query``.

        Avoids materialising all children: only the integer ranges per axis
        are computed, so finding the handful of partitions a query touches
        is O(number of touched cells) rather than O(total cells).
        """
        counts = self._normalize_counts(cells_per_dim)
        self._check_dimension(query)
        ranges: list[range] = []
        for axis in range(self.dimension):
            side = self.side(axis)
            if side == 0:
                ranges.append(range(0, 1))
                continue
            lo_cell = int((query.lo[axis] - self.lo[axis]) / side * counts[axis])
            hi_cell = int((query.hi[axis] - self.lo[axis]) / side * counts[axis])
            lo_cell = min(max(lo_cell, 0), counts[axis] - 1)
            hi_cell = min(max(hi_cell, 0), counts[axis] - 1)
            if query.hi[axis] < self.lo[axis] or query.lo[axis] > self.hi[axis]:
                return
            ranges.append(range(lo_cell, hi_cell + 1))
        for coords in itertools.product(*ranges):
            index = 0
            for axis, cell in enumerate(coords):
                index = index * counts[axis] + cell
            yield index

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    def _normalize_counts(self, cells_per_dim: Sequence[int] | int) -> tuple[int, ...]:
        if isinstance(cells_per_dim, int):
            counts: tuple[int, ...] = (cells_per_dim,) * self.dimension
        else:
            counts = tuple(int(c) for c in cells_per_dim)
        if len(counts) != self.dimension:
            raise ValueError("cells_per_dim dimensionality mismatch")
        if any(c < 1 for c in counts):
            raise ValueError("every dimension needs at least one cell")
        return counts

    def _check_dimension(self, other: "Box") -> None:
        if other.dimension != self.dimension:
            raise ValueError(
                f"dimensionality mismatch: {self.dimension} vs {other.dimension}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lo = ", ".join(f"{c:g}" for c in self.lo)
        hi = ", ".join(f"{c:g}" for c in self.hi)
        return f"Box([{lo}] .. [{hi}])"
