"""NumPy-vectorized box-intersection kernels.

The scalar :class:`~repro.geometry.box.Box` predicates are convenient but
become the bottleneck once the batched query engine has to test dozens of
query windows against thousands of partition MBRs (and then against every
decoded object record).  The kernels here operate on plain ``float64``
corner arrays — shape ``(n, d)`` for ``n`` boxes in ``d`` dimensions — and
implement *exactly* the same closed-box semantics as
:meth:`Box.intersects <repro.geometry.box.Box.intersects>`: two boxes that
merely touch (including degenerate zero-extent boxes) are considered
intersecting.  ``tests/test_properties.py`` asserts the agreement on random
and degenerate boxes.

Three shapes of the same predicate are provided:

* :func:`intersect_mask` — one box against ``n`` boxes (``(n,)`` bools);
* :func:`intersect_matrix` — ``m`` boxes against ``n`` boxes (``(m, n)``
  bools), the kernel the batch engine uses to resolve the partition
  overlap tests of a whole query batch in one shot;
* :func:`boxes_to_arrays` — the bridge from ``Box`` objects to the corner
  arrays the kernels consume.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.box import Box


def boxes_to_arrays(
    boxes: Sequence[Box], dimension: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Stack the corners of ``boxes`` into ``(lo, hi)`` arrays of shape ``(n, d)``.

    ``dimension`` is only required for an empty sequence (an empty array
    still needs a column count); for a non-empty sequence it is validated
    against the boxes when given.
    """
    if not boxes:
        if dimension is None:
            raise ValueError("dimension is required to build arrays from zero boxes")
        empty = np.empty((0, dimension), dtype=np.float64)
        return empty, empty.copy()
    if dimension is not None and boxes[0].dimension != dimension:
        raise ValueError(
            f"boxes have dimension {boxes[0].dimension}, expected {dimension}"
        )
    lo = np.array([box.lo for box in boxes], dtype=np.float64)
    hi = np.array([box.hi for box in boxes], dtype=np.float64)
    return lo, hi


def box_to_arrays(box: Box) -> tuple[np.ndarray, np.ndarray]:
    """The ``(d,)`` corner arrays of one box."""
    return (
        np.asarray(box.lo, dtype=np.float64),
        np.asarray(box.hi, dtype=np.float64),
    )


def intersect_mask(
    lo: np.ndarray, hi: np.ndarray, los: np.ndarray, his: np.ndarray
) -> np.ndarray:
    """Closed-box intersection of one box against many.

    Parameters
    ----------
    lo, hi:
        Corners of the single box, shape ``(d,)``.
    los, his:
        Corners of the ``n`` candidate boxes, shape ``(n, d)``.

    Returns
    -------
    A boolean array of shape ``(n,)``; entry ``i`` is ``True`` exactly when
    ``Box(lo, hi).intersects(Box(los[i], his[i]))`` would be.
    """
    return ((lo <= his) & (los <= hi)).all(axis=1)


def grid_child_indices(
    points: np.ndarray, lo: Sequence[float], hi: Sequence[float], cells_per_dim: int
) -> np.ndarray:
    """Row-major grid-cell index of each point, exactly as :meth:`Box.child_index`.

    Parameters
    ----------
    points:
        Point coordinates, shape ``(n, d)``.
    lo, hi:
        Corners of the box being split, length ``d``.
    cells_per_dim:
        Number of grid cells along every axis.

    Returns
    -------
    An ``(n,)`` int64 array; entry ``i`` equals
    ``Box(lo, hi).child_index(points[i], cells_per_dim)`` bit-for-bit — the
    same IEEE operation order (offset division, truncation toward zero,
    clamping) so that vectorized partition assignment places every object
    in the same child as the scalar path.
    """
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    indices = np.zeros(n, dtype=np.int64)
    for axis in range(points.shape[1]):
        side = hi[axis] - lo[axis]
        if side == 0:
            cells = np.zeros(n, dtype=np.int64)
        else:
            offset = (points[:, axis] - lo[axis]) / side
            # astype truncates toward zero, matching int() in the scalar path;
            # the clamp then maps any out-of-range center to the border cell.
            cells = (offset * cells_per_dim).astype(np.int64)
            np.clip(cells, 0, cells_per_dim - 1, out=cells)
        indices = indices * cells_per_dim + cells
    return indices


def intersect_matrix(
    a_lo: np.ndarray, a_hi: np.ndarray, b_lo: np.ndarray, b_hi: np.ndarray
) -> np.ndarray:
    """Closed-box intersection of ``m`` boxes against ``n`` boxes.

    Parameters
    ----------
    a_lo, a_hi:
        Corners of the first family, shape ``(m, d)``.
    b_lo, b_hi:
        Corners of the second family, shape ``(n, d)``.

    Returns
    -------
    A boolean matrix of shape ``(m, n)``; entry ``(i, j)`` is ``True``
    exactly when box ``i`` of the first family intersects box ``j`` of the
    second under the closed-box semantics of :meth:`Box.intersects`.
    """
    overlap = (a_lo[:, None, :] <= b_hi[None, :, :]) & (
        b_lo[None, :, :] <= a_hi[:, None, :]
    )
    return overlap.all(axis=2)
