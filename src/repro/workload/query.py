"""Range queries over subsets of datasets."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.box import Box


@dataclass(frozen=True, slots=True)
class RangeQuery:
    """One exploration query ``Q = {A; DS_1, ..., DS_N}``.

    Parameters
    ----------
    qid:
        Position of the query in the workload sequence.
    box:
        The queried spatial range ``A``.
    dataset_ids:
        The datasets the range is evaluated over, sorted and de-duplicated.
    """

    qid: int
    box: Box
    dataset_ids: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.qid < 0:
            raise ValueError("qid must be non-negative")
        if not self.dataset_ids:
            raise ValueError("a query must target at least one dataset")
        ordered = tuple(sorted(set(self.dataset_ids)))
        if ordered != self.dataset_ids:
            object.__setattr__(self, "dataset_ids", ordered)

    @property
    def combination(self) -> frozenset[int]:
        """The queried combination of datasets."""
        return frozenset(self.dataset_ids)

    @property
    def n_datasets(self) -> int:
        """How many datasets the query targets."""
        return len(self.dataset_ids)

    def volume(self) -> float:
        """Volume of the queried range."""
        return self.box.volume()
