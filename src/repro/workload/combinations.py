"""Dataset-combination distributions (Gray et al., SIGMOD '94 style).

For every query the workload picks *which* datasets are queried together.
The paper draws the combination of ``k`` out of ``n`` datasets from one of
four synthetic distributions:

* **heavy hitter** — one combination accounts for 50 % of all queries, the
  rest are uniform over the remaining combinations;
* **self-similar** — the classic 80–20 rule over the ordered combination
  space;
* **Zipf** — probability proportional to ``1 / rank**2`` (exponent 2);
* **uniform** — no skew (the control case).

Which concrete combinations are "hot" is an arbitrary labelling, so the
generator shuffles the combination space once (seeded) and applies the
distribution to the shuffled order — exactly what a Gray-style generator
over record identifiers does.
"""

from __future__ import annotations

import enum
import itertools
import math
from typing import Sequence

import numpy as np

#: Upper bound on the number of enumerable combinations; the paper's space
#: peaks at C(10, 5) = 252, far below this.
MAX_COMBINATIONS = 200_000


class CombinationDistribution(enum.Enum):
    """The four distributions used in the paper's evaluation."""

    UNIFORM = "uniform"
    ZIPF = "zipf"
    SELF_SIMILAR = "self_similar"
    HEAVY_HITTER = "heavy_hitter"

    @classmethod
    def from_name(cls, name: str) -> "CombinationDistribution":
        """Parse a distribution name (accepting dashes and mixed case)."""
        normalized = name.strip().lower().replace("-", "_")
        for member in cls:
            if member.value == normalized:
                return member
        raise ValueError(
            f"unknown combination distribution {name!r}; "
            f"expected one of {[m.value for m in cls]}"
        )


class CombinationGenerator:
    """Draws combinations of ``datasets_per_query`` datasets per query.

    Parameters
    ----------
    dataset_ids:
        The identifiers of all available datasets.
    datasets_per_query:
        ``k`` — how many datasets every query targets (the x axis of
        Figure 4 sweeps this from 1 to 9 out of 10).
    distribution:
        Which skew to apply to the combination space.
    seed:
        Seed for both the hot-combination labelling and the per-query draws.
    zipf_exponent:
        Exponent of the Zipf distribution (the paper uses 2).
    self_similar_h:
        The "h" of the h/(1-h) self-similar rule (0.2 yields the classic
        80–20 proportion used in the paper).
    heavy_hitter_share:
        Fraction of queries that go to the single heavy-hitter combination
        (0.5 in the paper).
    """

    def __init__(
        self,
        dataset_ids: Sequence[int],
        datasets_per_query: int,
        distribution: CombinationDistribution | str,
        seed: int,
        zipf_exponent: float = 2.0,
        self_similar_h: float = 0.2,
        heavy_hitter_share: float = 0.5,
    ) -> None:
        ids = sorted(set(dataset_ids))
        if len(ids) != len(dataset_ids):
            raise ValueError("dataset_ids must be unique")
        if not 1 <= datasets_per_query <= len(ids):
            raise ValueError(
                f"datasets_per_query must be between 1 and {len(ids)}, "
                f"got {datasets_per_query}"
            )
        n_combos = math.comb(len(ids), datasets_per_query)
        if n_combos > MAX_COMBINATIONS:
            raise ValueError(
                f"{n_combos} possible combinations exceed the supported maximum "
                f"of {MAX_COMBINATIONS}"
            )
        if isinstance(distribution, str):
            distribution = CombinationDistribution.from_name(distribution)
        if not 0 < heavy_hitter_share < 1:
            raise ValueError("heavy_hitter_share must be in (0, 1)")
        if not 0 < self_similar_h < 1:
            raise ValueError("self_similar_h must be in (0, 1)")
        if zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be positive")

        self._distribution = distribution
        self._rng = np.random.default_rng(seed)
        combos = [tuple(c) for c in itertools.combinations(ids, datasets_per_query)]
        order = self._rng.permutation(len(combos))
        self._combinations: list[tuple[int, ...]] = [combos[i] for i in order]
        self._weights = self._compute_weights(
            len(self._combinations),
            distribution,
            zipf_exponent,
            self_similar_h,
            heavy_hitter_share,
        )

    @staticmethod
    def _compute_weights(
        count: int,
        distribution: CombinationDistribution,
        zipf_exponent: float,
        self_similar_h: float,
        heavy_hitter_share: float,
    ) -> np.ndarray:
        if count == 1:
            return np.array([1.0])
        ranks = np.arange(1, count + 1, dtype=float)
        if distribution is CombinationDistribution.UNIFORM:
            weights = np.ones(count)
        elif distribution is CombinationDistribution.ZIPF:
            weights = 1.0 / ranks**zipf_exponent
        elif distribution is CombinationDistribution.HEAVY_HITTER:
            weights = np.full(count, (1.0 - heavy_hitter_share) / (count - 1))
            weights[0] = heavy_hitter_share
        elif distribution is CombinationDistribution.SELF_SIMILAR:
            # Gray et al.: drawing index = N * u**(log(h) / log(1 - h))
            # concentrates (1 - h) of the mass on the first h * N items.
            # The equivalent closed-form weights come from the CDF
            # F(i) = (i / N) ** (log(1 - h) / log(h)).
            exponent = math.log(1.0 - self_similar_h) / math.log(self_similar_h)
            cdf = (ranks / count) ** exponent
            weights = np.diff(np.concatenate(([0.0], cdf)))
        else:  # pragma: no cover - exhaustive enum
            raise AssertionError(f"unhandled distribution {distribution}")
        total = weights.sum()
        if total <= 0:
            raise ValueError("degenerate distribution weights")
        return weights / total

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    @property
    def distribution(self) -> CombinationDistribution:
        """The configured distribution."""
        return self._distribution

    @property
    def n_possible_combinations(self) -> int:
        """Size of the combination space ``C(n, k)``."""
        return len(self._combinations)

    @property
    def probabilities(self) -> np.ndarray:
        """Per-combination probabilities, aligned with :meth:`combinations`."""
        return self._weights.copy()

    def combinations(self) -> list[tuple[int, ...]]:
        """The (shuffled) combination space the weights refer to."""
        return list(self._combinations)

    @property
    def hot_combination(self) -> tuple[int, ...]:
        """The most likely combination under the configured distribution."""
        return self._combinations[int(np.argmax(self._weights))]

    def sample(self) -> tuple[int, ...]:
        """Draw the combination for one query."""
        index = int(self._rng.choice(len(self._combinations), p=self._weights))
        return self._combinations[index]

    def sample_many(self, count: int) -> list[tuple[int, ...]]:
        """Draw ``count`` combinations."""
        if count < 0:
            raise ValueError("count must be non-negative")
        indices = self._rng.choice(len(self._combinations), size=count, p=self._weights)
        return [self._combinations[int(i)] for i in indices]
