"""Synthetic exploration workloads (Section 4.1 of the paper).

A workload is a sequence of range queries, each of which specifies the
spatial range ``A`` and the subset of datasets it targets.  The paper
generates them from two independent choices, both reproduced here:

* **query ranges** — fixed-volume boxes whose centres are either clustered
  (Gaussian around a small number of cluster centres, mimicking scientists
  repeatedly inspecting the same brain regions) or uniform;
* **queried datasets** — the combination of datasets per query is drawn
  from a Gray-et-al.-style synthetic distribution: heavy hitter,
  self-similar (80–20), Zipf (exponent 2) or uniform.
"""

from repro.workload.builder import Workload, WorkloadBuilder
from repro.workload.combinations import CombinationDistribution, CombinationGenerator
from repro.workload.query import RangeQuery
from repro.workload.ranges import (
    ClusteredRangeGenerator,
    RangeGenerator,
    UniformRangeGenerator,
)

__all__ = [
    "ClusteredRangeGenerator",
    "CombinationDistribution",
    "CombinationGenerator",
    "RangeGenerator",
    "RangeQuery",
    "UniformRangeGenerator",
    "Workload",
    "WorkloadBuilder",
]
