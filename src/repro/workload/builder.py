"""Workload assembly.

A :class:`Workload` is the materialised query sequence an experiment runs:
every query has a range (from a range generator) and a target combination
of datasets (from a combination generator).  The builder also reports the
number of *distinct* combinations actually queried, which the paper prints
on the x axis of Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.workload.combinations import CombinationGenerator
from repro.workload.query import RangeQuery
from repro.workload.ranges import RangeGenerator


@dataclass(frozen=True)
class Workload:
    """An ordered sequence of range queries plus descriptive metadata."""

    queries: tuple[RangeQuery, ...]
    description: str = ""
    metadata: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[RangeQuery]:
        return iter(self.queries)

    def __getitem__(self, index: int) -> RangeQuery:
        return self.queries[index]

    def combinations_queried(self) -> set[frozenset[int]]:
        """The distinct dataset combinations that appear in the workload."""
        return {query.combination for query in self.queries}

    def n_combinations_queried(self) -> int:
        """Number of distinct combinations (Figure 4's secondary x label)."""
        return len(self.combinations_queried())

    def queries_for_combination(self, combination: Sequence[int]) -> list[RangeQuery]:
        """All queries targeting exactly the given combination."""
        wanted = frozenset(combination)
        return [query for query in self.queries if query.combination == wanted]

    def datasets_touched(self) -> set[int]:
        """Every dataset id that appears in at least one query."""
        touched: set[int] = set()
        for query in self.queries:
            touched.update(query.dataset_ids)
        return touched


class WorkloadBuilder:
    """Combines a range generator and a combination generator into a workload."""

    def __init__(
        self,
        range_generator: RangeGenerator,
        combination_generator: CombinationGenerator,
    ) -> None:
        self._ranges = range_generator
        self._combinations = combination_generator

    def build(self, n_queries: int, description: str = "") -> Workload:
        """Materialise ``n_queries`` queries."""
        if n_queries < 1:
            raise ValueError("n_queries must be >= 1")
        queries = []
        for qid in range(n_queries):
            box = self._ranges.next_range()
            combination = self._combinations.sample()
            queries.append(RangeQuery(qid=qid, box=box, dataset_ids=combination))
        workload = Workload(
            queries=tuple(queries),
            description=description,
            metadata={
                "n_queries": n_queries,
                "volume_fraction": self._ranges.volume_fraction,
                "range_generator": type(self._ranges).__name__,
                "combination_distribution": self._combinations.distribution.value,
                "n_possible_combinations": self._combinations.n_possible_combinations,
            },
        )
        return workload
