"""Query-range generators.

The paper uses fixed-volume queries (``qvol`` = 10⁻⁴ % of the queried brain
volume) whose centres follow either a clustered distribution — Gaussian
noise around a small set of cluster centres, ten by default — or a uniform
distribution (the non-skewed control, Figure 4d / 5b).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Sequence

import numpy as np

from repro.geometry.box import Box
from repro.geometry.random_boxes import random_box_with_volume, random_point_in_box


class RangeGenerator(ABC):
    """Produces an endless stream of query ranges inside a universe."""

    def __init__(self, universe: Box, volume_fraction: float, seed: int) -> None:
        if not 0 < volume_fraction <= 1:
            raise ValueError("volume_fraction must be in (0, 1]")
        self._universe = universe
        self._volume_fraction = volume_fraction
        self._rng = np.random.default_rng(seed)

    @property
    def universe(self) -> Box:
        """The space queries are drawn from."""
        return self._universe

    @property
    def volume_fraction(self) -> float:
        """Query volume as a fraction of the universe volume."""
        return self._volume_fraction

    @abstractmethod
    def next_center(self) -> tuple[float, ...]:
        """The centre of the next query range."""

    def next_range(self) -> Box:
        """The next query range (a fixed-volume box clamped to the universe)."""
        return random_box_with_volume(
            self._rng,
            self._universe,
            self._volume_fraction,
            center=self.next_center(),
        )

    def ranges(self, count: int) -> Iterator[Box]:
        """Yield ``count`` query ranges."""
        for _ in range(count):
            yield self.next_range()


class UniformRangeGenerator(RangeGenerator):
    """Query centres drawn uniformly from the universe (no spatial skew)."""

    def next_center(self) -> tuple[float, ...]:
        """A uniformly random centre."""
        return random_point_in_box(self._rng, self._universe)


class ClusteredRangeGenerator(RangeGenerator):
    """Query centres clustered around a small set of cluster centres.

    Parameters
    ----------
    universe, volume_fraction, seed:
        As for :class:`RangeGenerator`.
    n_cluster_centers:
        Number of cluster centres (the paper uses 10 for Figures 4/5a and 5
        for the merging experiment of Figure 5c).
    sigma_query_sides:
        Standard deviation of the Gaussian noise around a cluster centre,
        expressed in multiples of the query side length (the paper's
        ``sigma = qvol x 10``; the default keeps the blobs tight so that
        clustered queries repeatedly revisit the same areas, as in the
        paper's Figure 3).
    cluster_centers:
        Optional explicit centres.  Experiments pass the data generator's
        microcircuit centres here so that clustered queries actually hit
        populated brain regions; when omitted, centres are drawn uniformly
        from the universe.
    """

    def __init__(
        self,
        universe: Box,
        volume_fraction: float,
        seed: int,
        n_cluster_centers: int = 10,
        sigma_query_sides: float = 1.0,
        cluster_centers: Sequence[Sequence[float]] | None = None,
    ) -> None:
        super().__init__(universe, volume_fraction, seed)
        if n_cluster_centers < 1:
            raise ValueError("n_cluster_centers must be >= 1")
        if sigma_query_sides <= 0:
            raise ValueError("sigma_query_sides must be positive")
        dim = universe.dimension
        if cluster_centers is not None:
            centers = np.asarray(cluster_centers, dtype=float)
            if centers.ndim != 2 or centers.shape[1] != dim:
                raise ValueError("cluster_centers must be an (n, dimension) array")
            if len(centers) > n_cluster_centers:
                picks = self._rng.choice(len(centers), size=n_cluster_centers, replace=False)
                centers = centers[picks]
            self._centers = centers
        else:
            self._centers = np.asarray(
                [random_point_in_box(self._rng, universe) for _ in range(n_cluster_centers)]
            )
        query_side = (universe.volume() * volume_fraction) ** (1.0 / dim)
        self._sigma = query_side * sigma_query_sides

    @property
    def cluster_centers(self) -> np.ndarray:
        """The cluster centres in use."""
        return self._centers.copy()

    def next_center(self) -> tuple[float, ...]:
        """A centre drawn from a Gaussian around a random cluster centre."""
        cluster = int(self._rng.integers(len(self._centers)))
        center = self._rng.normal(self._centers[cluster], self._sigma)
        center = np.clip(center, np.asarray(self._universe.lo), np.asarray(self._universe.hi))
        return tuple(float(c) for c in center)
