"""Spatial objects and their on-disk representation.

A :class:`SpatialObject` is the unit of data everywhere in the library: a
neuron-mesh fragment in the synthetic datasets, a record in a raw file, an
entry in an index partition, an element of a query answer.  As in the
original prototype, every object carries the identifier of the dataset it
belongs to so that the all-in-one (Ain1) indexing strategy and the merge
files can filter by dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.box import Box
from repro.storage.codec import FixedRecordCodec


@dataclass(frozen=True, slots=True)
class SpatialObject:
    """A volumetric object: an id, the dataset it belongs to, and its MBR.

    Parameters
    ----------
    oid:
        Object identifier, unique within its dataset.
    dataset_id:
        Identifier of the owning dataset.
    box:
        Minimum bounding rectangle (axis-aligned) of the object.
    """

    oid: int
    dataset_id: int
    box: Box

    @property
    def center(self) -> tuple[float, ...]:
        """Centre of the object's MBR (used for partition assignment)."""
        return self.box.center

    @property
    def dimension(self) -> int:
        """Dimensionality of the object."""
        return self.box.dimension

    def key(self) -> tuple[int, int]:
        """Globally unique identity ``(dataset_id, oid)``."""
        return (self.dataset_id, self.oid)

    def intersects(self, box: Box) -> bool:
        """Whether the object's MBR intersects ``box``."""
        return self.box.intersects(box)


def spatial_object_codec(dimension: int) -> FixedRecordCodec[SpatialObject]:
    """The fixed-size binary codec for objects of a given dimensionality.

    Layout (little endian): ``oid`` (int64), ``dataset_id`` (int64), the
    ``lo`` corner (float64 per dimension), the ``hi`` corner (float64 per
    dimension).  For 3-D data this is 64 bytes per record, so a 4 KB page
    holds 63 objects after the page header.

    The codec carries the matching :func:`spatial_object_dtype`, so every
    :class:`~repro.storage.pagedfile.PagedFile` of spatial objects (raw
    files, partition files, merge files) automatically supports the
    zero-copy array surface (``read_group_array`` and friends).
    """
    if dimension < 1:
        raise ValueError("dimension must be >= 1")
    fmt = "<qq" + "d" * (2 * dimension)

    def to_fields(obj: SpatialObject) -> tuple:
        if obj.dimension != dimension:
            raise ValueError(
                f"object has dimension {obj.dimension}, codec expects {dimension}"
            )
        return (obj.oid, obj.dataset_id, *obj.box.lo, *obj.box.hi)

    def from_fields(fields: tuple) -> SpatialObject:
        oid, dataset_id = fields[0], fields[1]
        coords = fields[2:]
        lo = tuple(coords[:dimension])
        hi = tuple(coords[dimension:])
        return SpatialObject(oid=oid, dataset_id=dataset_id, box=Box(lo, hi))

    return FixedRecordCodec(fmt, to_fields, from_fields, dtype=spatial_object_dtype(dimension))


def spatial_object_dtype(dimension: int) -> np.dtype:
    """A NumPy structured dtype matching :func:`spatial_object_codec`'s layout.

    The columnar storage surface decodes whole pages of records into
    structured arrays with ``np.frombuffer`` instead of unpacking record by
    record; the field order and little-endian widths mirror the codec
    byte-for-byte, so both decoders see identical values and encoding from
    an array writes identical bytes.
    """
    if dimension < 1:
        raise ValueError("dimension must be >= 1")
    return np.dtype(
        [
            ("oid", "<i8"),
            ("dataset_id", "<i8"),
            ("lo", "<f8", (dimension,)),
            ("hi", "<f8", (dimension,)),
        ]
    )
