"""Raw datasets on the simulated disk.

A :class:`Dataset` models exactly what Space Odyssey starts from: a raw,
*unindexed* file of spatial objects sitting on disk.  Static baselines read
the whole file to build their index up front; Space Odyssey reads it once,
lazily, the first time a query touches the dataset.

A :class:`DatasetCatalog` is the tiny in-memory catalog the query engines
share: it maps dataset identifiers to datasets and knows the common universe
(all of the paper's datasets describe subsets of the same brain volume).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.data.spatial_object import SpatialObject, spatial_object_codec
from repro.geometry.box import Box
from repro.storage.disk import Disk
from repro.storage.pagedfile import PagedFile


def raw_file_name(name: str) -> str:
    """Conventional name of a dataset's raw file on the disk."""
    return f"raw/{name}.dat"


@dataclass
class Dataset:
    """One raw spatial dataset stored as a paged file of object records."""

    dataset_id: int
    name: str
    universe: Box
    n_objects: int
    disk: Disk
    file: PagedFile[SpatialObject] = field(repr=False)

    @classmethod
    def create(
        cls,
        disk: Disk,
        dataset_id: int,
        name: str,
        objects: Iterable[SpatialObject],
        universe: Box,
        compression: str | None = None,
    ) -> "Dataset":
        """Write ``objects`` sequentially into a new raw file and register it.

        ``compression`` (see :data:`repro.storage.codec.COMPRESSION_CODECS`)
        compresses the raw file's pages as they are written — raw dataset
        files are written once and only ever read back, the pattern page
        compression is built for.  Raises ``ValueError`` if an object lies
        outside ``universe`` or carries a different ``dataset_id`` — raw
        files are per dataset.
        """
        codec = spatial_object_codec(universe.dimension)
        file: PagedFile[SpatialObject] = PagedFile(
            disk, raw_file_name(name), codec, compression=compression
        )
        if file.exists():
            raise ValueError(f"dataset file already exists for {name!r}")
        count = 0
        batch: list[SpatialObject] = []
        batch_size = file.records_per_page * 64
        for obj in objects:
            if obj.dataset_id != dataset_id:
                raise ValueError(
                    f"object {obj.oid} carries dataset_id {obj.dataset_id}, "
                    f"expected {dataset_id}"
                )
            if not universe.intersects(obj.box):
                raise ValueError(f"object {obj.oid} lies outside the universe")
            batch.append(obj)
            count += 1
            if len(batch) >= batch_size:
                file.append_group(batch)
                batch = []
        if batch:
            file.append_group(batch)
        if count == 0:
            # Materialise an empty file so scans and builds behave uniformly.
            file.append_group([])
        return cls(
            dataset_id=dataset_id,
            name=name,
            universe=universe,
            n_objects=count,
            disk=disk,
            file=file,
        )

    @classmethod
    def open(cls, disk: Disk, dataset_id: int, name: str, universe: Box) -> "Dataset":
        """Attach to an existing raw file (counts objects with one scan)."""
        codec = spatial_object_codec(universe.dimension)
        file: PagedFile[SpatialObject] = PagedFile(disk, raw_file_name(name), codec)
        if not file.exists():
            raise ValueError(f"no raw file for dataset {name!r}")
        count = sum(1 for _ in file.scan())
        return cls(
            dataset_id=dataset_id,
            name=name,
            universe=universe,
            n_objects=count,
            disk=disk,
            file=file,
        )

    # ------------------------------------------------------------------ #
    # Access paths
    # ------------------------------------------------------------------ #

    @property
    def dimension(self) -> int:
        """Dimensionality of the dataset."""
        return self.universe.dimension

    def size_pages(self) -> int:
        """Number of pages the raw file occupies."""
        return self.file.num_pages()

    def scan(self) -> Iterator[SpatialObject]:
        """Sequentially scan the raw file, yielding every object.

        This is the in-situ access path: it charges one sequential pass of
        the whole file to the disk model, exactly what Space Odyssey pays on
        the first query that touches the dataset and what static indexes pay
        (at least once) during their build.
        """
        return self.file.scan()

    def scan_arrays(self) -> "Iterator":
        """Columnar :meth:`scan`: yield the raw records in structured-array chunks.

        Same sequential pass and disk charging as :meth:`scan`, but each
        chunk arrives as one NumPy structured array instead of per-object
        Python instances — the access path of the columnar first-touch
        initialisation.
        """
        return self.file.scan_arrays()

    def read_all(self) -> list[SpatialObject]:
        """Scan the raw file into a list."""
        return list(self.scan())

    def range_query_scan(self, box: Box) -> list[SpatialObject]:
        """Answer a range query by brute-force scanning the raw file.

        Used as the correctness oracle in tests and as the degenerate
        "no index" baseline.
        """
        matches = [obj for obj in self.scan() if obj.intersects(box)]
        self.disk.charge_cpu_records(self.n_objects)
        return matches


class DatasetCatalog:
    """The set of datasets an exploration session can query."""

    def __init__(self, datasets: Sequence[Dataset]) -> None:
        if not datasets:
            raise ValueError("a catalog needs at least one dataset")
        universe = datasets[0].universe
        dimension = universe.dimension
        self._datasets: dict[int, Dataset] = {}
        for dataset in datasets:
            if dataset.dimension != dimension:
                raise ValueError("all datasets in a catalog must share dimensionality")
            if dataset.dataset_id in self._datasets:
                raise ValueError(f"duplicate dataset id {dataset.dataset_id}")
            self._datasets[dataset.dataset_id] = dataset
        self._universe = Box.bounding([d.universe for d in datasets])

    @property
    def universe(self) -> Box:
        """Bounding box of all dataset universes (the shared brain volume)."""
        return self._universe

    @property
    def dimension(self) -> int:
        """Dimensionality shared by every dataset."""
        return self._universe.dimension

    def dataset_ids(self) -> list[int]:
        """Sorted dataset identifiers."""
        return sorted(self._datasets)

    def get(self, dataset_id: int) -> Dataset:
        """Look up one dataset by id."""
        try:
            return self._datasets[dataset_id]
        except KeyError:
            raise KeyError(f"unknown dataset id {dataset_id}") from None

    def datasets(self) -> list[Dataset]:
        """All datasets, ordered by id."""
        return [self._datasets[i] for i in self.dataset_ids()]

    def subset(self, dataset_ids: Iterable[int]) -> list[Dataset]:
        """The datasets named by ``dataset_ids`` (validating each id)."""
        return [self.get(i) for i in dataset_ids]

    def total_objects(self) -> int:
        """Total object count across all datasets."""
        return sum(d.n_objects for d in self._datasets.values())

    def total_pages(self) -> int:
        """Total raw pages across all datasets."""
        return sum(d.size_pages() for d in self._datasets.values())

    def __len__(self) -> int:
        return len(self._datasets)

    def __iter__(self) -> Iterator[Dataset]:
        return iter(self.datasets())
