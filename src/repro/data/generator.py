"""Synthetic scientific dataset generators.

The paper's datasets are ten subsets of neurons from the same brain volume,
each neuron modelled as a 3-D surface mesh; the objects are therefore many,
small, and heavily clustered (neurons bundle into columns and layers).  The
:class:`NeuroscienceDatasetGenerator` reproduces those characteristics
synthetically: it places somata in Gaussian clusters ("microcircuits") and
grows a branching arbour of short segments around each soma, every segment
becoming one spatial object (its MBR).

Two simpler generators are provided for tests and ablations:
:class:`UniformBoxGenerator` (no spatial skew) and
:class:`ClusteredBoxGenerator` (pure Gaussian blobs, no arbour structure).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.data.dataset import Dataset
from repro.data.spatial_object import SpatialObject
from repro.geometry.box import Box
from repro.storage.disk import Disk


def _clip_point(point: np.ndarray, universe: Box) -> np.ndarray:
    return np.clip(point, np.asarray(universe.lo), np.asarray(universe.hi))


def derived_rng(seed: int, *parts: int | str) -> np.random.Generator:
    """A reproducible RNG derived from a base seed and extra labels.

    String labels are hashed with CRC32 so dataset generators can derive
    independent, stable streams for "the cluster centres", "dataset 3", etc.
    """
    entropy: list[int] = [seed & 0xFFFFFFFF]
    for part in parts:
        if isinstance(part, str):
            entropy.append(zlib.crc32(part.encode("utf-8")))
        else:
            entropy.append(int(part) & 0xFFFFFFFF)
    return np.random.default_rng(np.random.SeedSequence(entropy))


@dataclass(frozen=True, slots=True)
class GeneratorProfile:
    """Shared knobs of all generators.

    ``object_extent_fraction`` is the mean object side length relative to
    the universe side; the paper's mesh fragments are tiny relative to the
    brain volume, so the default keeps objects a few orders of magnitude
    smaller than the universe.
    """

    object_extent_fraction: float = 2e-3
    extent_jitter: float = 0.5

    def __post_init__(self) -> None:
        if not 0 < self.object_extent_fraction <= 1:
            raise ValueError("object_extent_fraction must be in (0, 1]")
        if not 0 <= self.extent_jitter < 1:
            raise ValueError("extent_jitter must be in [0, 1)")


class _BaseGenerator:
    """Common plumbing: RNG handling and object materialisation."""

    def __init__(self, universe: Box, seed: int, profile: GeneratorProfile | None = None) -> None:
        self._universe = universe
        self._seed = seed
        self._profile = profile or GeneratorProfile()

    @property
    def universe(self) -> Box:
        """The universe every generated object lies in."""
        return self._universe

    def _rng(self, dataset_id: int) -> np.random.Generator:
        return derived_rng(self._seed, "dataset", dataset_id)

    def _object_at(
        self,
        rng: np.random.Generator,
        oid: int,
        dataset_id: int,
        center: np.ndarray,
        extent_scale: float = 1.0,
    ) -> SpatialObject:
        dim = self._universe.dimension
        universe_extents = np.asarray(self._universe.extents)
        jitter = rng.uniform(
            1.0 - self._profile.extent_jitter, 1.0 + self._profile.extent_jitter, size=dim
        )
        extents = universe_extents * self._profile.object_extent_fraction * jitter * extent_scale
        center = _clip_point(center, self._universe)
        box = Box.from_center(tuple(float(c) for c in center), tuple(float(e) for e in extents))
        return SpatialObject(oid=oid, dataset_id=dataset_id, box=box.clamp(self._universe))

    # -- public API ------------------------------------------------------- #

    def objects(self, dataset_id: int, count: int) -> Iterator[SpatialObject]:
        """Yield ``count`` objects for the dataset (implemented by subclasses)."""
        raise NotImplementedError

    def create_dataset(
        self,
        disk: Disk,
        dataset_id: int,
        name: str,
        count: int,
        compression: str | None = None,
    ) -> Dataset:
        """Generate ``count`` objects and persist them as a raw dataset."""
        return Dataset.create(
            disk=disk,
            dataset_id=dataset_id,
            name=name,
            objects=self.objects(dataset_id, count),
            universe=self._universe,
            compression=compression,
        )


class UniformBoxGenerator(_BaseGenerator):
    """Objects placed uniformly at random in the universe (no skew)."""

    def objects(self, dataset_id: int, count: int) -> Iterator[SpatialObject]:
        """Yield ``count`` uniformly placed objects."""
        rng = self._rng(dataset_id)
        lo = np.asarray(self._universe.lo)
        hi = np.asarray(self._universe.hi)
        for oid in range(count):
            center = rng.uniform(lo, hi)
            yield self._object_at(rng, oid, dataset_id, center)


class ClusteredBoxGenerator(_BaseGenerator):
    """Objects drawn from Gaussian clusters (pure spatial skew, no structure)."""

    def __init__(
        self,
        universe: Box,
        seed: int,
        n_clusters: int = 10,
        cluster_sigma_fraction: float = 0.03,
        profile: GeneratorProfile | None = None,
    ) -> None:
        super().__init__(universe, seed, profile)
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if cluster_sigma_fraction <= 0:
            raise ValueError("cluster_sigma_fraction must be positive")
        self._n_clusters = n_clusters
        self._sigma_fraction = cluster_sigma_fraction
        # Cluster centres are shared by every dataset generated from this
        # generator so that "the same brain areas" are populated everywhere.
        rng = derived_rng(seed, "clusters")
        self._centers = rng.uniform(
            np.asarray(universe.lo), np.asarray(universe.hi), size=(n_clusters, universe.dimension)
        )

    @property
    def cluster_centers(self) -> np.ndarray:
        """The shared cluster centres (``n_clusters`` × ``dimension``)."""
        return self._centers.copy()

    def objects(self, dataset_id: int, count: int) -> Iterator[SpatialObject]:
        """Yield ``count`` objects drawn around the shared cluster centres."""
        rng = self._rng(dataset_id)
        sigma = np.asarray(self._universe.extents) * self._sigma_fraction
        for oid in range(count):
            cluster = int(rng.integers(self._n_clusters))
            center = rng.normal(self._centers[cluster], sigma)
            yield self._object_at(rng, oid, dataset_id, center)


class NeuroscienceDatasetGenerator(_BaseGenerator):
    """Synthetic neuron morphologies: clustered somata with branching arbours.

    Each neuron is generated as follows:

    1. its soma is placed near one of ``n_microcircuits`` shared cluster
       centres (all datasets describe subsets of the same tissue, so the
       centres are shared across datasets);
    2. a random branching walk grows ``segments_per_neuron`` short segments
       away from the soma; every segment becomes one spatial object whose
       MBR is slightly elongated along the direction of growth.

    The result has the two properties the paper's workloads rely on: strong
    spatial clustering (hot brain regions) and many small objects whose
    extents straddle partition boundaries, which exercises the query-window
    extension machinery.
    """

    def __init__(
        self,
        universe: Box,
        seed: int,
        n_microcircuits: int = 24,
        segments_per_neuron: int = 40,
        microcircuit_sigma_fraction: float = 0.04,
        step_fraction: float = 0.008,
        branch_probability: float = 0.08,
        profile: GeneratorProfile | None = None,
    ) -> None:
        super().__init__(universe, seed, profile)
        if n_microcircuits < 1:
            raise ValueError("n_microcircuits must be >= 1")
        if segments_per_neuron < 1:
            raise ValueError("segments_per_neuron must be >= 1")
        if not 0 <= branch_probability <= 1:
            raise ValueError("branch_probability must be in [0, 1]")
        self._n_microcircuits = n_microcircuits
        self._segments_per_neuron = segments_per_neuron
        self._sigma_fraction = microcircuit_sigma_fraction
        self._step_fraction = step_fraction
        self._branch_probability = branch_probability
        rng = derived_rng(seed, "microcircuits")
        self._centers = rng.uniform(
            np.asarray(universe.lo),
            np.asarray(universe.hi),
            size=(n_microcircuits, universe.dimension),
        )

    @property
    def microcircuit_centers(self) -> np.ndarray:
        """Shared microcircuit centres (hot regions of the tissue)."""
        return self._centers.copy()

    def objects(self, dataset_id: int, count: int) -> Iterator[SpatialObject]:
        """Yield ``count`` segment objects grown from synthetic neurons."""
        rng = self._rng(dataset_id)
        dim = self._universe.dimension
        extents = np.asarray(self._universe.extents)
        sigma = extents * self._sigma_fraction
        step = extents * self._step_fraction
        oid = 0
        while oid < count:
            # Start a new neuron: soma near a microcircuit centre.
            circuit = int(rng.integers(self._n_microcircuits))
            soma = rng.normal(self._centers[circuit], sigma)
            soma = _clip_point(soma, self._universe)
            # The soma itself is a (slightly larger) object.
            yield self._object_at(rng, oid, dataset_id, soma, extent_scale=2.0)
            oid += 1
            # Grow the arbour with a branching random walk.
            frontier: list[np.ndarray] = [soma.copy()]
            segments_left = min(self._segments_per_neuron, count - oid)
            for _ in range(segments_left):
                if not frontier:
                    break
                tip_index = int(rng.integers(len(frontier)))
                tip = frontier[tip_index]
                direction = rng.normal(0.0, 1.0, size=dim)
                norm = np.linalg.norm(direction)
                if norm == 0:
                    direction = np.ones(dim)
                    norm = np.linalg.norm(direction)
                direction /= norm
                new_tip = _clip_point(tip + direction * step, self._universe)
                midpoint = (tip + new_tip) / 2.0
                yield self._object_at(rng, oid, dataset_id, midpoint)
                oid += 1
                frontier[tip_index] = new_tip
                if rng.uniform() < self._branch_probability:
                    frontier.append(new_tip.copy())

    def generate_datasets(
        self,
        disk: Disk,
        n_datasets: int,
        objects_per_dataset: int,
        name_prefix: str = "neuro",
        compression: str | None = None,
    ) -> list[Dataset]:
        """Create ``n_datasets`` raw datasets sharing this generator's tissue."""
        datasets = []
        for dataset_id in range(n_datasets):
            datasets.append(
                self.create_dataset(
                    disk=disk,
                    dataset_id=dataset_id,
                    name=f"{name_prefix}_{dataset_id:02d}",
                    count=objects_per_dataset,
                    compression=compression,
                )
            )
        return datasets


def brain_universe(dimension: int = 3, side: float = 1000.0) -> Box:
    """The shared universe used by the benchmark suite (a cubic brain volume).

    The coordinates are in arbitrary micrometre-like units; only ratios
    (query volume vs universe volume vs object extents) matter for the
    reproduction.
    """
    if side <= 0:
        raise ValueError("side must be positive")
    return Box((0.0,) * dimension, (side,) * dimension)
