"""Datasets and synthetic scientific data generation.

The paper evaluates on ten proprietary Human Brain Project datasets, each a
collection of 3-D neuron surface meshes sharing the same brain volume.  This
package provides the equivalent substrate: a :class:`~repro.data.dataset.Dataset`
is a raw, unindexed paged file of spatial objects on the simulated disk, and
:mod:`repro.data.generator` synthesises neuroscience-like data (clustered
neurons with branching arbours) so that the evaluation workloads exercise
the same skew and object-size characteristics.
"""

from repro.data.columnar import DecodedGroup
from repro.data.dataset import Dataset, DatasetCatalog
from repro.data.generator import (
    ClusteredBoxGenerator,
    NeuroscienceDatasetGenerator,
    UniformBoxGenerator,
)
from repro.data.spatial_object import SpatialObject, spatial_object_codec
from repro.data.suite import BenchmarkSuite, build_benchmark_suite

__all__ = [
    "BenchmarkSuite",
    "ClusteredBoxGenerator",
    "Dataset",
    "DatasetCatalog",
    "DecodedGroup",
    "NeuroscienceDatasetGenerator",
    "SpatialObject",
    "UniformBoxGenerator",
    "build_benchmark_suite",
    "spatial_object_codec",
]
