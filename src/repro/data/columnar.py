"""Columnar views of spatial-object groups.

The storage layer decodes pages of spatial objects into NumPy structured
arrays (:meth:`~repro.storage.pagedfile.PagedFile.read_group_array`); this
module turns those records into the :class:`DecodedGroup` column bundle the
query engines filter with — ``oids``/``dataset_ids`` vectors and the MBR
corner matrices — and materialises :class:`~repro.data.spatial_object.SpatialObject`
instances only for the rows a query actually hits.

Both the sequential query processor and the batched executor consume this
one surface, so there is a single bytes→columns→objects path in the
library.
"""

from __future__ import annotations

import numpy as np

from repro.data.spatial_object import SpatialObject
from repro.geometry.box import Box


class DecodedGroup:
    """One stored group decoded into columnar arrays.

    Holds the record fields as NumPy columns (``oids``, ``dataset_ids``
    and the MBR corner matrices) so queries can filter with one vectorized
    mask; :meth:`materialize` builds ``SpatialObject`` instances only for
    the rows that survived the mask — conversion work is proportional to
    the rows *selected*, never to the group size, so a partition that a
    query window merely grazes costs (almost) nothing to skip.
    Materialised objects are cached per row: a record selected several
    times (duplicate or overlapping query windows within a batch) is
    constructed once.
    """

    __slots__ = ("oids", "dataset_ids", "lo", "hi", "_objects")

    def __init__(
        self,
        oids: np.ndarray,
        dataset_ids: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
    ) -> None:
        self.oids = oids
        self.dataset_ids = dataset_ids
        self.lo = lo
        self.hi = hi
        self._objects: dict[int, SpatialObject] = {}

    @classmethod
    def from_records(cls, records: np.ndarray, dimension: int) -> "DecodedGroup":
        """Wrap the structured records of one stored group as columns."""
        return cls(
            oids=records["oid"],
            dataset_ids=records["dataset_id"],
            lo=records["lo"].reshape(-1, dimension),
            hi=records["hi"].reshape(-1, dimension),
        )

    @property
    def n_records(self) -> int:
        """Number of records in the group."""
        return len(self.oids)

    def materialize(self, mask: np.ndarray) -> list[SpatialObject]:
        """The records selected by ``mask`` as regular spatial objects."""
        rows = np.nonzero(mask)[0]
        if not len(rows):
            return []
        objects = self._objects
        missing = [row for row in rows.tolist() if row not in objects]
        if missing:
            # Bulk ndarray->list conversion of just the missing rows beats
            # per-element casts without ever touching unselected records.
            selection = np.asarray(missing)
            for row, oid, dataset_id, lo, hi in zip(
                missing,
                self.oids[selection].tolist(),
                self.dataset_ids[selection].tolist(),
                self.lo[selection].tolist(),
                self.hi[selection].tolist(),
            ):
                objects[row] = SpatialObject(
                    oid=oid, dataset_id=dataset_id, box=Box(tuple(lo), tuple(hi))
                )
        return [objects[row] for row in rows.tolist()]
