"""The benchmark dataset suite.

`build_benchmark_suite` materialises the reproduction's stand-in for the
paper's ten Human Brain Project datasets: ``n_datasets`` synthetic
neuroscience datasets of ``objects_per_dataset`` objects each, written as
raw files onto a caller-supplied (or freshly created) simulated disk.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.dataset import Dataset, DatasetCatalog
from repro.data.generator import NeuroscienceDatasetGenerator, brain_universe
from repro.data.spatial_object import spatial_object_codec
from repro.geometry.box import Box
from repro.storage.cost_model import DiskModel
from repro.storage.disk import Disk
from repro.storage.pagedfile import PagedFile


@dataclass
class BenchmarkSuite:
    """Everything an experiment needs: the disk, the catalog and metadata."""

    disk: Disk
    catalog: DatasetCatalog
    generator: NeuroscienceDatasetGenerator
    seed: int

    @property
    def universe(self) -> Box:
        """The shared universe of all datasets."""
        return self.catalog.universe

    @property
    def datasets(self) -> list[Dataset]:
        """All datasets, ordered by id."""
        return self.catalog.datasets()

    def fork(
        self,
        buffer_pages: int | None = None,
        model: DiskModel | None = None,
        buffer_shards: int | None = None,
    ) -> "BenchmarkSuite":
        """An independent copy of the suite with byte-identical raw files.

        The benchmark harness generates the datasets once and forks the
        suite for every approach it runs, so each run gets its own disk
        (fresh I/O accounting, fresh buffer pool, no file-name clashes)
        without paying for data generation again.  The buffer pool's page
        budget and shard count carry over unless overridden.
        """
        new_disk = Disk(
            backend=self.disk.backend.clone(),
            model=model or self.disk.model,
            buffer_pages=(
                buffer_pages
                if buffer_pages is not None
                else self.disk.buffer_pool.capacity_pages
            ),
            buffer_shards=(
                buffer_shards
                if buffer_shards is not None
                else getattr(self.disk.buffer_pool, "n_shards", 1)
            ),
        )
        datasets = [
            Dataset(
                dataset_id=dataset.dataset_id,
                name=dataset.name,
                universe=dataset.universe,
                n_objects=dataset.n_objects,
                disk=new_disk,
                file=PagedFile(
                    new_disk,
                    dataset.file.name,
                    spatial_object_codec(dataset.dimension),
                ),
            )
            for dataset in self.datasets
        ]
        return BenchmarkSuite(
            disk=new_disk,
            catalog=DatasetCatalog(datasets),
            generator=self.generator,
            seed=self.seed,
        )


def build_benchmark_suite(
    n_datasets: int = 10,
    objects_per_dataset: int = 5_000,
    seed: int = 7,
    dimension: int = 3,
    disk: Disk | None = None,
    buffer_pages: int = 4096,
    model: DiskModel | None = None,
    buffer_shards: int = 1,
    compression: str | None = None,
) -> BenchmarkSuite:
    """Create the multi-dataset benchmark universe used by the experiments.

    Parameters mirror the paper's setup scaled down: ten datasets over the
    same brain volume.  ``buffer_pages`` bounds the memory footprint of
    every approach (the paper caps all techniques at the same 1 GB budget);
    with 4 KB pages the default of 4096 pages is a 16 MB budget, which keeps
    the same "data much larger than memory" regime at the reduced scale.
    ``compression`` compresses the raw dataset files' pages as they are
    written (``"zlib"``, or ``"zstd"`` when the interpreter ships a zstd
    module); since every fork shares the master's bytes, all engines read
    the same compressed pages and the per-page codec header keeps old
    uncompressed files readable side by side.
    """
    if n_datasets < 1:
        raise ValueError("n_datasets must be >= 1")
    if objects_per_dataset < 1:
        raise ValueError("objects_per_dataset must be >= 1")
    if disk is None:
        disk = Disk(model=model, buffer_pages=buffer_pages, buffer_shards=buffer_shards)
    universe = brain_universe(dimension=dimension)
    generator = NeuroscienceDatasetGenerator(universe=universe, seed=seed)
    datasets = generator.generate_datasets(
        disk=disk,
        n_datasets=n_datasets,
        objects_per_dataset=objects_per_dataset,
        compression=compression,
    )
    catalog = DatasetCatalog(datasets)
    return BenchmarkSuite(disk=disk, catalog=catalog, generator=generator, seed=seed)
