"""Structured JSON logging over the stdlib — off by default.

The engine's modules log through ordinary ``logging.getLogger``
loggers under the ``repro`` namespace at INFO/DEBUG.  With no handler
configured those records go nowhere (the stdlib last-resort handler
only prints WARNING and above), so the default run is silent.  Call
:func:`configure_json_logging` to attach a stream handler that renders
every record as one JSON object per line.
"""

from __future__ import annotations

import json
import logging
import time


class JsonLogFormatter(logging.Formatter):
    """One JSON object per record: timestamp, level, logger, message, extras."""

    #: ``LogRecord`` attributes that are not user-supplied extras.
    _STANDARD = frozenset(
        logging.LogRecord("", 0, "", 0, "", (), None).__dict__
    ) | {"message", "asctime", "taskName"}

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": record.created,
            "iso": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.gmtime(record.created)
            ),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in self._STANDARD and not key.startswith("_"):
                try:
                    json.dumps(value)
                except TypeError:
                    value = repr(value)
                payload[key] = value
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload)


def configure_json_logging(
    level: int = logging.INFO, stream=None
) -> logging.Handler:
    """Attach a JSON handler to the ``repro`` logger namespace.

    Idempotent per stream: calling twice replaces the previous handler
    rather than duplicating output.  Returns the handler so callers
    (tests) can detach it with ``logging.getLogger("repro").
    removeHandler(handler)``.
    """
    logger = logging.getLogger("repro")
    for existing in list(logger.handlers):
        if getattr(existing, "_repro_json", False):
            logger.removeHandler(existing)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonLogFormatter())
    handler._repro_json = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler
