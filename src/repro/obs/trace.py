"""Per-phase tracing: nested spans in a bounded thread-safe ring buffer.

A :class:`Tracer` is engine-scoped (one per :class:`~repro.core.odyssey.
SpaceOdyssey` when enabled).  Spans nest implicitly through a per-thread
stack — ``start_span`` inside an open span becomes its child — and
explicitly across threads: pool workers pass ``parent=`` because a fresh
executor thread has an empty stack.  Worker *processes* cannot carry
span objects at all, so they ship plain ``(name, start, duration)``
timing tuples back over the pool and the parent grafts them with
:meth:`Tracer.record_completed`.

Completed spans land in a ``deque(maxlen=capacity)`` ring buffer under a
lock; when full, the oldest span is evicted and counted.  Open spans are
not in the buffer — a span becomes visible at ``end_span``.

The disabled fast path is the module-level :func:`maybe_span` helper:
one ``is None`` branch, returning a shared no-op context manager, so an
engine without a tracer pays nothing measurable per instrumentation
site.  Tracing is observation only — no engine decision may read a span.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(slots=True)
class Span:
    """One traced operation: identity, parentage, timing and attributes.

    ``start_wall`` is ``time.time()`` (for correlating with external
    logs); ``start_perf`` is ``time.perf_counter()`` (for durations).
    ``duration_s`` is filled at ``end_span`` (grafted spans arrive with
    it already measured).
    """

    name: str
    trace_id: int
    span_id: int
    parent_id: int | None
    start_wall: float
    start_perf: float
    duration_s: float = 0.0
    attributes: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """A JSON-ready representation (used by the trace exporters)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_wall": self.start_wall,
            "duration_s": self.duration_s,
            "attributes": dict(self.attributes),
        }


class Tracer:
    """Produces nested spans into a bounded thread-safe ring buffer."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self._lock = threading.Lock()
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._evicted = 0
        self._next_span_id = itertools.count(1)
        self._next_trace_id = itertools.count(1)
        self._local = threading.local()

    # -- introspection ----------------------------------------------------- #

    @property
    def capacity(self) -> int:
        """Ring-buffer capacity in spans."""
        return self._capacity

    @property
    def evicted(self) -> int:
        """How many completed spans the ring buffer has dropped."""
        with self._lock:
            return self._evicted

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def finished(self) -> list[Span]:
        """A snapshot of the completed spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def drain(self) -> list[Span]:
        """Remove and return all completed spans, oldest first."""
        with self._lock:
            spans = list(self._spans)
            self._spans.clear()
            return spans

    def current_span(self) -> Span | None:
        """The innermost open span on *this* thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- span lifecycle ---------------------------------------------------- #

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def start_span(
        self, name: str, *, parent: Span | None = None, **attributes
    ) -> Span:
        """Open a span; it nests under ``parent`` or this thread's top.

        A span with no parent (explicit or implicit) starts a new trace.
        The returned span must be closed with :meth:`end_span` (or use
        the :meth:`span` context manager).
        """
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        # next() on itertools.count is atomic under the GIL.
        span = Span(
            name=name,
            trace_id=parent.trace_id if parent else next(self._next_trace_id),
            span_id=next(self._next_span_id),
            parent_id=parent.span_id if parent else None,
            start_wall=time.time(),
            start_perf=time.perf_counter(),
            attributes=dict(attributes) if attributes else {},
        )
        stack.append(span)
        return span

    def end_span(self, span: Span, **attributes) -> Span:
        """Close ``span``, record its duration and publish it to the ring."""
        span.duration_s = time.perf_counter() - span.start_perf
        if attributes:
            span.attributes.update(attributes)
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # tolerate out-of-order closure
            stack.remove(span)
        self._publish(span)
        return span

    @contextmanager
    def span(
        self, name: str, *, parent: Span | None = None, **attributes
    ) -> Iterator[Span]:
        """``with tracer.span("query"): ...`` — start/end as a context."""
        opened = self.start_span(name, parent=parent, **attributes)
        try:
            yield opened
        finally:
            self.end_span(opened)

    def record_completed(
        self,
        name: str,
        *,
        parent: Span | None = None,
        start_wall: float | None = None,
        duration_s: float = 0.0,
        **attributes,
    ) -> Span:
        """Graft an already-measured span (e.g. a process-worker timing).

        The span never touches the thread stack: workers measure with
        ``perf_counter`` in their own process and the parent records the
        result here, parented onto the phase span that dispatched them.
        """
        span = Span(
            name=name,
            trace_id=parent.trace_id if parent else next(self._next_trace_id),
            span_id=next(self._next_span_id),
            parent_id=parent.span_id if parent else None,
            start_wall=time.time() if start_wall is None else start_wall,
            start_perf=0.0,
            duration_s=duration_s,
            attributes=dict(attributes) if attributes else {},
        )
        self._publish(span)
        return span

    def event(self, name: str, *, parent: Span | None = None, **attributes) -> Span:
        """Record an instantaneous (zero-duration) span."""
        if parent is None:
            parent = self.current_span()
        return self.record_completed(name, parent=parent, **attributes)

    def _publish(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) == self._capacity:
                self._evicted += 1
            self._spans.append(span)


class _NullSpanContext:
    """Shared no-op context manager: the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpanContext()


def maybe_span(tracer: Tracer | None, name: str, *, parent: Span | None = None, **attributes):
    """``with maybe_span(tracer, "phase") as span:`` — one branch when off.

    Returns a shared stateless no-op context (yielding ``None``) when
    ``tracer`` is ``None``, so call sites stay branch-cheap with
    telemetry disabled; instrumentation must therefore guard attribute
    writes with ``if span is not None``.
    """
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, parent=parent, **attributes)
