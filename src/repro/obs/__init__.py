"""Unified telemetry: tracing, metrics and exporters.

The observability layer has three parts, all zero-dependency:

* :mod:`repro.obs.trace` — a :class:`Tracer` producing nested spans into
  a bounded thread-safe ring buffer, with explicit cross-thread
  parentage and grafting of worker-process timings;
* :mod:`repro.obs.metrics` — counters, gauges, mergeable log-bucketed
  histograms and a :class:`MetricsRegistry` that adopts every existing
  subsystem counter family into one atomic :class:`EngineSnapshot`;
* :mod:`repro.obs.export` — JSON and Prometheus-text exporters plus
  trace dumps, and :mod:`repro.obs.logs` — structured JSON logging over
  the stdlib (off by default).

The contract throughout is **observation only**: telemetry never feeds
back into any engine decision, and with tracing disabled every
instrumentation site costs a single ``is None`` branch
(:func:`repro.obs.trace.maybe_span`).  The differential fuzz oracle
(``tests/test_engine_fuzz.py``) runs engines with tracing fully enabled
against untraced references to prove results, reports, adaptive state
and on-disk bytes stay bit-identical.
"""

from repro.obs.export import (
    snapshot_to_json,
    snapshot_to_prometheus,
    spans_to_json,
    write_trace,
)
from repro.obs.logs import JsonLogFormatter, configure_json_logging
from repro.obs.metrics import (
    Counter,
    EngineSnapshot,
    Gauge,
    Histogram,
    HistogramSummary,
    MetricsRegistry,
)
from repro.obs.trace import Span, Tracer, maybe_span

__all__ = [
    "Counter",
    "EngineSnapshot",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "JsonLogFormatter",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "configure_json_logging",
    "maybe_span",
    "snapshot_to_json",
    "snapshot_to_prometheus",
    "spans_to_json",
    "write_trace",
]
