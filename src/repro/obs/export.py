"""Exporters: JSON and Prometheus text for snapshots, JSON for traces.

The Prometheus exposition follows the text format's conventions without
depending on any client library: dotted metric names are mangled to
``repro_``-prefixed underscore names, counters and gauges get ``# TYPE``
headers, and histograms expand to cumulative ``_bucket{le="..."}``
series plus ``_sum`` and ``_count``.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.obs.metrics import EngineSnapshot
from repro.obs.trace import Span, Tracer


def snapshot_to_json(snapshot: EngineSnapshot, *, indent: int | None = 2) -> str:
    """The snapshot as a JSON document."""
    return json.dumps(snapshot.to_dict(), indent=indent, sort_keys=True)


def _mangle(name: str) -> str:
    """``disk.io.pages_read`` -> ``repro_disk_io_pages_read``."""
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name.replace(".", "_")
    )
    return f"repro_{cleaned}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


def snapshot_to_prometheus(snapshot: EngineSnapshot) -> str:
    """The snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    for name in sorted(snapshot.counters):
        mangled = _mangle(name)
        lines.append(f"# TYPE {mangled} counter")
        lines.append(f"{mangled} {_format_value(snapshot.counters[name])}")
    for name in sorted(snapshot.gauges):
        mangled = _mangle(name)
        lines.append(f"# TYPE {mangled} gauge")
        lines.append(f"{mangled} {_format_value(snapshot.gauges[name])}")
    for name in sorted(snapshot.histograms):
        state = snapshot.histograms[name]
        mangled = _mangle(name)
        lines.append(f"# TYPE {mangled} histogram")
        cumulative = 0
        for bound, count in zip(state["bounds"], state["bucket_counts"]):
            cumulative += count
            lines.append(f'{mangled}_bucket{{le="{repr(float(bound))}"}} {cumulative}')
        cumulative += state.get("overflow", 0)
        lines.append(f'{mangled}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{mangled}_sum {repr(float(state['total']))}")
        lines.append(f"{mangled}_count {state['count']}")
    return "\n".join(lines) + "\n"


def spans_to_json(
    spans: Iterable[Span], *, evicted: int = 0, indent: int | None = 2
) -> str:
    """A span list as a JSON trace document (oldest span first)."""
    return json.dumps(
        {"evicted": evicted, "spans": [span.to_dict() for span in spans]},
        indent=indent,
    )


def write_trace(tracer: Tracer, path) -> int:
    """Dump the tracer's completed spans to ``path``; returns span count."""
    spans = tracer.finished()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(spans_to_json(spans, evicted=tracer.evicted))
    return len(spans)
