"""Metrics: counters, gauges, mergeable histograms and the registry.

The registry does not *own* most of the engine's numbers — they already
live in per-subsystem accumulators (``IOStats``, ``BufferCounters``,
``ServiceStats``, retry/fault counters, epoch bookkeeping).  Instead it
adopts each family through a lightweight adapter: a callable returning a
flat ``name -> value`` mapping, read at snapshot time.  That keeps the
hot paths untouched (no double counting, no extra locks) while
:meth:`MetricsRegistry.snapshot` still yields one coherent
:class:`EngineSnapshot` whose totals reconcile exactly with the legacy
counters they adapt.

:class:`Histogram` uses fixed log-spaced bucket bounds so that two
histograms with the same layout merge by adding bucket counts — the
property the serving layer needs to aggregate latency across services
and the benchmark harness needs to combine repeats.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Mapping


class Counter:
    """A monotonically increasing named value (thread-safe)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time named value: either set directly or computed.

    ``Gauge("x", callback=fn)`` reads ``fn()`` at observation time,
    which is how live engine state (epoch chain length, pinned readers)
    is surfaced without the engine pushing updates.
    """

    __slots__ = ("name", "_lock", "_value", "_callback")

    def __init__(
        self, name: str, *, callback: Callable[[], int | float] | None = None
    ) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value: int | float = 0
        self._callback = callback

    def set(self, value: int | float) -> None:
        if self._callback is not None:
            raise RuntimeError("callback gauges cannot be set")
        with self._lock:
            self._value = value

    @property
    def value(self) -> int | float:
        if self._callback is not None:
            return self._callback()
        with self._lock:
            return self._value


def log_bucket_bounds(
    base: float = 1e-6, growth: float = 2.0, count: int = 30
) -> tuple[float, ...]:
    """Fixed log-spaced upper bounds: ``base * growth**i``.

    The defaults span 1 µs to ~9 minutes at 2x resolution — wide enough
    for both per-page I/O and end-to-end service latency, narrow enough
    that two defaults-built histograms always merge.
    """
    if base <= 0 or growth <= 1.0 or count < 1:
        raise ValueError("need base > 0, growth > 1, count >= 1")
    return tuple(base * growth**i for i in range(count))


@dataclass(frozen=True, slots=True)
class HistogramSummary:
    """The digest of a histogram: count, sum, extremes and percentiles.

    Percentiles are bucket upper bounds (clamped to the observed
    maximum), so they are conservative within one bucket's resolution.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = 0.0
    maximum: float = 0.0
    p50: float = 0.0
    p90: float = 0.0
    p99: float = 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
        }


class Histogram:
    """Fixed log-spaced buckets; cheap to observe, mergeable by layout.

    ``bounds`` are inclusive upper bounds; values above the last bound
    land in the implicit overflow bucket (``+Inf`` in Prometheus terms).
    """

    __slots__ = ("name", "bounds", "_lock", "_counts", "_overflow",
                 "_count", "_total", "_min", "_max")

    def __init__(self, name: str, bounds: tuple[float, ...] | None = None) -> None:
        self.name = name
        self.bounds = tuple(bounds) if bounds is not None else log_bucket_bounds()
        if not self.bounds or list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("bounds must be non-empty and strictly increasing")
        self._lock = threading.Lock()
        self._counts = [0] * len(self.bounds)
        self._overflow = 0
        self._count = 0
        self._total = 0.0
        self._min = 0.0
        self._max = 0.0

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            if index < len(self._counts):
                self._counts[index] += 1
            else:
                self._overflow += 1
            if self._count == 0 or value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            self._count += 1
            self._total += value

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (same bucket layout only)."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        with other._lock:
            counts = list(other._counts)
            overflow = other._overflow
            count = other._count
            total = other._total
            minimum, maximum = other._min, other._max
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._overflow += overflow
            if count:
                if self._count == 0 or minimum < self._min:
                    self._min = minimum
                if maximum > self._max:
                    self._max = maximum
            self._count += count
            self._total += total

    def _percentile_locked(self, quantile: float) -> float:
        if self._count == 0:
            return 0.0
        rank = quantile * self._count
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, self._counts):
            cumulative += bucket_count
            if cumulative >= rank:
                return min(bound, self._max)
        return self._max

    def summary(self) -> HistogramSummary:
        with self._lock:
            return HistogramSummary(
                count=self._count,
                total=self._total,
                minimum=self._min,
                maximum=self._max,
                p50=self._percentile_locked(0.50),
                p90=self._percentile_locked(0.90),
                p99=self._percentile_locked(0.99),
            )

    def to_dict(self) -> dict:
        """Bucket-level state (for exporters): bounds, counts, digest."""
        with self._lock:
            counts = list(self._counts)
            overflow = self._overflow
        digest = self.summary().to_dict()
        digest["bounds"] = list(self.bounds)
        digest["bucket_counts"] = counts
        digest["overflow"] = overflow
        return digest


@dataclass(frozen=True, slots=True)
class EngineSnapshot:
    """One atomic, JSON-ready view of every registered metric.

    ``counters`` and ``gauges`` are flat dotted-name maps; ``histograms``
    maps name to the bucket-level dict of :meth:`Histogram.to_dict`.
    """

    taken_at: float
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "taken_at": self.taken_at,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }


class MetricsRegistry:
    """Named metric sources, snapshotted together.

    Sources are callables returning flat mappings so existing subsystem
    counters are adopted without modification; each source's keys are
    prefixed with its registered name (``"disk.io"`` + ``"pages_read"``
    -> ``"disk.io.pages_read"``).  A source that raises is skipped for
    that snapshot (a dead weakref'd service must not poison telemetry).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counter_sources: list[tuple[str, Callable[[], Mapping]]] = []
        self._gauge_sources: list[tuple[str, Callable[[], Mapping]]] = []
        self._counters: list[Counter] = []
        self._gauges: list[Gauge] = []
        self._histograms: list[Histogram] = []
        self._histogram_sources: list[tuple[str, Callable[[], Histogram | None]]] = []

    def add_counter_source(
        self, prefix: str, source: Callable[[], Mapping]
    ) -> None:
        """Adopt an existing cumulative counter family under ``prefix``."""
        with self._lock:
            self._counter_sources.append((prefix, source))

    def add_gauge_source(self, prefix: str, source: Callable[[], Mapping]) -> None:
        """Adopt an existing point-in-time family under ``prefix``."""
        with self._lock:
            self._gauge_sources.append((prefix, source))

    def counter(self, name: str) -> Counter:
        metric = Counter(name)
        with self._lock:
            self._counters.append(metric)
        return metric

    def gauge(self, name: str, *, callback=None) -> Gauge:
        metric = Gauge(name, callback=callback)
        with self._lock:
            self._gauges.append(metric)
        return metric

    def histogram(
        self, name: str, bounds: tuple[float, ...] | None = None
    ) -> Histogram:
        metric = Histogram(name, bounds)
        with self._lock:
            self._histograms.append(metric)
        return metric

    def add_histogram_source(
        self, name: str, source: Callable[[], Histogram | None]
    ) -> None:
        """Adopt a histogram owned elsewhere (read at snapshot time)."""
        with self._lock:
            self._histogram_sources.append((name, source))

    @staticmethod
    def _flatten(prefix: str, mapping: Mapping, into: dict) -> None:
        for key, value in mapping.items():
            name = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, Mapping):
                MetricsRegistry._flatten(name, value, into)
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                into[name] = value

    def snapshot(self) -> EngineSnapshot:
        """Read every source and metric into one :class:`EngineSnapshot`."""
        with self._lock:
            counter_sources = list(self._counter_sources)
            gauge_sources = list(self._gauge_sources)
            counters = list(self._counters)
            gauges = list(self._gauges)
            histograms = list(self._histograms)
            histogram_sources = list(self._histogram_sources)

        counter_values: dict = {}
        for metric in counters:
            counter_values[metric.name] = metric.value
        for prefix, source in counter_sources:
            try:
                self._flatten(prefix, source(), counter_values)
            except Exception:
                continue
        gauge_values: dict = {}
        for metric in gauges:
            gauge_values[metric.name] = metric.value
        for prefix, source in gauge_sources:
            try:
                self._flatten(prefix, source(), gauge_values)
            except Exception:
                continue
        histogram_values: dict = {}
        for metric in histograms:
            histogram_values[metric.name] = metric.to_dict()
        for name, source in histogram_sources:
            try:
                histogram = source()
            except Exception:
                continue
            if histogram is not None:
                histogram_values[name] = histogram.to_dict()
        return EngineSnapshot(
            taken_at=time.time(),
            counters=counter_values,
            gauges=gauge_values,
            histograms=histogram_values,
        )
