"""Experiment definitions: one function per figure of the paper's evaluation.

Every function builds fresh datasets (deterministic from the scale's seed),
generates the figure's workload, runs the relevant approaches through
:func:`repro.bench.runner.run_approach` and returns a structured result
object that :mod:`repro.bench.reporting` can print as the rows/series the
paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean

from repro.bench.approaches import (
    FIGURE4_APPROACHES,
    FIGURE5_APPROACHES,
    make_approach,
)
from repro.bench.runner import ApproachResult, run_approach
from repro.bench.scales import ExperimentScale, get_scale
from repro.data.suite import BenchmarkSuite, build_benchmark_suite
from repro.workload.builder import Workload, WorkloadBuilder
from repro.workload.combinations import CombinationGenerator
from repro.workload.ranges import ClusteredRangeGenerator, UniformRangeGenerator


# --------------------------------------------------------------------------- #
# Shared helpers
# --------------------------------------------------------------------------- #


def build_suite(scale: ExperimentScale) -> BenchmarkSuite:
    """A fresh benchmark suite for one experiment run (deterministic per seed)."""
    return build_benchmark_suite(
        n_datasets=scale.n_datasets,
        objects_per_dataset=scale.objects_per_dataset,
        seed=scale.seed,
        buffer_pages=scale.buffer_pages,
        model=scale.disk_model(),
    )


def build_workload(
    suite: BenchmarkSuite,
    scale: ExperimentScale,
    *,
    ranges: str,
    ids_distribution: str,
    datasets_per_query: int,
    n_cluster_centers: int | None = None,
    seed_offset: int = 0,
    sigma_query_sides: float = 1.0,
    seed: int | None = None,
) -> Workload:
    """The workload for one figure panel.

    ``ranges`` is ``"clustered"`` or ``"uniform"``; clustered ranges are
    centred on the data generator's microcircuit centres, exactly as the
    paper's clustered queries target populated brain regions (Figure 3).

    ``seed`` makes the workload RNG seed explicit; when omitted it is
    derived deterministically from the scale preset as before
    (``scale.seed + 1000 + seed_offset``).  Pass an explicit value when a
    test or benchmark must be reproducible independently of the scale.
    """
    if seed is None:
        seed = scale.seed + 1000 + seed_offset
    if ranges == "clustered":
        range_generator = ClusteredRangeGenerator(
            universe=suite.universe,
            volume_fraction=scale.query_volume_fraction,
            seed=seed,
            n_cluster_centers=n_cluster_centers or scale.n_cluster_centers,
            cluster_centers=suite.generator.microcircuit_centers,
            sigma_query_sides=sigma_query_sides,
        )
    elif ranges == "uniform":
        range_generator = UniformRangeGenerator(
            universe=suite.universe,
            volume_fraction=scale.query_volume_fraction,
            seed=seed,
        )
    else:
        raise ValueError(f"unknown range distribution {ranges!r}")
    combination_generator = CombinationGenerator(
        dataset_ids=suite.catalog.dataset_ids(),
        datasets_per_query=datasets_per_query,
        distribution=ids_distribution,
        seed=seed + 7,
    )
    description = (
        f"ranges={ranges}, ids={ids_distribution}, k={datasets_per_query}, "
        f"scale={scale.name}"
    )
    return WorkloadBuilder(range_generator, combination_generator).build(
        scale.n_queries, description=description
    )


# --------------------------------------------------------------------------- #
# Figure 4 — total processing cost vs number of datasets queried
# --------------------------------------------------------------------------- #


@dataclass(frozen=True, slots=True)
class Figure4Cell:
    """One bar of Figure 4: one approach at one x-axis position."""

    approach: str
    indexing_seconds: float
    querying_seconds: float

    @property
    def total_seconds(self) -> float:
        """Total workload processing time."""
        return self.indexing_seconds + self.querying_seconds


@dataclass
class Figure4Point:
    """One x-axis position of Figure 4 (a number of datasets queried)."""

    datasets_queried: int
    combinations_queried: int
    cells: dict[str, Figure4Cell] = field(default_factory=dict)
    odyssey_queries_within_grid_build: int | None = None

    def total(self, approach: str) -> float:
        """Total processing time of one approach at this point."""
        return self.cells[approach].total_seconds


@dataclass
class Figure4Result:
    """All points of one Figure 4 panel."""

    ids_distribution: str
    ranges: str
    scale: str
    n_queries: int
    approaches: tuple[str, ...]
    points: list[Figure4Point] = field(default_factory=list)

    def point(self, datasets_queried: int) -> Figure4Point:
        """Look up one x-axis position."""
        for point in self.points:
            if point.datasets_queried == datasets_queried:
                return point
        raise KeyError(f"no point for {datasets_queried} datasets queried")


def figure4(
    ids_distribution: str = "zipf",
    ranges: str = "clustered",
    scale: str | ExperimentScale = "small",
    datasets_queried: tuple[int, ...] = (1, 3, 5, 7, 9),
    approaches: tuple[str, ...] = FIGURE4_APPROACHES,
    batch_size: int = 1,
    workers: int = 1,
) -> Figure4Result:
    """Reproduce one panel of Figure 4.

    Panel (a): ``ids_distribution="zipf"``, clustered ranges.
    Panel (b): ``"heavy_hitter"``.  Panel (c): ``"self_similar"``.
    Panel (d): ``"uniform"`` with ``ranges="uniform"``.

    ``batch_size`` executes the workload in chunks of that many queries
    (approaches with a ``query_batch`` method use their batched engine);
    ``workers`` threads execute each chunk when above 1.  Results are
    identical at any worker count, but parallel page fetches may shift
    the simulated I/O timings slightly run-to-run — keep ``workers=1``
    for strictly deterministic figure numbers.
    """
    scale = get_scale(scale)
    valid_ks = tuple(k for k in datasets_queried if 1 <= k <= scale.n_datasets)
    result = Figure4Result(
        ids_distribution=ids_distribution,
        ranges=ranges,
        scale=scale.name,
        n_queries=scale.n_queries,
        approaches=approaches,
    )
    master_suite = build_suite(scale)
    for k in valid_ks:
        workload = build_workload(
            master_suite,
            scale,
            ranges=ranges,
            ids_distribution=ids_distribution,
            datasets_per_query=k,
            seed_offset=k,
        )
        point = Figure4Point(
            datasets_queried=k,
            combinations_queried=workload.n_combinations_queried(),
        )
        grid_indexing_seconds: float | None = None
        odyssey_result: ApproachResult | None = None
        for approach_name in approaches:
            suite = master_suite.fork()
            approach = make_approach(approach_name, suite, scale)
            run = run_approach(
                approach, workload, suite.disk, batch_size=batch_size, workers=workers
            )
            point.cells[approach_name] = Figure4Cell(
                approach=approach_name,
                indexing_seconds=run.indexing_seconds,
                querying_seconds=run.querying_seconds,
            )
            if approach_name == "Grid-1fE":
                grid_indexing_seconds = run.indexing_seconds
            if approach_name == "Odyssey":
                odyssey_result = run
        if grid_indexing_seconds is not None and odyssey_result is not None:
            point.odyssey_queries_within_grid_build = odyssey_result.queries_answered_within(
                grid_indexing_seconds
            )
        result.points.append(point)
    return result


# --------------------------------------------------------------------------- #
# Figure 5a/5b — per-query response times over the query sequence
# --------------------------------------------------------------------------- #


@dataclass
class Figure5Series:
    """The per-query time series of one approach."""

    approach: str
    indexing_seconds: float
    per_query_seconds: list[float]

    @property
    def total_seconds(self) -> float:
        """Total processing time (indexing plus all queries)."""
        return self.indexing_seconds + sum(self.per_query_seconds)

    def tail_mean(self, fraction: float = 0.2) -> float:
        """Mean per-query time over the last ``fraction`` of the sequence.

        Used to check convergence claims: Space Odyssey's tail should be
        close to the static indexes' steady-state query times.
        """
        count = max(1, int(len(self.per_query_seconds) * fraction))
        return mean(self.per_query_seconds[-count:])


@dataclass
class Figure5Result:
    """All series of one Figure 5 panel."""

    label: str
    ranges: str
    ids_distribution: str
    datasets_per_query: int
    scale: str
    series: dict[str, Figure5Series] = field(default_factory=dict)

    def get(self, approach: str) -> Figure5Series:
        """One approach's series."""
        return self.series[approach]


def _figure5_panel(
    label: str,
    ranges: str,
    ids_distribution: str,
    scale: str | ExperimentScale,
    approaches: tuple[str, ...],
    datasets_per_query: int = 5,
    n_cluster_centers: int | None = None,
    batch_size: int = 1,
    workers: int = 1,
) -> Figure5Result:
    scale = get_scale(scale)
    datasets_per_query = min(datasets_per_query, scale.n_datasets)
    master_suite = build_suite(scale)
    workload = build_workload(
        master_suite,
        scale,
        ranges=ranges,
        ids_distribution=ids_distribution,
        datasets_per_query=datasets_per_query,
        n_cluster_centers=n_cluster_centers,
        seed_offset=50,
    )
    result = Figure5Result(
        label=label,
        ranges=ranges,
        ids_distribution=ids_distribution,
        datasets_per_query=datasets_per_query,
        scale=scale.name,
    )
    for approach_name in approaches:
        suite = master_suite.fork()
        approach = make_approach(approach_name, suite, scale)
        run = run_approach(
            approach, workload, suite.disk, batch_size=batch_size, workers=workers
        )
        result.series[approach_name] = Figure5Series(
            approach=approach_name,
            indexing_seconds=run.indexing_seconds,
            per_query_seconds=run.per_query_seconds(),
        )
    return result


def figure5a(
    scale: str | ExperimentScale = "small",
    approaches: tuple[str, ...] = FIGURE5_APPROACHES,
    batch_size: int = 1,
    workers: int = 1,
) -> Figure5Result:
    """Figure 5a: clustered ranges, self-similar dataset ids, 5 datasets per query."""
    return _figure5_panel(
        label="fig5a",
        ranges="clustered",
        ids_distribution="self_similar",
        scale=scale,
        approaches=approaches,
        batch_size=batch_size,
        workers=workers,
    )


def figure5b(
    scale: str | ExperimentScale = "small",
    approaches: tuple[str, ...] = FIGURE5_APPROACHES,
    batch_size: int = 1,
    workers: int = 1,
) -> Figure5Result:
    """Figure 5b: uniform ranges, uniform dataset ids, 5 datasets per query."""
    return _figure5_panel(
        label="fig5b",
        ranges="uniform",
        ids_distribution="uniform",
        scale=scale,
        approaches=approaches,
        batch_size=batch_size,
        workers=workers,
    )


# --------------------------------------------------------------------------- #
# Figure 5c — effect of merging
# --------------------------------------------------------------------------- #


@dataclass
class Figure5cResult:
    """Odyssey with vs without merging, restricted to the popular combination."""

    scale: str
    popular_combination: tuple[int, ...]
    popular_query_count: int
    with_merging: list[float] = field(default_factory=list)
    without_merging: list[float] = field(default_factory=list)
    merges_performed: int = 0
    merge_files: int = 0

    @property
    def average_gain_percent(self) -> float:
        """Average per-query gain of merging, in percent (paper reports ~25 %)."""
        if not self.with_merging or not self.without_merging:
            return 0.0
        gains = [
            (without - with_) / without * 100.0
            for with_, without in zip(self.with_merging, self.without_merging)
            if without > 0
        ]
        return mean(gains) if gains else 0.0

    @property
    def total_gain_percent(self) -> float:
        """Gain on the summed time of the popular combination's queries."""
        total_without = sum(self.without_merging)
        total_with = sum(self.with_merging)
        if total_without <= 0:
            return 0.0
        return (total_without - total_with) / total_without * 100.0


def figure5c(
    scale: str | ExperimentScale = "small",
    datasets_per_query: int = 5,
    batch_size: int = 1,
    workers: int = 1,
) -> Figure5cResult:
    """Figure 5c: isolate the effect of merging partitions queried together.

    As in the paper, clustered queries use 5 (instead of 10) cluster centres
    so the popular combination's queries revisit the same areas, and only
    the queries requesting the most popular combination (under the Zipf
    distribution) are reported.
    """
    scale = get_scale(scale)
    datasets_per_query = min(datasets_per_query, scale.n_datasets)
    master_suite = build_suite(scale)
    # As in the paper, this experiment narrows the query workload so the
    # popular combination's queries revisit the same areas: 5 cluster
    # centres instead of 10, and tight query blobs around them.
    workload = build_workload(
        master_suite,
        scale,
        ranges="clustered",
        ids_distribution="zipf",
        datasets_per_query=datasets_per_query,
        n_cluster_centers=5,
        seed_offset=99,
        sigma_query_sides=0.5,
    )
    combination_counts: dict[frozenset[int], int] = {}
    for query in workload:
        combination_counts[query.combination] = combination_counts.get(query.combination, 0) + 1
    popular = max(combination_counts, key=combination_counts.get)
    popular_qids = {q.qid for q in workload if q.combination == popular}

    runs: dict[bool, list[float]] = {}
    merges_performed = 0
    merge_files = 0
    for enable_merging in (True, False):
        suite = master_suite.fork()
        approach_name = "Odyssey" if enable_merging else "Odyssey-NoMerge"
        approach = make_approach(approach_name, suite, scale)
        run = run_approach(
            approach, workload, suite.disk, batch_size=batch_size, workers=workers
        )
        runs[enable_merging] = [
            timing.simulated_seconds
            for timing in run.query_timings
            if timing.qid in popular_qids
        ]
        if enable_merging:
            merges_performed = approach.merger.merges_performed
            merge_files = len(approach.merge_directory)
    return Figure5cResult(
        scale=scale.name,
        popular_combination=tuple(sorted(popular)),
        popular_query_count=len(popular_qids),
        with_merging=runs[True],
        without_merging=runs[False],
        merges_performed=merges_performed,
        merge_files=merge_files,
    )
