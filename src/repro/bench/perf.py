"""Machine-readable performance snapshots (``repro bench --json``).

Unlike the figure experiments (whose metric is *simulated* disk time), a
perf snapshot measures the library's real wall-clock execution speed — the
numbers a contributor watches when optimising the engine itself — and
writes them as one JSON document so the repository can accumulate a
performance trajectory across commits (CI uploads a ``BENCH_<scale>.json``
artifact on every push).

One snapshot covers, per phase:

* **build** — generating the synthetic suite (wall seconds, raw page count);
* **first_touch** — the expensive first query pass that performs in-situ
  initial partitioning of every dataset;
* **steady_scalar** — a steady-state pass over the converged engine with
  the columnar hot path disabled (the scalar reference implementation);
* **steady_columnar** — the same pass with the columnar-native engine;
* **steady_batch** — the same workload through ``query_batch`` in chunks;
* **steady_parallel** — a worker-count sweep of the same batched workload
  through ``query_batch(..., workers=K)`` over a sharded buffer pool, one
  entry per requested ``K`` (``workers=1`` is the serial-batch baseline
  the parallel speedup is computed against); ``--executor process``
  drives the sweep through the GIL-free process pool instead of threads;
* **concurrent_batches** — the epoch-overlap phase: the batched workload
  through ``query_batch(..., snapshot=True)`` once from a single thread
  and once from two threads concurrently (each thread runs the full
  chunked pass).  The recorded ``overlap_ratio`` — concurrent wall over
  single wall — is the degree to which the lock-free MVCC read phase
  actually overlaps: 1.0 is perfect overlap, 2.0 is fully serialized;
* **steady_serve** — the serving phase: the workload is offered to a
  :class:`~repro.serve.QueryService` (dynamic batching with size and
  deadline triggers) under an **open-loop arrival process** from several
  client threads, reporting sustained QPS, p50/p99 latency and the
  batcher's flush behaviour — the metric a multi-tenant serving story is
  judged on.  The offered rate defaults to a fixed utilization of the
  measured batch-mode capacity so the phase records latency under load
  rather than at saturation;
* **fault_tolerance** (opt-in via ``--faults``) — the robustness phase:
  the same workload once through a seeded
  :class:`~repro.storage.faults.FaultInjectingBackend` behind the
  :class:`~repro.storage.retry.RetryingBackend` (recording faults
  injected, retries, corrupt reads detected and client-visible errors,
  plus the wall overhead against a fault-free pass), then a crash /
  recovery drill: a journaled engine is crashed mid-workload on a page
  mutation, :meth:`SpaceOdyssey.recover` replays the committed prefix,
  and the recovered engine resumes the remaining queries;

plus the derived speedups (columnar vs scalar, batch vs scalar, best
parallel worker count vs ``workers=1``) and page counts of every on-disk
structure after convergence.  ``--repeats N`` re-times each steady phase
N times and attaches ``{mean,std,min,max}_seconds`` stats next to the
legacy best-of ``wall_seconds``; ``--compression zlib`` builds the suite
on compressed raw files so decode overhead is part of the trajectory.
"""

from __future__ import annotations

import json
import platform
import tempfile
import threading
import time
from dataclasses import asdict, replace
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.bench.runner import generate_workload
from repro.bench.scales import ExperimentScale, get_scale
from repro.core.config import OdysseyConfig
from repro.core.odyssey import SpaceOdyssey
from repro.data.dataset import Dataset, DatasetCatalog
from repro.data.spatial_object import spatial_object_codec
from repro.data.suite import BenchmarkSuite, build_benchmark_suite
from repro.obs import write_trace
from repro.serve import run_open_loop
from repro.storage.backend import StorageBackend
from repro.storage.disk import Disk
from repro.storage.errors import SimulatedCrash
from repro.storage.faults import FaultInjectingBackend, FaultPlan
from repro.storage.pagedfile import PagedFile
from repro.storage.retry import RetryingBackend, RetryPolicy


def default_snapshot_path(scale: str | ExperimentScale) -> Path:
    """The conventional snapshot file name for one scale."""
    return Path(f"BENCH_{get_scale(scale).name}.json")


# The steady-state timing protocol — shared with the acceptance-bar tests
# in ``benchmarks/test_micro.py`` so the CI smoke and the BENCH_*.json
# trajectory can never measure different things.


def timed(fn) -> float:
    """Wall seconds of one call."""
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def best_of(repeats: int, fn) -> float:
    """The fastest of ``repeats`` calls of a timing function."""
    return min(fn() for _ in range(max(1, repeats)))


def timing_stats(repeats: int, fn) -> dict[str, Any]:
    """Mean ± std (and extremes) of ``repeats`` calls of a timing function.

    The workload generators are seeded, so repeated passes measure the
    identical query sequence — the spread is scheduler and allocator
    noise, which is exactly what the ``std_seconds`` field quantifies.
    Snapshots keep reporting best-of in their legacy ``wall_seconds``
    keys (robust to one-sided noise) and attach these stats alongside.
    """
    runs = [fn() for _ in range(max(1, repeats))]
    mean = sum(runs) / len(runs)
    variance = sum((run - mean) ** 2 for run in runs) / len(runs)
    return {
        "runs": len(runs),
        "mean_seconds": mean,
        "std_seconds": variance**0.5,
        "min_seconds": min(runs),
        "max_seconds": max(runs),
    }


def sequential_pass(odyssey: SpaceOdyssey, workload) -> None:
    """One sequential pass over a workload (the timed unit of every bar)."""
    for query in workload:
        odyssey.query(query.box, query.dataset_ids)


def measure_concurrent_batches(
    odyssey: SpaceOdyssey,
    workload,
    *,
    batch_size: int,
    repeats: int = 3,
    threads: int = 2,
) -> tuple[float, float]:
    """Time the epoch-snapshot overlap protocol on a converged engine.

    Returns ``(single_seconds, concurrent_seconds)``: the best-of wall
    time of one chunked ``query_batch(..., snapshot=True)`` pass from a
    single thread, and the best-of wall time for ``threads`` threads each
    running that same pass concurrently (released together by a barrier).
    Perfectly overlapping read phases keep the ratio near 1.0; a fully
    serialized engine pushes it toward ``threads``.

    Shared with the acceptance-bar smoke in ``benchmarks/test_micro.py``
    (the ``REPRO_EPOCH_OVERLAP_MIN`` bar) so CI and the ``BENCH_*.json``
    trajectory measure the same thing.
    """

    def snapshot_pass() -> None:
        for start in range(0, len(workload), batch_size):
            odyssey.query_batch(workload[start : start + batch_size], snapshot=True)

    snapshot_pass()  # warm the snapshot path off the clock
    single_seconds = best_of(repeats, lambda: timed(snapshot_pass))

    def concurrent_pass() -> float:
        gate = threading.Barrier(threads + 1)
        errors: list[BaseException] = []

        def worker() -> None:
            try:
                gate.wait()
                snapshot_pass()
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        gate.wait()
        begin = time.perf_counter()
        for thread in pool:
            thread.join()
        elapsed = time.perf_counter() - begin
        if errors:
            raise errors[0]
        return elapsed

    concurrent_pass()  # warm
    concurrent_seconds = best_of(repeats, concurrent_pass)
    return single_seconds, concurrent_seconds


def measure_serving(
    odyssey: SpaceOdyssey,
    workload,
    *,
    rate_qps: float,
    n_clients: int = 4,
    max_batch: int = 32,
    max_delay_ms: float = 5.0,
    workers: int | None = None,
) -> dict[str, Any]:
    """One open-loop serving measurement, returned as a JSON-ready phase.

    Starts a :class:`~repro.serve.QueryService` over the (already
    converged) engine, offers the workload at ``rate_qps`` from
    ``n_clients`` submitter threads, and merges the open-loop report
    (sustained QPS, p50/p99 latency) with the service's batching stats
    (flush-trigger breakdown, mean/max batch size).
    """
    service = odyssey.serve(
        max_batch=max_batch, max_delay_ms=max_delay_ms, workers=workers
    )
    try:
        report = run_open_loop(
            service, workload, rate_qps=rate_qps, n_clients=n_clients
        )
    finally:
        service.close()
    stats = service.stats
    phase = report.to_json()
    phase.update(
        {
            "max_batch": max_batch,
            "max_delay_ms": max_delay_ms,
            "workers": workers or 1,
            "batches": stats.batches,
            "mean_batch_size": stats.mean_batch_size,
            "max_batch_size": stats.max_batch_size,
            "size_flushes": stats.size_flushes,
            "deadline_flushes": stats.deadline_flushes,
            "drain_flushes": stats.drain_flushes,
            "fallbacks": stats.fallbacks,
        }
    )
    return phase


def _fork_with_backend(
    suite: BenchmarkSuite, wrap: Callable[[StorageBackend], StorageBackend]
) -> BenchmarkSuite:
    """An independent suite copy whose cloned backend is decorated by ``wrap``."""
    disk = Disk(
        backend=wrap(suite.disk.backend.clone()),
        model=suite.disk.model,
        buffer_pages=suite.disk.buffer_pool.capacity_pages,
        buffer_shards=getattr(suite.disk.buffer_pool, "n_shards", 1),
    )
    datasets = [
        Dataset(
            dataset_id=dataset.dataset_id,
            name=dataset.name,
            universe=dataset.universe,
            n_objects=dataset.n_objects,
            disk=disk,
            file=PagedFile(disk, dataset.file.name, spatial_object_codec(dataset.dimension)),
        )
        for dataset in suite.datasets
    ]
    return BenchmarkSuite(
        disk=disk,
        catalog=DatasetCatalog(datasets),
        generator=suite.generator,
        seed=suite.seed,
    )


def measure_fault_tolerance(
    suite: BenchmarkSuite,
    workload,
    *,
    seed: int = 23,
    config: OdysseyConfig | None = None,
    crash_after_mutations: int = 200,
) -> dict[str, Any]:
    """The robustness phase: a fault campaign and a crash/recovery drill.

    The campaign runs the workload on a fork whose backend injects seeded
    transient errors, corrupted reads and torn writes under the bounded
    retry layer, and records the retry/corruption counters alongside the
    wall overhead against a fault-free pass (``client_visible_errors`` is
    the retry layer's exhaustion count — zero means every fault was
    absorbed below the engine).  The drill journals a second fork, crashes
    it on the ``crash_after_mutations``-th page mutation, times
    :meth:`SpaceOdyssey.recover` replaying the committed prefix, and
    resumes the remaining queries on the recovered engine.
    """
    config = config or OdysseyConfig()

    # Fault-free reference pass of the same workload, for the overhead ratio.
    clean_engine = SpaceOdyssey(suite.fork().catalog, config)
    clean_seconds = timed(lambda: sequential_pass(clean_engine, workload))

    plan = FaultPlan(
        seed=seed,
        read_error_rate=0.03,
        write_error_rate=0.03,
        corrupt_read_rate=0.02,
        torn_write_rate=0.02,
    )
    policy = RetryPolicy(max_attempts=8, seed=seed)
    faulty = _fork_with_backend(
        suite,
        lambda backend: RetryingBackend(
            FaultInjectingBackend(backend, plan), policy, sleep=lambda _s: None
        ),
    )
    engine = SpaceOdyssey(faulty.catalog, config)
    campaign_seconds = timed(lambda: sequential_pass(engine, workload))
    retrying = faulty.disk.backend
    injected = retrying.inner.counters()
    absorbed = retrying.counters()
    campaign = {
        "wall_seconds": campaign_seconds,
        "clean_wall_seconds": clean_seconds,
        "overhead_vs_clean": campaign_seconds / clean_seconds
        if clean_seconds > 0
        else None,
        "faults_injected": asdict(injected),
        "total_faults_injected": sum(asdict(injected).values()),
        "retries": absorbed.retries,
        "corrupt_reads_detected": absorbed.corrupt_reads_detected,
        "client_visible_errors": absorbed.exhausted,
        "max_attempts": policy.max_attempts,
    }

    with tempfile.TemporaryDirectory(prefix="repro-recovery-") as tmp:
        journal_path = Path(tmp) / "manifest.journal"
        crash_suite = _fork_with_backend(
            suite,
            lambda backend: FaultInjectingBackend(
                backend, FaultPlan(seed=seed, crash_after_mutations=crash_after_mutations)
            ),
        )
        crashed = SpaceOdyssey(crash_suite.catalog, config, journal=journal_path)
        crash_fired = False
        try:
            sequential_pass(crashed, workload)
        except SimulatedCrash:
            crash_fired = True
        survivor = crash_suite.disk.backend
        survivor.disarm()  # restart on healthy hardware

        recovered_holder: list[SpaceOdyssey] = []
        recovery_seconds = timed(
            lambda: recovered_holder.append(
                SpaceOdyssey.recover(journal_path, backend=survivor)
            )
        )
        recovered = recovered_holder[0]
        replayed = recovered.summary().queries_executed
        resume_seconds = timed(
            lambda: sequential_pass(recovered, workload[replayed:])
        )
        recovery = {
            "crash_after_mutations": crash_after_mutations,
            "crash_fired": crash_fired,
            "queries_replayed": replayed,
            "recovery_wall_seconds": recovery_seconds,
            "queries_resumed": len(workload) - replayed,
            "resume_wall_seconds": resume_seconds,
            "final_queries_executed": recovered.summary().queries_executed,
        }

    return {"campaign": campaign, "recovery": recovery}


def run_perf_snapshot(
    scale: str | ExperimentScale = "small",
    *,
    n_queries: int = 64,
    batch_size: int = 32,
    seed: int = 23,
    repeats: int = 3,
    config: OdysseyConfig | None = None,
    workers: tuple[int, ...] = (1, 2, 4),
    buffer_shards: int = 8,
    concurrent_threads: int = 2,
    serve: bool = True,
    serve_repeats: int = 4,
    serve_rate_qps: float | None = None,
    serve_utilization: float = 0.7,
    serve_clients: int = 4,
    serve_max_batch: int | None = None,
    serve_max_delay_ms: float = 5.0,
    serve_workers: int | None = None,
    faults: bool = False,
    compression: str | None = None,
    executor: str = "thread",
    trace_path: str | Path | None = None,
) -> dict[str, Any]:
    """Measure one perf snapshot and return it as a JSON-ready dict.

    The workload is the uniform micro-benchmark shape: ``n_queries``
    uniform windows over ``datasets_per_query = 2`` combinations, seeded
    explicitly so snapshots are comparable run-to-run.  Steady-state
    passes are best-of-``repeats`` to shed scheduler noise.

    ``workers`` is the worker-count sweep of the parallel-batch phase;
    each count runs the batched workload through
    ``query_batch(..., workers=K)`` on its own converged engine whose
    disk uses ``buffer_shards`` lock-striped buffer-pool shards.  Pass an
    empty tuple to skip the sweep.

    ``concurrent_threads`` sizes the epoch-overlap phase: that many
    threads each run the full chunked workload through
    ``query_batch(..., snapshot=True)`` at once, against a single shared
    converged engine, and the wall ratio to a single-thread pass is
    recorded as ``overlap_ratio``.  Pass ``0`` (or disable
    ``snapshot_reads`` in the config) to skip the phase.

    ``serve=True`` adds the open-loop serving phase: the workload,
    repeated ``serve_repeats`` times for stable percentiles, is offered
    to a dynamic-batching :class:`~repro.serve.QueryService` from
    ``serve_clients`` threads.  The offered rate is ``serve_rate_qps``
    when given, otherwise ``serve_utilization`` times the capacity the
    batch phase just measured — latency under load, not at saturation.
    ``serve_max_batch`` defaults to ``batch_size``.

    ``faults=True`` adds the fault-tolerance phase (see
    :func:`measure_fault_tolerance`): a seeded fault campaign under the
    retry layer plus a crash/recovery drill, recording retry, corruption
    and recovery counters in the snapshot.

    ``compression`` compresses the raw dataset files' pages at build time
    (``"zlib"``, or ``"zstd"`` when available); every fork then reads the
    same compressed bytes, so the steady-state phases measure the decode
    cost honestly and ``phases["build"]["raw_pages"]`` shows the page
    savings.  ``executor`` selects the pool flavour of the worker sweep —
    ``"process"`` runs it through the GIL-free process executor.

    Every steady phase and sweep entry carries a ``stats`` block (mean ±
    std over the seed-repeated passes, see :func:`timing_stats`) next to
    its legacy best-of ``wall_seconds``.
    """
    scale = get_scale(scale)
    config = config or OdysseyConfig()
    if executor not in ("thread", "process"):
        raise ValueError("executor must be 'thread' or 'process'")
    phases: dict[str, dict[str, Any]] = {}

    suite_holder: list[BenchmarkSuite] = []

    def build() -> None:
        suite_holder.append(
            build_benchmark_suite(
                n_datasets=scale.n_datasets,
                objects_per_dataset=scale.objects_per_dataset,
                seed=scale.seed,
                buffer_pages=0,
                model=scale.disk_model(),
                compression=compression,
            )
        )

    build_seconds = timed(build)
    suite = suite_holder[0]
    phases["build"] = {
        "wall_seconds": build_seconds,
        "datasets": scale.n_datasets,
        "objects": suite.catalog.total_objects(),
        "raw_pages": suite.catalog.total_pages(),
        "compression": compression,
    }

    workload = list(
        generate_workload(
            suite.universe,
            suite.catalog.dataset_ids(),
            n_queries,
            seed=seed,
            datasets_per_query=min(2, scale.n_datasets),
            volume_fraction=5e-3,
            ranges="uniform",
            ids_distribution="uniform",
        )
    )

    def converged(engine_config: OdysseyConfig) -> tuple[SpaceOdyssey, float]:
        odyssey = SpaceOdyssey(suite.fork().catalog, engine_config)
        return odyssey, timed(lambda: sequential_pass(odyssey, workload))

    scalar_engine, _ = converged(replace(config, columnar=False))
    columnar_engine, first_touch_seconds = converged(config)
    batch_engine, _ = converged(config)
    phases["first_touch"] = {
        "wall_seconds": first_touch_seconds,
        "queries": len(workload),
    }

    # Warm each engine once more, then time seed-repeated passes.
    for engine in (scalar_engine, columnar_engine):
        sequential_pass(engine, workload)
    scalar_stats = timing_stats(
        repeats, lambda: timed(lambda: sequential_pass(scalar_engine, workload))
    )
    scalar_seconds = scalar_stats["min_seconds"]
    columnar_stats = timing_stats(
        repeats, lambda: timed(lambda: sequential_pass(columnar_engine, workload))
    )
    columnar_seconds = columnar_stats["min_seconds"]

    def run_batched() -> None:
        for start in range(0, len(workload), batch_size):
            batch_engine.query_batch(workload[start : start + batch_size])

    run_batched()
    batch_stats = timing_stats(repeats, lambda: timed(run_batched))
    batch_seconds = batch_stats["min_seconds"]

    # Observability phase: the identical batched pass with per-phase
    # tracing enabled, so the snapshot trajectory records what the
    # telemetry layer costs when it is actually on (disabled tracing is
    # one predicate per span site and is part of every other phase).
    tracer = batch_engine.enable_tracing(capacity=65536)
    try:
        run_batched()  # warm the traced path (span allocation, ring)
        traced_stats = timing_stats(repeats, lambda: timed(run_batched))
        traced_seconds = traced_stats["min_seconds"]
        spans_recorded = len(tracer) + tracer.evicted
        trace_file: str | None = None
        if trace_path is not None:
            write_trace(tracer, trace_path)
            trace_file = str(trace_path)
    finally:
        batch_engine.disable_tracing()
    phases["observability"] = {
        "untraced_seconds": batch_seconds,
        "traced_seconds": traced_seconds,
        "overhead_ratio": traced_seconds / batch_seconds
        if batch_seconds > 0
        else None,
        "spans_recorded": spans_recorded,
        "spans_evicted": tracer.evicted,
        "trace_path": trace_file,
        "stats": traced_stats,
    }

    # Parallel-batch worker sweep: each worker count gets its own engine
    # (converged identically — the oracle guarantees state equality) over
    # a sharded buffer pool so lock striping is measured, not serialized.
    sweep: list[dict[str, Any]] = []
    for worker_count in workers:
        forked = suite.fork(buffer_shards=buffer_shards)
        engine = SpaceOdyssey(forked.catalog, config)

        def run_parallel(k: int = worker_count, odyssey: SpaceOdyssey = engine) -> None:
            for start in range(0, len(workload), batch_size):
                odyssey.query_batch(
                    workload[start : start + batch_size], workers=k, executor=executor
                )

        run_parallel()  # converge + warm
        stats = timing_stats(repeats, lambda: timed(run_parallel))
        seconds = stats["min_seconds"]
        sweep.append(
            {
                "workers": worker_count,
                "wall_seconds": seconds,
                "queries_per_second": len(workload) / seconds if seconds > 0 else None,
                "stats": stats,
            }
        )

    for name, seconds, stats in (
        ("steady_scalar", scalar_seconds, scalar_stats),
        ("steady_columnar", columnar_seconds, columnar_stats),
        ("steady_batch", batch_seconds, batch_stats),
    ):
        phases[name] = {
            "wall_seconds": seconds,
            "queries_per_second": len(workload) / seconds if seconds > 0 else None,
            "stats": stats,
        }
    phases["steady_batch"]["batch_size"] = batch_size
    if sweep:
        phases["steady_parallel"] = {
            "batch_size": batch_size,
            "buffer_shards": buffer_shards,
            "executor": executor,
            "sweep": sweep,
        }

    # Epoch-overlap phase: how well two concurrent snapshot-batch streams
    # overlap on the lock-free MVCC read path (only meaningful when the
    # engine keeps epoch machinery at all).
    if config.snapshot_reads and concurrent_threads > 1:
        epoch_engine = SpaceOdyssey(
            suite.fork(buffer_shards=buffer_shards).catalog, config
        )
        sequential_pass(epoch_engine, workload)  # converge off the clock
        single_seconds, concurrent_seconds = measure_concurrent_batches(
            epoch_engine,
            workload,
            batch_size=batch_size,
            repeats=repeats,
            threads=concurrent_threads,
        )
        phases["concurrent_batches"] = {
            "batch_size": batch_size,
            "threads": concurrent_threads,
            "single_seconds": single_seconds,
            "concurrent_seconds": concurrent_seconds,
            "overlap_ratio": concurrent_seconds / single_seconds
            if single_seconds > 0
            else None,
            "queries_per_second": concurrent_threads * len(workload) / concurrent_seconds
            if concurrent_seconds > 0
            else None,
        }

    if serve:
        serve_engine = SpaceOdyssey(suite.fork(buffer_shards=buffer_shards).catalog, config)
        sequential_pass(serve_engine, workload)  # converge off the clock
        capacity_qps = len(workload) / batch_seconds if batch_seconds > 0 else None
        rate = serve_rate_qps or (
            serve_utilization * capacity_qps if capacity_qps else 100.0
        )
        serve_workload = [query for _ in range(max(1, serve_repeats)) for query in workload]
        phases["steady_serve"] = measure_serving(
            serve_engine,
            serve_workload,
            rate_qps=rate,
            n_clients=serve_clients,
            max_batch=serve_max_batch or batch_size,
            max_delay_ms=serve_max_delay_ms,
            workers=serve_workers,
        )
        phases["steady_serve"]["capacity_qps"] = capacity_qps
        phases["steady_serve"]["utilization_target"] = (
            serve_utilization if serve_rate_qps is None else None
        )

    if faults:
        phases["fault_tolerance"] = measure_fault_tolerance(
            suite, workload, seed=seed, config=config
        )

    summary = columnar_engine.summary()
    disk = columnar_engine.disk
    pages = {
        "raw": suite.catalog.total_pages(),
        "partitions": sum(
            tree.file.num_pages() for tree in columnar_engine.trees.values()
        ),
        "merge": summary.merge_pages,
        "total_files": len(disk.list_files()),
    }

    # The labelled speedup is only meaningful against a workers=1 entry;
    # a sweep without one still records its timings but derives no ratio.
    parallel_speedup: float | None = None
    baseline = next((e for e in sweep if e["workers"] == 1), None)
    if baseline is not None:
        fastest = min(sweep, key=lambda e: e["wall_seconds"])
        if fastest["wall_seconds"] > 0:
            parallel_speedup = baseline["wall_seconds"] / fastest["wall_seconds"]

    return {
        "kind": "repro-perf-snapshot",
        "version": 2,
        "scale": scale.name,
        "seed": seed,
        "n_queries": n_queries,
        "batch_size": batch_size,
        "repeats": repeats,
        "workers": list(workers),
        "executor": executor,
        "compression": compression,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "phases": phases,
        "pages": pages,
        "engine": {
            "partitions": summary.total_partitions,
            "max_tree_depth": summary.max_tree_depth,
            "merge_files": summary.merge_files,
            "merges_performed": summary.merges_performed,
        },
        "speedups": {
            "sequential_columnar_vs_scalar": scalar_seconds / columnar_seconds
            if columnar_seconds > 0
            else None,
            "batch_vs_scalar": scalar_seconds / batch_seconds
            if batch_seconds > 0
            else None,
            "batch_vs_sequential_columnar": columnar_seconds / batch_seconds
            if batch_seconds > 0
            else None,
            "parallel_best_vs_workers1": parallel_speedup,
        },
    }


def format_serve_phase(phase: dict[str, Any]) -> str:
    """A human-readable digest of one serving phase / serve snapshot."""
    latency = phase.get("latency_ms")
    mean_batch = phase.get("mean_batch_size")
    if latency is not None:
        latency_line = (
            f"latency: p50 {latency['p50_ms']:.2f} ms, "
            f"p99 {latency['p99_ms']:.2f} ms, max {latency['max_ms']:.2f} ms"
        )
    else:
        latency_line = "latency: n/a"
    batching_line = (
        f"batching: max_batch {phase['max_batch']}, "
        f"max_delay {phase['max_delay_ms']:.1f} ms — {phase['batches']} batches"
        + (f", mean size {mean_batch:.1f}" if mean_batch is not None else "")
        + f", flushes: {phase['size_flushes']} size / "
        f"{phase['deadline_flushes']} deadline / {phase['drain_flushes']} drain"
    )
    return "\n".join(
        [
            "serving (open loop): "
            f"offered {phase['offered_qps']:.1f} q/s, "
            f"sustained {phase['sustained_qps']:.1f} q/s, "
            f"{phase['completed']}/{phase['queries']} completed "
            f"over {phase['n_clients']} clients",
            latency_line,
            batching_line,
        ]
    )


def run_serve_snapshot(
    scale: str | ExperimentScale = "small",
    *,
    n_queries: int = 64,
    serve_repeats: int = 4,
    rate_qps: float | None = None,
    utilization: float = 0.7,
    n_clients: int = 4,
    max_batch: int = 32,
    max_delay_ms: float = 5.0,
    workers: int | None = None,
    seed: int = 23,
    config: OdysseyConfig | None = None,
    buffer_shards: int = 8,
) -> dict[str, Any]:
    """A standalone serving benchmark (the ``serve-bench`` CLI command).

    Builds the scale's suite, converges one engine with a sequential
    pass, estimates batch-mode capacity with one batched pass, then
    offers the workload (repeated ``serve_repeats`` times) through the
    dynamic batcher at ``rate_qps`` — or at ``utilization`` times the
    measured capacity when no explicit rate is given.
    """
    scale = get_scale(scale)
    config = config or OdysseyConfig()
    suite = build_benchmark_suite(
        n_datasets=scale.n_datasets,
        objects_per_dataset=scale.objects_per_dataset,
        seed=scale.seed,
        buffer_pages=0,
        model=scale.disk_model(),
        buffer_shards=buffer_shards,
    )
    workload = list(
        generate_workload(
            suite.universe,
            suite.catalog.dataset_ids(),
            n_queries,
            seed=seed,
            datasets_per_query=min(2, scale.n_datasets),
            volume_fraction=5e-3,
            ranges="uniform",
            ids_distribution="uniform",
        )
    )
    engine = SpaceOdyssey(suite.catalog, config)
    sequential_pass(engine, workload)  # converge (in-situ first touch)
    batch_seconds = timed(
        lambda: engine.query_batch(workload, workers=workers)
    )
    capacity_qps = len(workload) / batch_seconds if batch_seconds > 0 else None
    rate = rate_qps or (utilization * capacity_qps if capacity_qps else 100.0)
    serve_workload = [query for _ in range(max(1, serve_repeats)) for query in workload]
    phase = measure_serving(
        engine,
        serve_workload,
        rate_qps=rate,
        n_clients=n_clients,
        max_batch=max_batch,
        max_delay_ms=max_delay_ms,
        workers=workers,
    )
    phase["capacity_qps"] = capacity_qps
    phase["utilization_target"] = utilization if rate_qps is None else None
    return {
        "kind": "repro-serve-snapshot",
        "version": 1,
        "scale": scale.name,
        "seed": seed,
        "n_queries": n_queries,
        "serve_repeats": serve_repeats,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "platform": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "serve": phase,
    }


def save_snapshot(snapshot: dict[str, Any], path: str | Path) -> Path:
    """Write a snapshot to ``path`` as indented JSON and return the path."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True))
    return path


def format_snapshot_summary(snapshot: dict[str, Any]) -> str:
    """A short human-readable digest of one snapshot."""
    phases = snapshot["phases"]
    speedups = snapshot["speedups"]
    def _stats_suffix(block: dict[str, Any]) -> str:
        stats = block.get("stats")
        if not stats:
            return ""
        return (
            f"   {stats['mean_seconds']:.3f} ± {stats['std_seconds']:.3f} s "
            f"over {stats['runs']}"
        )

    lines = [
        f"perf snapshot — scale: {snapshot['scale']}, "
        f"{snapshot['n_queries']} queries, batch size {snapshot['batch_size']}"
        + (
            f", compression {snapshot['compression']}"
            if snapshot.get("compression")
            else ""
        ),
        "",
        f"{'phase':<18}{'wall seconds':>14}{'queries/s':>12}   mean ± std",
    ]
    for name in ("build", "first_touch", "steady_scalar", "steady_columnar", "steady_batch"):
        phase = phases[name]
        qps = phase.get("queries_per_second")
        # ``is not None``, not truthiness: a legitimate 0.0 q/s (degenerate
        # timing) must print as 0.0, not as a missing value.
        lines.append(
            f"{name:<18}{phase['wall_seconds']:>14.3f}"
            + (f"{qps:>12.1f}" if qps is not None else f"{'-':>12}")
            + _stats_suffix(phase)
        )
    parallel_phase = phases.get("steady_parallel", {})
    executor = parallel_phase.get("executor", "thread")
    for entry in parallel_phase.get("sweep", []):
        name = f"{executor} w={entry['workers']}"
        qps = entry.get("queries_per_second")
        lines.append(
            f"{name:<18}{entry['wall_seconds']:>14.3f}"
            + (f"{qps:>12.1f}" if qps is not None else f"{'-':>12}")
            + _stats_suffix(entry)
        )
    def _ratio(value: float | None) -> str:
        return f"{value:.2f}x" if value is not None else "n/a"

    lines.append("")
    lines.append(
        "speedups: "
        f"sequential columnar {_ratio(speedups['sequential_columnar_vs_scalar'])}, "
        f"batch {_ratio(speedups['batch_vs_scalar'])} vs the scalar reference"
    )
    if speedups.get("parallel_best_vs_workers1") is not None:
        lines.append(
            "parallel batch: best worker count is "
            f"{_ratio(speedups['parallel_best_vs_workers1'])} vs workers=1"
        )
    observability = phases.get("observability")
    if observability is not None:
        lines.append(
            f"tracing overhead: {_ratio(observability.get('overhead_ratio'))} "
            f"the untraced batched pass "
            f"({observability['spans_recorded']} spans recorded)"
        )
    concurrent = phases.get("concurrent_batches")
    if concurrent is not None:
        ratio = concurrent.get("overlap_ratio")
        lines.append(
            f"epoch overlap: {concurrent['threads']} concurrent snapshot-batch "
            f"streams at {_ratio(ratio)} the single-stream wall "
            f"(1.0 = perfect overlap, {concurrent['threads']:.1f} = serialized)"
        )
    serve_phase = phases.get("steady_serve")
    if serve_phase is not None:
        lines.append("")
        lines.append(format_serve_phase(serve_phase))
    fault_phase = phases.get("fault_tolerance")
    if fault_phase is not None:
        campaign = fault_phase["campaign"]
        recovery = fault_phase["recovery"]
        lines.append("")
        lines.append(
            "fault campaign: "
            f"{campaign['total_faults_injected']} faults injected, "
            f"{campaign['retries']} retries, "
            f"{campaign['corrupt_reads_detected']} corrupt reads detected, "
            f"{campaign['client_visible_errors']} client-visible errors "
            f"(overhead {_ratio(campaign['overhead_vs_clean'])} vs fault-free)"
        )
        lines.append(
            "recovery drill: "
            + (
                f"crashed on page mutation {recovery['crash_after_mutations']}, "
                if recovery["crash_fired"]
                else "no crash fired (workload too small), "
            )
            + f"replayed {recovery['queries_replayed']} committed queries in "
            f"{recovery['recovery_wall_seconds']:.3f} s, "
            f"resumed the remaining {recovery['queries_resumed']}"
        )
    lines.append(
        f"pages: raw {snapshot['pages']['raw']}, "
        f"partitions {snapshot['pages']['partitions']}, "
        f"merge {snapshot['pages']['merge']}"
    )
    return "\n".join(lines)
