"""Registry of the competing approaches.

The paper's Figure 4 compares FLAT-Ain1, FLAT-1fE, RTree-Ain1, Grid-1fE and
Space Odyssey; Figure 5 uses the most competitive static approaches
(FLAT-Ain1 and Grid-1fE) plus Odyssey, and Figure 5c adds Odyssey with
merging disabled.  The registry also exposes RTree-1fE and Grid-Ain1 so the
full strategy matrix can be explored.
"""

from __future__ import annotations

from typing import Callable

from repro.baselines.flat import FLATIndex
from repro.baselines.grid import GridIndex
from repro.baselines.interface import MultiDatasetIndex
from repro.baselines.rtree import STRRTree
from repro.baselines.strategies import AllInOne, OneForEach
from repro.bench.scales import ExperimentScale
from repro.core.config import OdysseyConfig
from repro.core.odyssey import SpaceOdyssey
from repro.data.suite import BenchmarkSuite

ApproachFactory = Callable[[BenchmarkSuite, ExperimentScale], MultiDatasetIndex]


def _grid_factory(suite: BenchmarkSuite, scale: ExperimentScale):
    def factory(name: str) -> GridIndex:
        return GridIndex(
            disk=suite.disk,
            name=name,
            universe=suite.universe,
            cells_per_dim=scale.grid_cells_per_dim,
            build_buffer_objects=scale.grid_build_buffer_objects,
        )

    return factory


def _rtree_factory(suite: BenchmarkSuite, scale: ExperimentScale):
    def factory(name: str) -> STRRTree:
        return STRRTree(
            disk=suite.disk,
            name=name,
            universe=suite.universe,
            build_memory_pages=scale.build_memory_pages,
        )

    return factory


def _flat_factory(suite: BenchmarkSuite, scale: ExperimentScale):
    def factory(name: str) -> FLATIndex:
        return FLATIndex(
            disk=suite.disk,
            name=name,
            universe=suite.universe,
            build_memory_pages=scale.build_memory_pages,
        )

    return factory


def odyssey_config_for(scale: ExperimentScale, enable_merging: bool = True) -> OdysseyConfig:
    """The paper's Space Odyssey configuration, bound to a scale preset."""
    return OdysseyConfig(
        refinement_threshold=4.0,
        partitions_per_level=64,
        merge_threshold=2,
        min_merge_combination=3,
        merge_space_budget_pages=scale.merge_space_budget_pages,
        enable_merging=enable_merging,
    )


APPROACHES: dict[str, ApproachFactory] = {
    "FLAT-Ain1": lambda suite, scale: AllInOne(
        suite.catalog, _flat_factory(suite, scale), "FLAT-Ain1"
    ),
    "FLAT-1fE": lambda suite, scale: OneForEach(
        suite.catalog, _flat_factory(suite, scale), "FLAT-1fE"
    ),
    "RTree-Ain1": lambda suite, scale: AllInOne(
        suite.catalog, _rtree_factory(suite, scale), "RTree-Ain1"
    ),
    "RTree-1fE": lambda suite, scale: OneForEach(
        suite.catalog, _rtree_factory(suite, scale), "RTree-1fE"
    ),
    "Grid-1fE": lambda suite, scale: OneForEach(
        suite.catalog, _grid_factory(suite, scale), "Grid-1fE"
    ),
    "Grid-Ain1": lambda suite, scale: AllInOne(
        suite.catalog, _grid_factory(suite, scale), "Grid-Ain1"
    ),
    "Odyssey": lambda suite, scale: SpaceOdyssey(
        suite.catalog, odyssey_config_for(scale, enable_merging=True)
    ),
    "Odyssey-NoMerge": lambda suite, scale: SpaceOdyssey(
        suite.catalog, odyssey_config_for(scale, enable_merging=False)
    ),
}

#: The approaches shown in the paper's Figure 4.
FIGURE4_APPROACHES: tuple[str, ...] = (
    "FLAT-Ain1",
    "FLAT-1fE",
    "RTree-Ain1",
    "Grid-1fE",
    "Odyssey",
)

#: The approaches shown in the paper's Figure 5a/5b.
FIGURE5_APPROACHES: tuple[str, ...] = ("FLAT-Ain1", "Grid-1fE", "Odyssey")


def make_approach(
    name: str, suite: BenchmarkSuite, scale: ExperimentScale
) -> MultiDatasetIndex:
    """Instantiate an approach by name over a benchmark suite."""
    try:
        factory = APPROACHES[name]
    except KeyError:
        raise ValueError(
            f"unknown approach {name!r}; expected one of {sorted(APPROACHES)}"
        ) from None
    return factory(suite, scale)
