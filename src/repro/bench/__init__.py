"""Benchmark harness: regenerates every figure of the paper's evaluation.

* :mod:`repro.bench.scales` — experiment scale presets (the paper's setup
  scaled down to laptop-friendly sizes while preserving the ratios that
  drive the results);
* :mod:`repro.bench.approaches` — registry of the competing approaches
  (FLAT-Ain1, FLAT-1fE, RTree-Ain1, RTree-1fE, Grid-1fE, Grid-Ain1,
  Odyssey, Odyssey without merging);
* :mod:`repro.bench.runner` — runs one approach over one workload, charging
  indexing and querying to the simulated disk and recording per-query
  timings;
* :mod:`repro.bench.experiments` — the experiment definitions for
  Figure 4a–d and Figure 5a–c;
* :mod:`repro.bench.reporting` — text tables and JSON dumps;
* :mod:`repro.bench.perf` — wall-clock perf snapshots
  (``repro bench --json BENCH_<scale>.json``) tracking the library's own
  execution speed across commits.
"""

from repro.bench.approaches import APPROACHES, make_approach
from repro.bench.experiments import figure4, figure5a, figure5b, figure5c
from repro.bench.perf import run_perf_snapshot, save_snapshot
from repro.bench.runner import ApproachResult, QueryTiming, run_approach
from repro.bench.scales import SCALES, ExperimentScale

__all__ = [
    "APPROACHES",
    "ApproachResult",
    "ExperimentScale",
    "QueryTiming",
    "SCALES",
    "figure4",
    "figure5a",
    "figure5b",
    "figure5c",
    "make_approach",
    "run_approach",
    "run_perf_snapshot",
    "save_snapshot",
]
