"""Experiment scale presets.

The paper runs on ~50 GB of data (10 datasets × ~5 GB) with 1000 queries of
volume 10⁻⁴ % of the brain volume, a 1 GB memory cap and 60³ grid cells.
A pure-Python reproduction cannot run at that scale, so the presets below
shrink the absolute sizes while preserving the *ratios* that produce the
paper's behaviour:

* the data is much larger than the memory budget available to index builds
  and the buffer pool (so builds are external and queries are disk-bound);
* the query volume is a small fraction of the universe but large enough to
  retrieve a handful of objects;
* the grid resolution keeps a few objects per occupied cell, as a tuned
  60³ grid does at the paper's scale.

``paper`` is the closest feasible approximation and is intended for long
runs from the CLI; the test-suite and pytest benchmarks use ``tiny`` and
``small``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.storage.cost_model import DiskModel


@dataclass(frozen=True, slots=True)
class ExperimentScale:
    """All size parameters of one experiment run.

    ``seek_time_s`` and ``transfer_rate_bytes_per_s`` define the simulated
    disk at this scale.  The seek latency is scaled down together with the
    datasets: keeping the paper's 8 ms seek against datasets that are three
    orders of magnitude smaller would make every workload purely
    seek-bound and erase the indexing-vs-querying balance the figures rely
    on, so each preset picks a seek time that preserves the paper's ratio
    of "random accesses per query" cost to "full pass over a dataset" cost
    as closely as the preset's data size allows (see DESIGN.md).
    """

    name: str
    n_datasets: int = 10
    objects_per_dataset: int = 5_000
    n_queries: int = 300
    query_volume_fraction: float = 1e-4
    n_cluster_centers: int = 10
    grid_cells_per_dim: int = 16
    buffer_pages: int = 512
    build_memory_pages: int = 128
    grid_build_buffer_objects: int = 20_000
    merge_space_budget_pages: int | None = None
    seek_time_s: float = 5e-5
    transfer_rate_bytes_per_s: float = 150e6
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_datasets < 1:
            raise ValueError("n_datasets must be >= 1")
        if self.objects_per_dataset < 1:
            raise ValueError("objects_per_dataset must be >= 1")
        if self.n_queries < 1:
            raise ValueError("n_queries must be >= 1")
        if not 0 < self.query_volume_fraction <= 1:
            raise ValueError("query_volume_fraction must be in (0, 1]")
        if self.seek_time_s < 0:
            raise ValueError("seek_time_s must be non-negative")

    def disk_model(self) -> DiskModel:
        """The disk cost model for this scale."""
        return DiskModel(
            seek_time_s=self.seek_time_s,
            transfer_rate_bytes_per_s=self.transfer_rate_bytes_per_s,
        )

    def scaled(self, **overrides) -> "ExperimentScale":
        """A copy with some fields overridden (used by ablations and tests)."""
        return replace(self, **overrides)


#: Named presets.  ``tiny`` is for unit/integration tests, ``small`` for the
#: pytest benchmarks, ``medium`` for CLI runs that should finish in minutes,
#: ``paper`` for the closest-feasible overnight reproduction.
SCALES: dict[str, ExperimentScale] = {
    "tiny": ExperimentScale(
        name="tiny",
        n_datasets=6,
        objects_per_dataset=3_000,
        n_queries=60,
        query_volume_fraction=1e-4,
        grid_cells_per_dim=8,
        buffer_pages=256,
        build_memory_pages=16,
        grid_build_buffer_objects=5_000,
        seek_time_s=5e-5,
    ),
    "small": ExperimentScale(
        name="small",
        n_datasets=10,
        objects_per_dataset=10_000,
        n_queries=120,
        query_volume_fraction=1e-4,
        grid_cells_per_dim=10,
        buffer_pages=512,
        build_memory_pages=64,
        grid_build_buffer_objects=20_000,
        seek_time_s=1e-4,
    ),
    "medium": ExperimentScale(
        name="medium",
        n_datasets=10,
        objects_per_dataset=40_000,
        n_queries=400,
        query_volume_fraction=5e-5,
        grid_cells_per_dim=16,
        buffer_pages=2_048,
        build_memory_pages=128,
        grid_build_buffer_objects=80_000,
        seek_time_s=2e-4,
    ),
    "paper": ExperimentScale(
        name="paper",
        n_datasets=10,
        objects_per_dataset=120_000,
        n_queries=1_000,
        query_volume_fraction=1e-5,
        grid_cells_per_dim=30,
        buffer_pages=8_192,
        build_memory_pages=256,
        grid_build_buffer_objects=250_000,
        seek_time_s=5e-4,
    ),
}


def get_scale(scale: str | ExperimentScale) -> ExperimentScale:
    """Resolve a scale given by name or pass an explicit scale through."""
    if isinstance(scale, ExperimentScale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; expected one of {sorted(SCALES)}"
        ) from None
