"""Running one approach over one workload.

The runner reproduces the paper's measurement methodology:

* the up-front build (if any) is charged to *indexing time*;
* every query is preceded by dropping the buffer pool (the paper overwrites
  the OS caches before each query) and its cost is charged to *querying
  time*, recorded per query so Figure 5's per-query series can be drawn;
* all times are *simulated seconds* from the disk cost model (the wall
  clock of the simulation itself is also recorded, but carries no meaning
  for the reproduction).

Batched execution adds one axis: with ``batch_size > 1`` the workload is
cut into chunks and each chunk is executed through the approach's
``query_batch`` method when it has one (Space Odyssey's batched engine);
approaches without batch support fall back to per-query execution within
the chunk.  The buffer pool is then dropped once per *batch* rather than
once per query — amortising the cache drop is part of what batching buys —
and a batch's simulated time is attributed evenly to its queries so the
aggregate figures stay comparable.

Workload generation for benchmarks and tests goes through
:func:`generate_workload`, which takes an **explicit seed** so that any
run — differential test, cost regression, micro-benchmark — is
reproducible run-to-run without depending on a scale preset's implicit
seed arithmetic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.baselines.interface import MultiDatasetIndex, result_keys
from repro.data.dataset import DatasetCatalog
from repro.geometry.box import Box
from repro.storage.cost_model import IOStats
from repro.storage.disk import Disk
from repro.workload.builder import Workload, WorkloadBuilder
from repro.workload.combinations import CombinationGenerator
from repro.workload.query import RangeQuery
from repro.workload.ranges import ClusteredRangeGenerator, UniformRangeGenerator


@dataclass(frozen=True, slots=True)
class QueryTiming:
    """Timing and result size of one query."""

    qid: int
    simulated_seconds: float
    n_results: int
    n_datasets: int


@dataclass
class ApproachResult:
    """Everything measured while running one approach over one workload."""

    approach: str
    indexing_seconds: float = 0.0
    querying_seconds: float = 0.0
    query_timings: list[QueryTiming] = field(default_factory=list)
    indexing_io: IOStats | None = None
    querying_io: IOStats | None = None
    wall_seconds: float = 0.0
    total_results: int = 0
    validation_failures: int = 0

    @property
    def total_seconds(self) -> float:
        """Total simulated processing time (indexing + querying)."""
        return self.indexing_seconds + self.querying_seconds

    @property
    def n_queries(self) -> int:
        """Number of queries executed."""
        return len(self.query_timings)

    def per_query_seconds(self) -> list[float]:
        """The per-query simulated times in sequence order."""
        return [timing.simulated_seconds for timing in self.query_timings]

    def queries_answered_within(self, budget_seconds: float) -> int:
        """How many queries complete within a simulated time budget.

        Used for the paper's "by the time Grid has finished indexing,
        Space Odyssey has already answered half the queries" claim: the
        budget is the competitor's indexing time and the count includes the
        adaptive approach's own indexing work (its indexing_seconds are 0).
        """
        spent = self.indexing_seconds
        answered = 0
        for timing in self.query_timings:
            spent += timing.simulated_seconds
            if spent > budget_seconds:
                break
            answered += 1
        return answered


def run_approach(
    approach: MultiDatasetIndex,
    workload: Workload | Iterable[RangeQuery],
    disk: Disk,
    *,
    clear_cache_before_queries: bool = True,
    validate_against: MultiDatasetIndex | None = None,
    batch_size: int = 1,
    workers: int = 1,
) -> ApproachResult:
    """Build (if needed) and run every query of the workload.

    Parameters
    ----------
    approach:
        The approach under test.
    workload:
        The query sequence.
    disk:
        The simulated disk all structures live on (its statistics are used
        to attribute costs).
    clear_cache_before_queries:
        Drop the buffer pool before every query (or, with ``batch_size >
        1``, before every batch), as the paper does.  Leave enabled for
        experiments; tests may disable it to exercise caching.
    validate_against:
        Optional oracle; when given, each query's answer is compared and
        mismatches counted (the oracle's own I/O is excluded from timing by
        snapshotting around it).
    batch_size:
        Execute the workload in chunks of this many queries.  Chunks go
        through the approach's ``query_batch`` method when it exists;
        otherwise queries of a chunk run one at a time.  A batch's
        simulated time is split evenly over its queries in
        :attr:`ApproachResult.query_timings`.
    workers:
        Thread count for batched chunks: values above 1 are forwarded to
        ``query_batch(chunk, workers=...)`` (Space Odyssey's parallel
        executor) and require ``batch_size > 1``.  Results, reports and
        adaptive state are identical to ``workers=1``, but the simulated
        I/O *timings* may vary slightly run-to-run: threads fetch pages
        in scheduler-dependent order, which shifts head-position
        classification and cache hit patterns (see
        :mod:`repro.core.parallel`).  For strictly deterministic
        simulated figures — the paper-reproduction numbers — keep
        ``workers=1``.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if workers > 1 and batch_size == 1:
        raise ValueError("workers > 1 requires batch_size > 1 (nothing to fan out)")
    result = ApproachResult(approach=approach.name)
    wall_start = time.perf_counter()

    before_build = disk.stats_snapshot()
    approach.build()
    after_build = disk.stats_snapshot()
    build_delta = after_build.delta_since(before_build)
    result.indexing_seconds = build_delta.simulated_seconds
    result.indexing_io = build_delta

    queries = list(workload)
    batched = batch_size > 1 and callable(getattr(approach, "query_batch", None))
    querying_start = disk.stats_snapshot()
    for start in range(0, len(queries), batch_size):
        chunk = queries[start : start + batch_size]
        if clear_cache_before_queries:
            disk.clear_cache()
            disk.reset_head()
        if batched:
            before = disk.stats_snapshot()
            batch_result = (
                approach.query_batch(chunk, workers=workers)
                if workers > 1
                else approach.query_batch(chunk)
            )
            delta = disk.stats_snapshot().delta_since(before)
            share = delta.simulated_seconds / len(chunk)
            answers = list(batch_result.results)
            for query, answer in zip(chunk, answers):
                result.query_timings.append(
                    QueryTiming(
                        qid=query.qid,
                        simulated_seconds=share,
                        n_results=len(answer),
                        n_datasets=query.n_datasets,
                    )
                )
        else:
            answers = []
            for query in chunk:
                before = disk.stats_snapshot()
                answers.append(approach.query(query.box, query.dataset_ids))
                delta = disk.stats_snapshot().delta_since(before)
                result.query_timings.append(
                    QueryTiming(
                        qid=query.qid,
                        simulated_seconds=delta.simulated_seconds,
                        n_results=len(answers[-1]),
                        n_datasets=query.n_datasets,
                    )
                )
        for answer in answers:
            result.total_results += len(answer)
        if validate_against is not None:
            for query, answer in zip(chunk, answers):
                oracle_before = disk.stats_snapshot()
                expected = validate_against.query(query.box, query.dataset_ids)
                oracle_delta = disk.stats_snapshot().delta_since(oracle_before)
                # Remove the oracle's I/O from the approach's accounting by
                # rebasing the querying snapshot.
                querying_start = _shift_snapshot(querying_start, oracle_delta)
                if result_keys(answer) != result_keys(expected):
                    result.validation_failures += 1
    querying_delta = disk.stats_snapshot().delta_since(querying_start)
    result.querying_io = querying_delta
    result.querying_seconds = sum(t.simulated_seconds for t in result.query_timings)
    result.wall_seconds = time.perf_counter() - wall_start
    return result


def _shift_snapshot(snapshot: IOStats, delta: IOStats) -> IOStats:
    """Advance a snapshot by ``delta`` so foreign I/O is excluded from totals."""
    return IOStats(
        pages_read=snapshot.pages_read + delta.pages_read,
        pages_written=snapshot.pages_written + delta.pages_written,
        seeks=snapshot.seeks + delta.seeks,
        cache_hits=snapshot.cache_hits + delta.cache_hits,
        io_seconds=snapshot.io_seconds + delta.io_seconds,
        cpu_seconds=snapshot.cpu_seconds + delta.cpu_seconds,
        reads_by_kind={
            key: snapshot.reads_by_kind.get(key, 0) + delta.reads_by_kind.get(key, 0)
            for key in delta.reads_by_kind
        },
    )


def brute_force_oracle(catalog: DatasetCatalog) -> MultiDatasetIndex:
    """Convenience constructor for the validation oracle."""
    from repro.baselines.interface import BruteForceScan

    return BruteForceScan(catalog)


def generate_workload(
    universe: Box,
    dataset_ids: Sequence[int],
    n_queries: int,
    *,
    seed: int,
    volume_fraction: float = 1e-4,
    datasets_per_query: int = 3,
    ranges: str = "uniform",
    ids_distribution: str = "uniform",
    cluster_centers: Sequence[Sequence[float]] | None = None,
    description: str = "",
) -> Workload:
    """A reproducible workload from one explicit seed.

    Both generators are seeded deterministically from ``seed`` (the range
    generator with ``seed`` itself, the combination generator with ``seed +
    1``), so two calls with the same arguments produce identical query
    sequences run-to-run and machine-to-machine — which is what the
    differential-oracle tests, the cost regressions and the batch
    micro-benchmarks rely on.
    """
    if ranges == "uniform":
        range_generator: UniformRangeGenerator | ClusteredRangeGenerator = (
            UniformRangeGenerator(
                universe=universe, volume_fraction=volume_fraction, seed=seed
            )
        )
    elif ranges == "clustered":
        range_generator = ClusteredRangeGenerator(
            universe=universe,
            volume_fraction=volume_fraction,
            seed=seed,
            cluster_centers=cluster_centers,
        )
    else:
        raise ValueError(f"unknown range distribution {ranges!r}")
    combination_generator = CombinationGenerator(
        dataset_ids=list(dataset_ids),
        datasets_per_query=datasets_per_query,
        distribution=ids_distribution,
        seed=seed + 1,
    )
    return WorkloadBuilder(range_generator, combination_generator).build(
        n_queries,
        description=description
        or f"ranges={ranges}, ids={ids_distribution}, seed={seed}",
    )
