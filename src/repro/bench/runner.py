"""Running one approach over one workload.

The runner reproduces the paper's measurement methodology:

* the up-front build (if any) is charged to *indexing time*;
* every query is preceded by dropping the buffer pool (the paper overwrites
  the OS caches before each query) and its cost is charged to *querying
  time*, recorded per query so Figure 5's per-query series can be drawn;
* all times are *simulated seconds* from the disk cost model (the wall
  clock of the simulation itself is also recorded, but carries no meaning
  for the reproduction).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.baselines.interface import MultiDatasetIndex, result_keys
from repro.data.dataset import DatasetCatalog
from repro.storage.cost_model import IOStats
from repro.storage.disk import Disk
from repro.workload.builder import Workload
from repro.workload.query import RangeQuery


@dataclass(frozen=True, slots=True)
class QueryTiming:
    """Timing and result size of one query."""

    qid: int
    simulated_seconds: float
    n_results: int
    n_datasets: int


@dataclass
class ApproachResult:
    """Everything measured while running one approach over one workload."""

    approach: str
    indexing_seconds: float = 0.0
    querying_seconds: float = 0.0
    query_timings: list[QueryTiming] = field(default_factory=list)
    indexing_io: IOStats | None = None
    querying_io: IOStats | None = None
    wall_seconds: float = 0.0
    total_results: int = 0
    validation_failures: int = 0

    @property
    def total_seconds(self) -> float:
        """Total simulated processing time (indexing + querying)."""
        return self.indexing_seconds + self.querying_seconds

    @property
    def n_queries(self) -> int:
        """Number of queries executed."""
        return len(self.query_timings)

    def per_query_seconds(self) -> list[float]:
        """The per-query simulated times in sequence order."""
        return [timing.simulated_seconds for timing in self.query_timings]

    def queries_answered_within(self, budget_seconds: float) -> int:
        """How many queries complete within a simulated time budget.

        Used for the paper's "by the time Grid has finished indexing,
        Space Odyssey has already answered half the queries" claim: the
        budget is the competitor's indexing time and the count includes the
        adaptive approach's own indexing work (its indexing_seconds are 0).
        """
        spent = self.indexing_seconds
        answered = 0
        for timing in self.query_timings:
            spent += timing.simulated_seconds
            if spent > budget_seconds:
                break
            answered += 1
        return answered


def run_approach(
    approach: MultiDatasetIndex,
    workload: Workload | Iterable[RangeQuery],
    disk: Disk,
    *,
    clear_cache_before_queries: bool = True,
    validate_against: MultiDatasetIndex | None = None,
) -> ApproachResult:
    """Build (if needed) and run every query of the workload.

    Parameters
    ----------
    approach:
        The approach under test.
    workload:
        The query sequence.
    disk:
        The simulated disk all structures live on (its statistics are used
        to attribute costs).
    clear_cache_before_queries:
        Drop the buffer pool before every query, as the paper does.  Leave
        enabled for experiments; tests may disable it to exercise caching.
    validate_against:
        Optional oracle; when given, each query's answer is compared and
        mismatches counted (the oracle's own I/O is excluded from timing by
        snapshotting around it).
    """
    result = ApproachResult(approach=approach.name)
    wall_start = time.perf_counter()

    before_build = disk.stats.snapshot()
    approach.build()
    after_build = disk.stats.snapshot()
    build_delta = after_build.delta_since(before_build)
    result.indexing_seconds = build_delta.simulated_seconds
    result.indexing_io = build_delta

    querying_start = disk.stats.snapshot()
    for query in workload:
        if clear_cache_before_queries:
            disk.clear_cache()
            disk.reset_head()
        before = disk.stats.snapshot()
        answer = approach.query(query.box, query.dataset_ids)
        delta = disk.stats.delta_since(before)
        result.query_timings.append(
            QueryTiming(
                qid=query.qid,
                simulated_seconds=delta.simulated_seconds,
                n_results=len(answer),
                n_datasets=query.n_datasets,
            )
        )
        result.total_results += len(answer)
        if validate_against is not None:
            oracle_before = disk.stats.snapshot()
            expected = validate_against.query(query.box, query.dataset_ids)
            oracle_delta = disk.stats.delta_since(oracle_before)
            # Remove the oracle's I/O from the approach's accounting by
            # rebasing the querying snapshot.
            querying_start = _shift_snapshot(querying_start, oracle_delta)
            if result_keys(answer) != result_keys(expected):
                result.validation_failures += 1
    querying_delta = disk.stats.delta_since(querying_start)
    result.querying_io = querying_delta
    result.querying_seconds = sum(t.simulated_seconds for t in result.query_timings)
    result.wall_seconds = time.perf_counter() - wall_start
    return result


def _shift_snapshot(snapshot: IOStats, delta: IOStats) -> IOStats:
    """Advance a snapshot by ``delta`` so foreign I/O is excluded from totals."""
    return IOStats(
        pages_read=snapshot.pages_read + delta.pages_read,
        pages_written=snapshot.pages_written + delta.pages_written,
        seeks=snapshot.seeks + delta.seeks,
        cache_hits=snapshot.cache_hits + delta.cache_hits,
        io_seconds=snapshot.io_seconds + delta.io_seconds,
        cpu_seconds=snapshot.cpu_seconds + delta.cpu_seconds,
        reads_by_kind={
            key: snapshot.reads_by_kind.get(key, 0) + delta.reads_by_kind.get(key, 0)
            for key in delta.reads_by_kind
        },
    )


def brute_force_oracle(catalog: DatasetCatalog) -> MultiDatasetIndex:
    """Convenience constructor for the validation oracle."""
    from repro.baselines.interface import BruteForceScan

    return BruteForceScan(catalog)
