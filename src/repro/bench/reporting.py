"""Text and JSON reporting of experiment results.

These functions print the same rows and series the paper's figures report:
Figure 4 becomes a table of indexing/querying/total simulated seconds per
approach and per number of datasets queried; Figure 5 becomes per-query time
series summaries (first query, median, tail) plus the raw series in JSON for
plotting.
"""

from __future__ import annotations

import json
from dataclasses import asdict, is_dataclass
from pathlib import Path
from statistics import median
from typing import Any

from repro.bench.experiments import (
    Figure4Result,
    Figure5Result,
    Figure5cResult,
)


def _fmt(seconds: float) -> str:
    return f"{seconds:10.2f}"


def format_figure4_table(result: Figure4Result) -> str:
    """Figure 4 as a text table (one block per x-axis position)."""
    lines = [
        f"Figure 4 — ranges: {result.ranges}, dataset ids: {result.ids_distribution}, "
        f"scale: {result.scale}, {result.n_queries} queries "
        f"(simulated seconds)",
        "",
    ]
    header = f"{'#datasets (#combos)':<22}" + "".join(
        f"{name:>14}" for name in result.approaches
    )
    lines.append(header)
    lines.append("-" * len(header))
    for kind in ("indexing", "querying", "total"):
        lines.append(f"[{kind}]")
        for point in result.points:
            label = f"{point.datasets_queried} ({point.combinations_queried})"
            row = f"{label:<22}"
            for name in result.approaches:
                cell = point.cells[name]
                if kind == "indexing":
                    value = cell.indexing_seconds
                elif kind == "querying":
                    value = cell.querying_seconds
                else:
                    value = cell.total_seconds
                row += f"{value:>14.2f}"
            lines.append(row)
        lines.append("")
    lines.append("[queries Odyssey answers before Grid-1fE finishes indexing]")
    for point in result.points:
        answered = point.odyssey_queries_within_grid_build
        if answered is not None:
            lines.append(
                f"  {point.datasets_queried} datasets: {answered} of {result.n_queries}"
            )
    return "\n".join(lines)


def format_figure5_summary(result: Figure5Result) -> str:
    """Figure 5a/5b as a text summary of each approach's per-query series."""
    lines = [
        f"Figure 5 ({result.label}) — ranges: {result.ranges}, dataset ids: "
        f"{result.ids_distribution}, #datasets queried: {result.datasets_per_query}, "
        f"scale: {result.scale} (simulated seconds)",
        "",
        f"{'approach':<14}{'indexing':>12}{'first query':>14}{'median query':>14}"
        f"{'tail mean':>12}{'total':>12}",
    ]
    for name, series in result.series.items():
        per_query = series.per_query_seconds
        lines.append(
            f"{name:<14}"
            f"{_fmt(series.indexing_seconds)!s:>12}"
            f"{per_query[0]:>14.4f}"
            f"{median(per_query):>14.4f}"
            f"{series.tail_mean():>12.4f}"
            f"{series.total_seconds:>12.2f}"
        )
    return "\n".join(lines)


def format_figure5c_summary(result: Figure5cResult) -> str:
    """Figure 5c as a text summary of the merging ablation."""
    lines = [
        f"Figure 5c — effect of merging (scale: {result.scale})",
        f"most popular combination: {result.popular_combination} "
        f"(queried {result.popular_query_count} times)",
        f"merge operations performed: {result.merges_performed}, "
        f"merge files: {result.merge_files}",
        f"average per-query gain from merging: {result.average_gain_percent:.1f}% "
        f"(paper reports ~25%)",
        f"gain on total time of the popular combination: {result.total_gain_percent:.1f}%",
    ]
    return "\n".join(lines)


def to_jsonable(value: Any) -> Any:
    """Recursively convert experiment results into JSON-serialisable data."""
    if is_dataclass(value) and not isinstance(value, type):
        return {key: to_jsonable(item) for key, item in asdict(value).items()}
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(item) for item in value]
    return value


def save_json(result: Any, path: str | Path) -> Path:
    """Write an experiment result to a JSON file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_jsonable(result), indent=2, sort_keys=True))
    return path
