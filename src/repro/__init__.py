"""Space Odyssey — efficient exploration of scientific data.

A from-scratch Python reproduction of the system described in
"Space Odyssey: Efficient Exploration of Scientific Data"
(Pavlovic et al., ExploreDB/PODS 2016): adaptive, in-situ indexing of
multiple spatial datasets plus physical co-location of the areas queried
together, evaluated against static spatial indexes (FLAT, STR R-tree,
uniform Grid) on a simulated paged disk.

The most common entry points are re-exported here::

    from repro import SpaceOdyssey, OdysseyConfig, build_benchmark_suite
    from repro.geometry import Box
"""

from repro.baselines import (
    AllInOne,
    BruteForceScan,
    FLATIndex,
    GridIndex,
    OneForEach,
    STRRTree,
)
from repro.core import (
    BatchResult,
    OdysseyConfig,
    QueryBatch,
    RecoveryError,
    SpaceOdyssey,
)
from repro.data import (
    BenchmarkSuite,
    Dataset,
    DatasetCatalog,
    NeuroscienceDatasetGenerator,
    SpatialObject,
    build_benchmark_suite,
)
from repro.geometry import Box
from repro.serve import QueryService, ServiceClosed, ServiceDegraded, ServiceStats
from repro.storage import Disk, DiskModel
from repro.workload import (
    ClusteredRangeGenerator,
    CombinationDistribution,
    CombinationGenerator,
    RangeQuery,
    UniformRangeGenerator,
    Workload,
    WorkloadBuilder,
)

__version__ = "1.0.0"

__all__ = [
    "AllInOne",
    "BatchResult",
    "BenchmarkSuite",
    "Box",
    "BruteForceScan",
    "ClusteredRangeGenerator",
    "CombinationDistribution",
    "CombinationGenerator",
    "Dataset",
    "DatasetCatalog",
    "Disk",
    "DiskModel",
    "FLATIndex",
    "GridIndex",
    "NeuroscienceDatasetGenerator",
    "OdysseyConfig",
    "OneForEach",
    "QueryBatch",
    "QueryService",
    "RangeQuery",
    "RecoveryError",
    "STRRTree",
    "ServiceClosed",
    "ServiceDegraded",
    "ServiceStats",
    "SpaceOdyssey",
    "SpatialObject",
    "UniformRangeGenerator",
    "Workload",
    "WorkloadBuilder",
    "build_benchmark_suite",
    "__version__",
]
