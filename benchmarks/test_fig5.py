"""Figure 5 — per-query response times and the effect of merging."""

from __future__ import annotations

import statistics

import pytest

from repro.bench.experiments import figure5a, figure5b, figure5c
from repro.bench.reporting import (
    format_figure5_summary,
    format_figure5c_summary,
)


def _record_series(benchmark, result):
    for name, series in result.series.items():
        benchmark.extra_info[name] = {
            "indexing_s": round(series.indexing_seconds, 4),
            "first_query_s": round(series.per_query_seconds[0], 6),
            "median_query_s": round(statistics.median(series.per_query_seconds), 6),
            "tail_mean_s": round(series.tail_mean(), 6),
            "total_s": round(series.total_seconds, 4),
        }
    print()
    print(format_figure5_summary(result))


@pytest.mark.benchmark(group="figure5")
def test_fig5a_clustered_self_similar(benchmark, scale):
    """Figure 5a: per-query times, clustered ranges, self-similar ids, k=5."""
    result = benchmark.pedantic(lambda: figure5a(scale=scale), rounds=1, iterations=1)
    _record_series(benchmark, result)
    odyssey = result.get("Odyssey")
    # Convergence (paper C5): the first query is the most expensive and the
    # tail converges to within an order of magnitude of the static indexes.
    assert odyssey.per_query_seconds[0] == max(odyssey.per_query_seconds)
    assert odyssey.tail_mean() < odyssey.per_query_seconds[0] / 3
    assert odyssey.indexing_seconds == 0.0
    flat = result.get("FLAT-Ain1")
    assert flat.indexing_seconds > odyssey.total_seconds / 2


@pytest.mark.benchmark(group="figure5")
def test_fig5b_uniform_uniform(benchmark, scale):
    """Figure 5b: per-query times, uniform ranges and ids, k=5."""
    result = benchmark.pedantic(lambda: figure5b(scale=scale), rounds=1, iterations=1)
    _record_series(benchmark, result)
    odyssey = result.get("Odyssey")
    # Convergence still happens, just more slowly than in the skewed case.
    assert odyssey.tail_mean() < odyssey.per_query_seconds[0]


@pytest.mark.benchmark(group="figure5")
def test_fig5c_effect_of_merging(benchmark, scale):
    """Figure 5c: Odyssey with vs without merging on the popular combination."""
    result = benchmark.pedantic(lambda: figure5c(scale=scale), rounds=1, iterations=1)
    benchmark.extra_info["popular_combination"] = list(result.popular_combination)
    benchmark.extra_info["popular_query_count"] = result.popular_query_count
    benchmark.extra_info["average_gain_percent"] = round(result.average_gain_percent, 2)
    benchmark.extra_info["total_gain_percent"] = round(result.total_gain_percent, 2)
    print()
    print(format_figure5c_summary(result))
    assert result.merges_performed >= 1
    assert result.popular_query_count > 0
    # Merging must not make the popular combination substantially slower.
    assert result.total_gain_percent > -10.0
