"""Shared configuration of the macro benchmarks.

Every figure benchmark runs the corresponding experiment exactly once
(``benchmark.pedantic(rounds=1)``): the quantity of interest is the
*simulated* disk time of each approach, which is deterministic, so repeated
timing rounds would only burn wall-clock time.  The simulated results are
attached to ``benchmark.extra_info`` so they appear in the pytest-benchmark
report next to the wall-time of the simulation itself.

Set the ``REPRO_BENCH_SCALE`` environment variable to ``small``/``medium``/
``paper`` to run the benchmarks at a larger scale (default: a reduced
``tiny`` preset so the whole suite completes in a few minutes).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.scales import SCALES, ExperimentScale


def _benchmark_scale() -> ExperimentScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "")
    if name:
        return SCALES[name]
    return SCALES["tiny"].scaled(name="bench-tiny", n_queries=40)


@pytest.fixture(scope="session")
def scale() -> ExperimentScale:
    """The scale preset used by all macro benchmarks in this run."""
    return _benchmark_scale()
