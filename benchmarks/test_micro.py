"""Micro-benchmarks of the substrate components (real wall time).

Unlike the figure benchmarks (whose metric is *simulated* disk time), these
measure the actual Python execution speed of the building blocks: binary
codecs, STR packing, partition refinement, grid builds and query routing.
They are the benchmarks a contributor watches when optimising the library
itself.
"""

from __future__ import annotations

import pytest

from repro.baselines.grid import GridIndex
from repro.baselines.rtree import STRRTree
from repro.baselines.str_packing import str_sort_tile
from repro.core.adaptor import Adaptor
from repro.core.config import OdysseyConfig
from repro.data.dataset import Dataset
from repro.data.generator import NeuroscienceDatasetGenerator, brain_universe
from repro.data.spatial_object import spatial_object_codec
from repro.geometry.box import Box
from repro.storage.codec import decode_page, encode_page
from repro.storage.cost_model import DiskModel
from repro.storage.disk import Disk


@pytest.fixture(scope="module")
def universe() -> Box:
    return brain_universe()


@pytest.fixture(scope="module")
def objects(universe):
    generator = NeuroscienceDatasetGenerator(universe, seed=3)
    return list(generator.objects(dataset_id=0, count=5_000))


@pytest.fixture
def disk() -> Disk:
    return Disk(model=DiskModel(), buffer_pages=0)


@pytest.mark.benchmark(group="micro-codec")
def test_encode_decode_page(benchmark, objects):
    codec = spatial_object_codec(3)
    batch = objects[:63]

    def roundtrip():
        return decode_page(codec, encode_page(codec, batch, 4096))

    result = benchmark(roundtrip)
    assert len(result) == len(batch)


@pytest.mark.benchmark(group="micro-str")
def test_str_sort_tile_5k_objects(benchmark, objects):
    leaves = benchmark(lambda: str_sort_tile(objects, leaf_capacity=63))
    assert sum(len(leaf) for leaf in leaves) == len(objects)


@pytest.mark.benchmark(group="micro-generator")
def test_neuroscience_generation_rate(benchmark, universe):
    generator = NeuroscienceDatasetGenerator(universe, seed=9)
    result = benchmark(lambda: sum(1 for _ in generator.objects(0, 2_000)))
    assert result == 2_000


@pytest.mark.benchmark(group="micro-build")
def test_grid_build_wall_time(benchmark, universe, objects):
    def build():
        disk = Disk(model=DiskModel(), buffer_pages=0)
        dataset = Dataset.create(disk, 0, "micro_grid", objects, universe)
        grid = GridIndex(disk, "micro_grid_idx", universe, cells_per_dim=10)
        grid.build([dataset])
        return grid

    grid = benchmark.pedantic(build, rounds=3, iterations=1)
    assert grid.n_objects == len(objects)


@pytest.mark.benchmark(group="micro-build")
def test_rtree_build_wall_time(benchmark, universe, objects):
    def build():
        disk = Disk(model=DiskModel(), buffer_pages=0)
        dataset = Dataset.create(disk, 0, "micro_rtree", objects, universe)
        tree = STRRTree(disk, "micro_rtree_idx", universe)
        tree.build([dataset])
        return tree

    tree = benchmark.pedantic(build, rounds=3, iterations=1)
    assert tree.n_objects == len(objects)


@pytest.mark.benchmark(group="micro-odyssey")
def test_initial_partitioning_wall_time(benchmark, universe, objects):
    def initialize():
        disk = Disk(model=DiskModel(), buffer_pages=0)
        dataset = Dataset.create(disk, 0, "micro_ody", objects, universe)
        adaptor = Adaptor(OdysseyConfig())
        tree = adaptor.create_tree(dataset)
        adaptor.initialize(tree)
        return tree

    tree = benchmark.pedantic(initialize, rounds=3, iterations=1)
    assert tree.n_objects == len(objects)


@pytest.mark.benchmark(group="micro-odyssey")
def test_refinement_wall_time(benchmark, universe, objects, disk):
    dataset = Dataset.create(disk, 0, "micro_refine", objects, universe)
    adaptor = Adaptor(OdysseyConfig())

    def refine_hottest():
        tree = adaptor.create_tree(dataset)
        adaptor.initialize(tree)
        leaf = max(tree.leaves(), key=lambda node: node.n_objects)
        return adaptor.refine(tree, leaf)

    children = benchmark.pedantic(refine_hottest, rounds=3, iterations=1)
    assert children
