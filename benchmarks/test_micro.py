"""Micro-benchmarks of the substrate components (real wall time).

Unlike the figure benchmarks (whose metric is *simulated* disk time), these
measure the actual Python execution speed of the building blocks: binary
codecs, STR packing, partition refinement, grid builds, query routing —
and the batched query engine, whose whole point is wall-clock speed
(vectorized overlap tests and filtering, page reads deduplicated across
the batch).  They are the benchmarks a contributor watches when optimising
the library itself.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.baselines.grid import GridIndex
from repro.baselines.rtree import STRRTree
from repro.baselines.str_packing import str_sort_tile
from repro.bench.perf import (
    best_of,
    measure_concurrent_batches,
    sequential_pass,
    timed,
)
from repro.bench.runner import generate_workload
from repro.core.adaptor import Adaptor
from repro.core.config import OdysseyConfig
from repro.core.odyssey import SpaceOdyssey
from repro.data.dataset import Dataset
from repro.data.generator import NeuroscienceDatasetGenerator, brain_universe
from repro.data.spatial_object import spatial_object_codec
from repro.data.suite import build_benchmark_suite
from repro.geometry.box import Box
from repro.storage.codec import decode_page, encode_page
from repro.storage.cost_model import DiskModel
from repro.storage.disk import Disk


@pytest.fixture(scope="module")
def universe() -> Box:
    return brain_universe()


@pytest.fixture(scope="module")
def objects(universe):
    generator = NeuroscienceDatasetGenerator(universe, seed=3)
    return list(generator.objects(dataset_id=0, count=5_000))


@pytest.fixture
def disk() -> Disk:
    return Disk(model=DiskModel(), buffer_pages=0)


@pytest.mark.benchmark(group="micro-codec")
def test_encode_decode_page(benchmark, objects):
    codec = spatial_object_codec(3)
    batch = objects[:63]

    def roundtrip():
        return decode_page(codec, encode_page(codec, batch, 4096))

    result = benchmark(roundtrip)
    assert len(result) == len(batch)


@pytest.mark.benchmark(group="micro-str")
def test_str_sort_tile_5k_objects(benchmark, objects):
    leaves = benchmark(lambda: str_sort_tile(objects, leaf_capacity=63))
    assert sum(len(leaf) for leaf in leaves) == len(objects)


@pytest.mark.benchmark(group="micro-generator")
def test_neuroscience_generation_rate(benchmark, universe):
    generator = NeuroscienceDatasetGenerator(universe, seed=9)
    result = benchmark(lambda: sum(1 for _ in generator.objects(0, 2_000)))
    assert result == 2_000


@pytest.mark.benchmark(group="micro-build")
def test_grid_build_wall_time(benchmark, universe, objects):
    def build():
        disk = Disk(model=DiskModel(), buffer_pages=0)
        dataset = Dataset.create(disk, 0, "micro_grid", objects, universe)
        grid = GridIndex(disk, "micro_grid_idx", universe, cells_per_dim=10)
        grid.build([dataset])
        return grid

    grid = benchmark.pedantic(build, rounds=3, iterations=1)
    assert grid.n_objects == len(objects)


@pytest.mark.benchmark(group="micro-build")
def test_rtree_build_wall_time(benchmark, universe, objects):
    def build():
        disk = Disk(model=DiskModel(), buffer_pages=0)
        dataset = Dataset.create(disk, 0, "micro_rtree", objects, universe)
        tree = STRRTree(disk, "micro_rtree_idx", universe)
        tree.build([dataset])
        return tree

    tree = benchmark.pedantic(build, rounds=3, iterations=1)
    assert tree.n_objects == len(objects)


@pytest.mark.benchmark(group="micro-odyssey")
def test_initial_partitioning_wall_time(benchmark, universe, objects):
    def initialize():
        disk = Disk(model=DiskModel(), buffer_pages=0)
        dataset = Dataset.create(disk, 0, "micro_ody", objects, universe)
        adaptor = Adaptor(OdysseyConfig())
        tree = adaptor.create_tree(dataset)
        adaptor.initialize(tree)
        return tree

    tree = benchmark.pedantic(initialize, rounds=3, iterations=1)
    assert tree.n_objects == len(objects)


# --------------------------------------------------------------------------- #
# Columnar and batched query execution
# --------------------------------------------------------------------------- #
#
# Both engines trade per-query Python work for NumPy kernels, so their
# benefit is *steady-state throughput*: the suite below converges the
# adaptive engine first (one full pass of the workload pays initial
# partitioning and refinement), then measures the same workload again.
# The common baseline of every speedup assertion is the *scalar reference
# path* (``OdysseyConfig(columnar=False)``) — the seed implementation that
# decodes records with per-record ``struct.unpack`` and filters in Python
# loops.  Two acceptance bars are enforced:
#
# * sequential columnar execution >= 1.5x the scalar path (this PR);
# * query_batch at batch size 32 >= 2x the scalar path (the batched PR).

BATCH_WORKLOAD_SEED = 23
BATCH_SIZE = 32
#: The acceptance bars; override on noisy shared runners (e.g. CI sets
#: lower bars because wall-clock ratios wobble under noisy neighbours).
BATCH_SPEEDUP_MIN = float(os.environ.get("REPRO_BATCH_SPEEDUP_MIN", "2.0"))
SEQ_SPEEDUP_MIN = float(os.environ.get("REPRO_SEQ_SPEEDUP_MIN", "1.5"))
#: The thread-parallel bar is opt-in (``REPRO_PAR_SPEEDUP_MIN=1.3`` on
#: dedicated multi-core hardware, a laxer value in CI): thread fan-out
#: cannot beat the serial batch on a single core, so unlike the two bars
#: above there is no meaningful host-independent default.  Unset or
#: non-positive means "measure and report, assert correctness only".
PAR_SPEEDUP_MIN = float(os.environ.get("REPRO_PAR_SPEEDUP_MIN", "0"))
#: The process-pool bar is opt-in the same way (``REPRO_PROC_SPEEDUP_MIN=2``
#: on CI's multi-core parallel smoke): process fan-out pays fork/IPC
#: overhead that only multi-core decode+filter work can amortise.
PROC_SPEEDUP_MIN = float(os.environ.get("REPRO_PROC_SPEEDUP_MIN", "0"))
PAR_WORKERS = 4
PAR_BUFFER_SHARDS = 8
#: The epoch-overlap bar is likewise opt-in and, unlike the speedup bars,
#: an *upper* bound: it caps the wall-clock ratio of two concurrent
#: snapshot-batch streams to one stream (1.0 = perfect overlap of the
#: lock-free read phases, 2.0 = fully serialized).  CI's parallel smoke
#: sets ``REPRO_EPOCH_OVERLAP_MIN=1.9``; unset or non-positive means
#: "measure and report only".  The bar is only meaningful on 2+ cores.
EPOCH_OVERLAP_MAX = float(os.environ.get("REPRO_EPOCH_OVERLAP_MIN", "0"))
#: The tracing-overhead bar is opt-in and an *upper* bound on the
#: wall-clock ratio of a traced batched pass to the untraced pass
#: (1.0 = free instrumentation).  CI's parallel smoke sets
#: ``REPRO_OBS_OVERHEAD_MAX=1.25``; unset or non-positive means
#: "measure and report only".
OBS_OVERHEAD_MAX = float(os.environ.get("REPRO_OBS_OVERHEAD_MAX", "0"))

#: The scalar reference configuration used as the speedup baseline.
SCALAR_CONFIG = OdysseyConfig(columnar=False)


@pytest.fixture(scope="module")
def batch_suite():
    return build_benchmark_suite(
        n_datasets=5,
        objects_per_dataset=12_000,
        seed=17,
        buffer_pages=0,
        model=DiskModel(),
    )


@pytest.fixture(scope="module")
def batch_workload(batch_suite):
    return list(
        generate_workload(
            batch_suite.universe,
            batch_suite.catalog.dataset_ids(),
            64,
            seed=BATCH_WORKLOAD_SEED,
            datasets_per_query=2,
            volume_fraction=5e-3,
            ranges="uniform",
            ids_distribution="uniform",
        )
    )


def _converged_engine(
    batch_suite, batch_workload, config: OdysseyConfig | None = None
) -> SpaceOdyssey:
    """A fresh engine whose adaptive state has settled on the workload."""
    odyssey = SpaceOdyssey(batch_suite.fork().catalog, config)
    sequential_pass(odyssey, batch_workload)
    return odyssey


def _timed_pass(odyssey: SpaceOdyssey, workload) -> float:
    return timed(lambda: sequential_pass(odyssey, workload))


@pytest.mark.benchmark(group="micro-batch")
def test_batch_query_throughput(benchmark, batch_suite, batch_workload):
    """Wall time of one 32-query batch through the batched engine."""
    odyssey = _converged_engine(batch_suite, batch_workload)
    chunk = batch_workload[:BATCH_SIZE]

    result = benchmark(lambda: odyssey.query_batch(chunk))
    assert result.total_results() > 0
    benchmark.extra_info["group_reads"] = result.group_reads
    benchmark.extra_info["group_reads_deduped"] = result.group_reads_deduped


@pytest.mark.benchmark(group="micro-seq")
def test_sequential_columnar_speedup(batch_suite, batch_workload):
    """The columnar sequential path must be >= 1.5x the scalar reference.

    Both engines start from identical converged state (forks of the same
    suite, warmed by one pass with their own configuration — the two
    configurations produce byte-identical adaptive state, which the
    differential oracle in ``tests/test_columnar_differential.py``
    enforces); the timed region is a full sequential pass over the
    64-query uniform workload, best of three.
    """
    scalar = _converged_engine(batch_suite, batch_workload, SCALAR_CONFIG)
    columnar = _converged_engine(batch_suite, batch_workload)

    # Interleave a warm-up of each path before timing.
    _timed_pass(scalar, batch_workload)
    _timed_pass(columnar, batch_workload)
    scalar_seconds = best_of(3, lambda: _timed_pass(scalar, batch_workload))
    columnar_seconds = best_of(3, lambda: _timed_pass(columnar, batch_workload))
    speedup = scalar_seconds / columnar_seconds
    print(
        f"\nsequential execution: scalar {scalar_seconds * 1e3:.1f} ms, "
        f"columnar {columnar_seconds * 1e3:.1f} ms, speedup {speedup:.2f}x"
    )
    assert speedup >= SEQ_SPEEDUP_MIN, (
        f"columnar sequential speedup {speedup:.2f}x is below the "
        f"{SEQ_SPEEDUP_MIN:g}x acceptance bar"
    )


@pytest.mark.benchmark(group="micro-batch")
def test_batched_execution_speedup(batch_suite, batch_workload):
    """query_batch at batch size 32 must be >= 2x the scalar per-query path.

    Both engines start from identical converged state (forks of the same
    suite, warmed by one pass); the timed region is a full pass over the
    64-query uniform workload.  The baseline runs the scalar reference
    configuration — the per-query execution model the batched engine was
    measured against when its bar was set (the sequential path itself is
    now columnar and covered by its own bar above).  Best-of-three timings
    keep the comparison robust against scheduler noise.
    """
    sequential = _converged_engine(batch_suite, batch_workload, SCALAR_CONFIG)
    batched = _converged_engine(batch_suite, batch_workload)

    def run_batched() -> float:
        start = time.perf_counter()
        for offset in range(0, len(batch_workload), BATCH_SIZE):
            batched.query_batch(batch_workload[offset : offset + BATCH_SIZE])
        return time.perf_counter() - start

    # Interleave a warm-up of each path before timing.
    _timed_pass(sequential, batch_workload)
    run_batched()
    sequential_seconds = best_of(3, lambda: _timed_pass(sequential, batch_workload))
    batched_seconds = best_of(3, run_batched)
    speedup = sequential_seconds / batched_seconds
    print(
        f"\nbatched execution: scalar sequential {sequential_seconds * 1e3:.1f} ms, "
        f"batch({BATCH_SIZE}) {batched_seconds * 1e3:.1f} ms, "
        f"speedup {speedup:.2f}x"
    )
    assert speedup >= BATCH_SPEEDUP_MIN, (
        f"batched execution speedup {speedup:.2f}x at batch size {BATCH_SIZE} "
        f"is below the {BATCH_SPEEDUP_MIN:g}x acceptance bar"
    )


@pytest.mark.benchmark(group="micro-obs")
def test_tracing_overhead(batch_suite, batch_workload):
    """Per-phase tracing must not materially slow the batched engine.

    The same converged engine runs the 64-query workload batched, first
    untraced, then with a tracer attached (ample ring capacity so no
    eviction churn); best-of-three each, interleaved warm-ups.  The
    telemetry contract is observation-only, so beyond wall clock the
    test also checks the traced pass returned work and recorded spans.
    The ratio bar is enforced only when ``REPRO_OBS_OVERHEAD_MAX`` is
    set — single-run ratios near 1.0 wobble under noisy neighbours.
    """
    engine = _converged_engine(batch_suite, batch_workload)

    def run_batched() -> float:
        start = time.perf_counter()
        for offset in range(0, len(batch_workload), BATCH_SIZE):
            engine.query_batch(batch_workload[offset : offset + BATCH_SIZE])
        return time.perf_counter() - start

    run_batched()  # warm the untraced path
    untraced_seconds = best_of(3, run_batched)
    tracer = engine.enable_tracing(capacity=65536)
    try:
        run_batched()  # warm the traced path (span allocation, ring)
        traced_seconds = best_of(3, run_batched)
        spans = len(tracer) + tracer.evicted
    finally:
        engine.disable_tracing()
    ratio = traced_seconds / untraced_seconds
    print(
        f"\ntracing overhead: untraced {untraced_seconds * 1e3:.1f} ms, "
        f"traced {traced_seconds * 1e3:.1f} ms, ratio {ratio:.3f}x "
        f"({spans} spans recorded)"
    )
    assert spans > 0, "traced pass recorded no spans"
    if OBS_OVERHEAD_MAX > 0:
        assert ratio <= OBS_OVERHEAD_MAX, (
            f"tracing overhead ratio {ratio:.3f}x is above the "
            f"{OBS_OVERHEAD_MAX:g}x acceptance bar"
        )


@pytest.mark.benchmark(group="micro-batch")
def test_parallel_batch_speedup(batch_suite, batch_workload):
    """workers=4 batched execution vs workers=1, over a sharded buffer pool.

    Always checks correctness (the parallel pass must return the same
    per-query hit counts as the serial batch — the full bit-identity
    oracle lives in ``tests/``); the wall-clock bar is enforced only when
    ``REPRO_PAR_SPEEDUP_MIN`` is set, because thread fan-out can only win
    on multi-core hosts (CI's parallel smoke job sets the bar; a 1-core
    container cannot).
    """
    engines = {
        workers: SpaceOdyssey(
            batch_suite.fork(buffer_shards=PAR_BUFFER_SHARDS).catalog
        )
        for workers in (1, PAR_WORKERS)
    }

    def run_pass(workers: int) -> list[int]:
        counts: list[int] = []
        for offset in range(0, len(batch_workload), BATCH_SIZE):
            result = engines[workers].query_batch(
                batch_workload[offset : offset + BATCH_SIZE], workers=workers
            )
            counts.extend(result.hit_counts())
        return counts

    # Converge both engines (identically, per the differential oracle),
    # cross-checking answers on the way, then time best-of-three passes.
    assert run_pass(1) == run_pass(PAR_WORKERS)
    serial_seconds = best_of(3, lambda: timed(lambda: run_pass(1)))
    parallel_seconds = best_of(3, lambda: timed(lambda: run_pass(PAR_WORKERS)))
    speedup = serial_seconds / parallel_seconds
    print(
        f"\nparallel batch({BATCH_SIZE}): workers=1 {serial_seconds * 1e3:.1f} ms, "
        f"workers={PAR_WORKERS} {parallel_seconds * 1e3:.1f} ms, "
        f"speedup {speedup:.2f}x (cpus={os.cpu_count()})"
    )
    if PAR_SPEEDUP_MIN > 0:
        assert speedup >= PAR_SPEEDUP_MIN, (
            f"parallel speedup {speedup:.2f}x at workers={PAR_WORKERS} is below "
            f"the {PAR_SPEEDUP_MIN:g}x bar (REPRO_PAR_SPEEDUP_MIN)"
        )


@pytest.mark.benchmark(group="micro-batch")
def test_process_batch_speedup(batch_suite, batch_workload):
    """workers=4 process-pool execution vs workers=1, same protocol.

    Always checks correctness (identical per-query hit counts); the
    wall-clock bar is enforced only when ``REPRO_PROC_SPEEDUP_MIN`` is
    set — the process pool escapes the GIL entirely, but forking,
    page staging and hit serialization only pay off on multi-core hosts
    with real decode + filter work per batch.
    """
    engines = {
        workers: SpaceOdyssey(
            batch_suite.fork(buffer_shards=PAR_BUFFER_SHARDS).catalog
        )
        for workers in (1, PAR_WORKERS)
    }

    def run_pass(workers: int) -> list[int]:
        counts: list[int] = []
        for offset in range(0, len(batch_workload), BATCH_SIZE):
            result = engines[workers].query_batch(
                batch_workload[offset : offset + BATCH_SIZE],
                workers=workers,
                executor="process",
            )
            counts.extend(result.hit_counts())
        return counts

    assert run_pass(1) == run_pass(PAR_WORKERS)
    serial_seconds = best_of(3, lambda: timed(lambda: run_pass(1)))
    process_seconds = best_of(3, lambda: timed(lambda: run_pass(PAR_WORKERS)))
    speedup = serial_seconds / process_seconds
    print(
        f"\nprocess batch({BATCH_SIZE}): workers=1 {serial_seconds * 1e3:.1f} ms, "
        f"workers={PAR_WORKERS} {process_seconds * 1e3:.1f} ms, "
        f"speedup {speedup:.2f}x (cpus={os.cpu_count()})"
    )
    if PROC_SPEEDUP_MIN > 0:
        assert speedup >= PROC_SPEEDUP_MIN, (
            f"process speedup {speedup:.2f}x at workers={PAR_WORKERS} is below "
            f"the {PROC_SPEEDUP_MIN:g}x bar (REPRO_PROC_SPEEDUP_MIN)"
        )


@pytest.mark.benchmark(group="micro-batch")
def test_epoch_snapshot_overlap(batch_suite, batch_workload):
    """Two concurrent ``snapshot=True`` batch streams vs one stream.

    The epoch read path pins an immutable snapshot and resolves, reads and
    filters without the engine gate, so two streams should genuinely
    overlap: the concurrent wall must stay well below 2x the single-stream
    wall.  Measured with the same protocol ``run_perf_snapshot`` records
    as the ``concurrent_batches`` phase; the bar is enforced only when
    ``REPRO_EPOCH_OVERLAP_MIN`` is set (CI's multi-core parallel smoke
    sets 1.9) and the host has 2+ cores — on one core nothing can overlap.
    """
    odyssey = _converged_engine(batch_suite, batch_workload)
    single_seconds, concurrent_seconds = measure_concurrent_batches(
        odyssey, batch_workload, batch_size=BATCH_SIZE, repeats=3, threads=2
    )
    ratio = concurrent_seconds / single_seconds
    print(
        f"\nepoch overlap: single stream {single_seconds * 1e3:.1f} ms, "
        f"2 concurrent streams {concurrent_seconds * 1e3:.1f} ms, "
        f"ratio {ratio:.2f} (cpus={os.cpu_count()})"
    )
    if EPOCH_OVERLAP_MAX > 0 and (os.cpu_count() or 1) >= 2:
        assert ratio <= EPOCH_OVERLAP_MAX, (
            f"two concurrent snapshot-batch streams took {ratio:.2f}x the "
            f"single-stream wall — above the {EPOCH_OVERLAP_MAX:g}x bar "
            f"(REPRO_EPOCH_OVERLAP_MIN); the read phase is serializing"
        )


@pytest.mark.benchmark(group="micro-batch")
def test_batch_read_dedup_on_repeated_region(batch_suite):
    """Duplicate windows in one batch must be served from the shared read set."""
    odyssey = SpaceOdyssey(batch_suite.fork().catalog)
    universe = batch_suite.universe
    region = Box.cube(universe.center, universe.side(0) * 0.1).clamp(universe)
    result = odyssey.query_batch([(region, (0, 1))] * 8)
    assert result.group_reads_deduped >= result.group_reads * 0.8


@pytest.mark.benchmark(group="micro-odyssey")
def test_refinement_wall_time(benchmark, universe, objects, disk):
    dataset = Dataset.create(disk, 0, "micro_refine", objects, universe)
    adaptor = Adaptor(OdysseyConfig())

    def refine_hottest():
        tree = adaptor.create_tree(dataset)
        adaptor.initialize(tree)
        leaf = max(tree.leaves(), key=lambda node: node.n_objects)
        return adaptor.refine(tree, leaf)

    children = benchmark.pedantic(refine_hottest, rounds=3, iterations=1)
    assert children
