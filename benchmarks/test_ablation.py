"""Ablation benchmarks for Space Odyssey's design choices (DESIGN.md §5).

The paper fixes ``rt = 4``, ``ppl = 64`` and ``mt = 2``; these benchmarks
sweep the parameters the paper calls out (and lists as open issues) and
record the total simulated workload time for each setting, so the effect of
every design choice can be quantified at reproduction scale.
"""

from __future__ import annotations

import pytest

from repro.bench.approaches import odyssey_config_for
from repro.bench.experiments import build_suite, build_workload
from repro.bench.runner import run_approach
from repro.core.config import OdysseyConfig
from repro.core.odyssey import SpaceOdyssey


@pytest.fixture(scope="module")
def environment(scale):
    """One shared suite + workload for all ablations (forked per run)."""
    suite = build_suite(scale)
    workload = build_workload(
        suite,
        scale,
        ranges="clustered",
        ids_distribution="zipf",
        datasets_per_query=min(3, scale.n_datasets),
    )
    return suite, workload


def _run_odyssey(environment, config: OdysseyConfig) -> float:
    suite, workload = environment
    fork = suite.fork()
    odyssey = SpaceOdyssey(fork.catalog, config)
    result = run_approach(odyssey, workload, fork.disk)
    return result.total_seconds


@pytest.mark.benchmark(group="ablation-ppl")
@pytest.mark.parametrize("ppl", [8, 64])
def test_partitions_per_level(benchmark, environment, scale, ppl):
    """ppl = 8 (plain Octree) vs the paper's 64 (faster convergence)."""
    base = odyssey_config_for(scale)
    config = OdysseyConfig(
        refinement_threshold=base.refinement_threshold,
        partitions_per_level=ppl,
        merge_threshold=base.merge_threshold,
        min_merge_combination=base.min_merge_combination,
    )
    total = benchmark.pedantic(lambda: _run_odyssey(environment, config), rounds=1, iterations=1)
    benchmark.extra_info["ppl"] = ppl
    benchmark.extra_info["total_simulated_s"] = round(total, 4)
    assert total > 0


@pytest.mark.benchmark(group="ablation-rt")
@pytest.mark.parametrize("rt", [1.0, 4.0, 16.0])
def test_refinement_threshold(benchmark, environment, scale, rt):
    """Sweep the refinement threshold around the paper's rt = 4."""
    base = odyssey_config_for(scale)
    config = OdysseyConfig(
        refinement_threshold=rt,
        partitions_per_level=base.partitions_per_level,
        merge_threshold=base.merge_threshold,
        min_merge_combination=base.min_merge_combination,
    )
    total = benchmark.pedantic(lambda: _run_odyssey(environment, config), rounds=1, iterations=1)
    benchmark.extra_info["rt"] = rt
    benchmark.extra_info["total_simulated_s"] = round(total, 4)
    assert total > 0


@pytest.mark.benchmark(group="ablation-merging")
@pytest.mark.parametrize("merging", ["enabled", "disabled", "adaptive"])
def test_merging_policy(benchmark, environment, scale, merging):
    """Static merging (paper), no merging, and the cost-model extension."""
    base = odyssey_config_for(scale)
    config = OdysseyConfig(
        refinement_threshold=base.refinement_threshold,
        partitions_per_level=base.partitions_per_level,
        merge_threshold=base.merge_threshold,
        min_merge_combination=base.min_merge_combination,
        enable_merging=merging != "disabled",
        adaptive_merge_threshold=merging == "adaptive",
    )
    total = benchmark.pedantic(lambda: _run_odyssey(environment, config), rounds=1, iterations=1)
    benchmark.extra_info["merging"] = merging
    benchmark.extra_info["total_simulated_s"] = round(total, 4)
    assert total > 0


@pytest.mark.benchmark(group="ablation-budget")
@pytest.mark.parametrize("budget_pages", [8, 1024, None])
def test_merge_space_budget(benchmark, environment, scale, budget_pages):
    """Merge-file space budget: tight, generous, unbounded (LRU eviction)."""
    base = odyssey_config_for(scale)
    config = OdysseyConfig(
        refinement_threshold=base.refinement_threshold,
        partitions_per_level=base.partitions_per_level,
        merge_threshold=base.merge_threshold,
        min_merge_combination=base.min_merge_combination,
        merge_space_budget_pages=budget_pages,
    )
    total = benchmark.pedantic(lambda: _run_odyssey(environment, config), rounds=1, iterations=1)
    benchmark.extra_info["budget_pages"] = budget_pages if budget_pages is not None else "unbounded"
    benchmark.extra_info["total_simulated_s"] = round(total, 4)
    assert total > 0


@pytest.mark.benchmark(group="ablation-grid")
@pytest.mark.parametrize("cells_per_dim", [4, 10, 20])
def test_grid_resolution_sweep(benchmark, environment, scale, cells_per_dim):
    """The paper tunes its Grid baseline by sweeping the cell count; redo it."""
    from repro.baselines.grid import GridIndex
    from repro.baselines.strategies import OneForEach

    suite, workload = environment

    def run() -> float:
        fork = suite.fork()
        grid = OneForEach(
            fork.catalog,
            lambda name: GridIndex(
                fork.disk, name, fork.universe, cells_per_dim=cells_per_dim
            ),
            f"Grid-1fE-{cells_per_dim}",
        )
        return run_approach(grid, workload, fork.disk).total_seconds

    total = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cells_per_dim"] = cells_per_dim
    benchmark.extra_info["total_simulated_s"] = round(total, 4)
    assert total > 0
