"""Figure 4 — total workload processing cost vs number of datasets queried.

One benchmark per panel of the paper's Figure 4.  Each benchmark regenerates
the panel (all approaches, all x-axis positions) and records, per approach,
the simulated indexing/querying/total seconds in ``extra_info`` — these are
the same series the paper plots.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import figure4
from repro.bench.reporting import format_figure4_table


def _run_panel(benchmark, scale, ids_distribution: str, ranges: str):
    datasets_queried = tuple(
        k for k in (1, 3, 5) if k <= scale.n_datasets
    )

    def run():
        return figure4(
            ids_distribution=ids_distribution,
            ranges=ranges,
            scale=scale,
            datasets_queried=datasets_queried,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["panel"] = f"ranges={ranges}, ids={ids_distribution}"
    for point in result.points:
        for name, cell in point.cells.items():
            key = f"k={point.datasets_queried} {name}"
            benchmark.extra_info[key] = {
                "indexing_s": round(cell.indexing_seconds, 4),
                "querying_s": round(cell.querying_seconds, 4),
                "total_s": round(cell.total_seconds, 4),
            }
    print()
    print(format_figure4_table(result))
    return result


@pytest.mark.benchmark(group="figure4")
def test_fig4a_clustered_zipf(benchmark, scale):
    """Figure 4a: clustered query ranges, Zipf-distributed dataset ids."""
    result = _run_panel(benchmark, scale, "zipf", "clustered")
    # Shape check (paper): static sophisticated indexes spend more time
    # building than Space Odyssey spends on the entire workload.
    for point in result.points:
        assert point.cells["FLAT-Ain1"].indexing_seconds > point.cells["Odyssey"].total_seconds


@pytest.mark.benchmark(group="figure4")
def test_fig4b_clustered_heavy_hitter(benchmark, scale):
    """Figure 4b: clustered query ranges, heavy-hitter dataset ids."""
    result = _run_panel(benchmark, scale, "heavy_hitter", "clustered")
    for point in result.points:
        assert point.cells["Grid-1fE"].indexing_seconds < point.cells["RTree-Ain1"].indexing_seconds


@pytest.mark.benchmark(group="figure4")
def test_fig4c_clustered_self_similar(benchmark, scale):
    """Figure 4c: clustered query ranges, self-similar dataset ids."""
    result = _run_panel(benchmark, scale, "self_similar", "clustered")
    for point in result.points:
        assert point.cells["Odyssey"].indexing_seconds == 0.0


@pytest.mark.benchmark(group="figure4")
def test_fig4d_uniform_uniform(benchmark, scale):
    """Figure 4d: uniform ranges and uniform dataset ids (worst case)."""
    result = _run_panel(benchmark, scale, "uniform", "uniform")
    # Under no skew the adaptive approach loses its edge against the Grid
    # for larger combinations (the paper's crossover).
    last = result.points[-1]
    assert last.cells["Grid-1fE"].total_seconds <= last.cells["Odyssey"].total_seconds * 1.5
