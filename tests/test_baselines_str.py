"""Unit tests for STR packing and external-sort cost accounting."""

from __future__ import annotations

import pytest

from repro.baselines.str_packing import (
    charge_external_sort,
    external_sort_passes,
    group_consecutive,
    leaf_mbr,
    str_sort_tile,
)
from repro.geometry.box import Box
from repro.storage.cost_model import DiskModel
from repro.storage.disk import Disk

from tests.conftest import make_random_objects


@pytest.fixture
def universe() -> Box:
    return Box((0.0, 0.0, 0.0), (100.0, 100.0, 100.0))


class TestStrSortTile:
    def test_all_objects_packed_exactly_once(self, universe):
        objects = make_random_objects(universe, 400, seed=1)
        leaves = str_sort_tile(objects, leaf_capacity=20)
        packed = [o for leaf in leaves for o in leaf]
        assert sorted(o.oid for o in packed) == sorted(o.oid for o in objects)

    def test_leaf_capacity_respected(self, universe):
        objects = make_random_objects(universe, 333, seed=2)
        leaves = str_sort_tile(objects, leaf_capacity=25)
        assert all(1 <= len(leaf) <= 25 for leaf in leaves)

    def test_small_input_single_leaf(self, universe):
        objects = make_random_objects(universe, 5, seed=3)
        leaves = str_sort_tile(objects, leaf_capacity=10)
        assert len(leaves) == 1

    def test_empty_input(self):
        assert str_sort_tile([], leaf_capacity=10) == []

    def test_invalid_capacity(self, universe):
        with pytest.raises(ValueError):
            str_sort_tile(make_random_objects(universe, 5), leaf_capacity=0)

    def test_leaves_are_spatially_coherent(self, universe):
        # STR leaves should have much smaller MBRs than the universe.
        objects = make_random_objects(universe, 1000, seed=4)
        leaves = str_sort_tile(objects, leaf_capacity=50)
        avg_volume = sum(leaf_mbr(leaf).volume() for leaf in leaves) / len(leaves)
        assert avg_volume < universe.volume() / len(leaves) * 8


class TestExternalSortPasses:
    def test_fits_in_memory_is_one_pass(self):
        assert external_sort_passes(data_pages=100, memory_pages=200) == 1

    def test_larger_data_needs_more_passes(self):
        assert external_sort_passes(data_pages=1000, memory_pages=10) >= 3
        assert external_sort_passes(data_pages=1000, memory_pages=100) == 2

    def test_zero_data(self):
        assert external_sort_passes(0, 10) == 0

    def test_monotone_in_data_size(self):
        passes = [external_sort_passes(n, 16) for n in (10, 100, 1000, 10_000)]
        assert passes == sorted(passes)


class TestChargeExternalSort:
    def test_charges_read_and_write_per_pass(self):
        disk = Disk(model=DiskModel(seek_time_s=0.0), buffer_pages=0)
        charge_external_sort(disk, data_pages=100, memory_pages=1000, n_phases=1)
        assert disk.stats.pages_read == 100
        assert disk.stats.pages_written == 100

    def test_phases_multiply_cost(self):
        disk_one = Disk(model=DiskModel(), buffer_pages=0)
        disk_three = Disk(model=DiskModel(), buffer_pages=0)
        charge_external_sort(disk_one, 100, 1000, n_phases=1)
        charge_external_sort(disk_three, 100, 1000, n_phases=3)
        assert disk_three.stats.pages_read == 3 * disk_one.stats.pages_read

    def test_records_add_cpu(self):
        disk = Disk(model=DiskModel(), buffer_pages=0)
        charge_external_sort(disk, 10, 1000, n_phases=1, records=10_000)
        assert disk.stats.cpu_seconds > 0

    def test_zero_pages_is_noop(self):
        disk = Disk(model=DiskModel(), buffer_pages=0)
        charge_external_sort(disk, 0, 16)
        assert disk.stats.simulated_seconds == 0


class TestGroupConsecutive:
    def test_grouping(self):
        assert group_consecutive([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            group_consecutive([1], 0)
