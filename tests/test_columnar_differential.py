"""Differential oracle: the columnar sequential engine must be
indistinguishable from the seed scalar path.

The engine keeps the original per-record implementation behind
``OdysseyConfig(columnar=False)`` as a reference.  For randomized mixed
workloads, two engines over byte-identical forks of the same suite execute
the same query sequence — one scalar, one columnar — and every observable
must agree:

* byte-identical hits per query *in the same order* (the columnar filter
  materialises hits in record order, exactly like the scalar loop);
* identical ``QueryReport``\\ s field by field (including
  ``objects_examined`` — unlike batching, the sequential columnar path
  reads exactly the partitions the scalar path reads);
* identical post-run adaptive state and byte-identical on-disk files
  (vectorized first-touch initialisation, in-place refinement and merge
  copies must place every record on the same page);
* identical simulated I/O accounting (the decoded-array cache is a pure
  CPU cache and must never change which pages are read or charged).

The second half of the file unit-tests the columnar storage surface
itself: array round-trips, the decoded-array cache, and the buffer-pool
counters exposed through ``QueryReport.cache``.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.bench.runner import generate_workload
from repro.core.config import OdysseyConfig
from repro.core.odyssey import SpaceOdyssey
from repro.data.columnar import DecodedGroup
from repro.data.spatial_object import spatial_object_codec
from repro.data.suite import BenchmarkSuite, build_benchmark_suite
from repro.storage.cost_model import DiskModel
from repro.storage.disk import Disk
from repro.storage.pagedfile import PagedFile

from tests.conftest import make_random_objects
from tests.test_batch_differential import (
    REPORT_FIELDS,
    adaptive_state,
    disk_files,
    packed_hits,
)


def run_differential(
    suite: BenchmarkSuite,
    workload,
    config: OdysseyConfig,
) -> None:
    """Execute the workload scalar and columnar; assert total agreement."""
    scalar = SpaceOdyssey(suite.fork().catalog, replace(config, columnar=False))
    columnar = SpaceOdyssey(suite.fork().catalog, replace(config, columnar=True))
    for index, query in enumerate(workload):
        expected = scalar.query(query.box, query.dataset_ids)
        actual = columnar.query(query.box, query.dataset_ids)
        assert actual == expected, f"hits differ for query {index} (order included)"
        assert packed_hits(columnar, actual) == packed_hits(scalar, expected)
        for field in REPORT_FIELDS + ("objects_examined",):
            assert getattr(columnar.last_report, field) == getattr(
                scalar.last_report, field
            ), f"report field {field!r} differs for query {index}"
    assert adaptive_state(columnar) == adaptive_state(scalar)
    assert disk_files(columnar) == disk_files(scalar)
    for attribute in ("pages_read", "pages_written", "seeks", "cache_hits"):
        assert getattr(columnar.disk.stats, attribute) == getattr(
            scalar.disk.stats, attribute
        ), f"simulated I/O differs: {attribute}"


@pytest.mark.parametrize("seed", [101, 202, 303])
def test_uniform_workload_matches_scalar(suite, seed):
    workload = generate_workload(
        suite.universe,
        suite.catalog.dataset_ids(),
        30,
        seed=seed,
        datasets_per_query=3,
        volume_fraction=1e-3,
        ids_distribution="zipf",
    )
    config = OdysseyConfig(
        merge_threshold=1, merge_partition_min_hits=1, merge_only_converged=False
    )
    run_differential(suite, workload, config)


def test_clustered_workload_with_heavy_merging_matches_scalar(suite):
    workload = generate_workload(
        suite.universe,
        suite.catalog.dataset_ids(),
        40,
        seed=77,
        datasets_per_query=3,
        volume_fraction=5e-3,
        ranges="clustered",
        ids_distribution="heavy_hitter",
    )
    config = OdysseyConfig(
        merge_threshold=1,
        min_merge_combination=2,
        merge_partition_min_hits=1,
        merge_only_converged=False,
    )
    run_differential(suite, workload, config)


def test_merge_evictions_match_scalar(suite):
    workload = generate_workload(
        suite.universe,
        suite.catalog.dataset_ids(),
        36,
        seed=55,
        datasets_per_query=3,
        volume_fraction=5e-3,
        ranges="clustered",
        ids_distribution="uniform",
    )
    config = OdysseyConfig(
        merge_threshold=1,
        min_merge_combination=2,
        merge_partition_min_hits=1,
        merge_only_converged=False,
        merge_space_budget_pages=6,
    )
    run_differential(suite, workload, config)


def test_cached_disk_matches_scalar(suite):
    """With a warm buffer pool the decoded-array cache must stay invisible."""
    cached = suite.fork(buffer_pages=256)
    workload = generate_workload(
        cached.universe,
        cached.catalog.dataset_ids(),
        24,
        seed=13,
        datasets_per_query=2,
        volume_fraction=5e-3,
    )
    config = OdysseyConfig(
        merge_threshold=1, merge_partition_min_hits=1, merge_only_converged=False
    )
    run_differential(cached, workload, config)


def test_degenerate_and_duplicate_queries_match_scalar(suite):
    from repro.geometry.box import Box

    universe = suite.universe
    center = universe.center
    big = Box.cube(center, universe.side(0) * 0.2).clamp(universe)
    point = Box(center, center)  # degenerate zero-extent window
    off = Box.cube(universe.lo, universe.side(0) * 0.1).clamp(universe)
    queries = [
        (big, (0, 1, 2)),
        (big, (0, 1, 2)),
        (point, (3,)),
        (off, (0, 3)),
        (big, (0, 1, 2)),
        (point, (3,)),
    ]
    config = OdysseyConfig(
        merge_threshold=1, merge_partition_min_hits=1, merge_only_converged=False
    )
    scalar = SpaceOdyssey(suite.fork().catalog, replace(config, columnar=False))
    columnar = SpaceOdyssey(suite.fork().catalog, config)
    for box, ids in queries:
        assert columnar.query(box, ids) == scalar.query(box, ids)
    assert adaptive_state(columnar) == adaptive_state(scalar)
    assert disk_files(columnar) == disk_files(scalar)


# --------------------------------------------------------------------------- #
# The columnar storage surface
# --------------------------------------------------------------------------- #


@pytest.fixture
def object_file():
    disk = Disk(model=DiskModel(), buffer_pages=64)
    return PagedFile(disk, "objs.dat", spatial_object_codec(3))


def _objects(count, seed=1, dataset_id=4):
    from repro.geometry.box import Box

    universe = Box((0.0, 0.0, 0.0), (100.0, 100.0, 100.0))
    return make_random_objects(universe, count, dataset_id=dataset_id, seed=seed)


class TestArraySurface:
    def test_read_group_array_matches_scalar_read(self, object_file):
        objects = _objects(200)
        run = object_file.append_group(objects)
        records = object_file.read_group_array(run)
        codec = object_file.codec
        assert [codec.pack(o) for o in objects] == [
            records[i : i + 1].tobytes() for i in range(len(records))
        ]

    def test_write_groups_array_bytes_match_scalar_write(self, object_file):
        objects = _objects(150)
        codec = spatial_object_codec(3)
        disk_a = Disk(model=DiskModel(), buffer_pages=0)
        disk_b = Disk(model=DiskModel(), buffer_pages=0)
        scalar_file = PagedFile(disk_a, "f.dat", codec)
        array_file = PagedFile(disk_b, "f.dat", codec)
        groups = [objects[:70], [], objects[70:]]
        scalar_runs = scalar_file.write_groups(groups)
        source = object_file
        run = source.append_group(objects)
        records = source.read_group_array(run)
        array_runs = array_file.write_groups_array(
            [records[:70], records[:0], records[70:]]
        )
        assert scalar_runs == array_runs
        pages_a = [disk_a.backend.read("f.dat", p) for p in range(disk_a.num_pages("f.dat"))]
        pages_b = [disk_b.backend.read("f.dat", p) for p in range(disk_b.num_pages("f.dat"))]
        assert pages_a == pages_b

    def test_scan_arrays_round_trip(self, object_file):
        objects = _objects(300)
        object_file.append_group(objects[:120])
        object_file.append_group(objects[120:])
        total = sum(len(chunk) for chunk in object_file.scan_arrays(chunk_pages=2))
        assert total == 300

    def test_array_surface_requires_dtype(self):
        from repro.storage.codec import FixedRecordCodec

        disk = Disk(model=DiskModel(), buffer_pages=0)
        plain = PagedFile(
            disk, "ints.dat", FixedRecordCodec("<q", lambda v: (v,), lambda f: f[0])
        )
        run = plain.append_group([1, 2, 3])
        with pytest.raises(TypeError):
            plain.read_group_array(run)

    def test_append_group_array_round_trip(self, object_file):
        objects = _objects(80)
        run = object_file.append_group(objects)
        records = object_file.read_group_array(run)
        run2 = object_file.append_group_array(records)
        assert object_file.read_group(run2) == objects


class TestDecodedCache:
    def test_second_read_hits_decoded_layer(self, object_file):
        run = object_file.append_group(_objects(100))
        pool = object_file.disk.buffer_pool
        object_file.read_group_array(run)
        before = pool.counters()
        object_file.read_group_array(run)
        delta = pool.counters().delta_since(before)
        assert delta.decoded_hits > 0
        assert delta.decoded_misses == 0

    def test_page_write_invalidates_decoded_entry(self, object_file):
        objects = _objects(100)
        run = object_file.append_group(objects)
        first = object_file.read_group_array(run)
        # Rewrite the group in place: same pages, different record order.
        reversed_run = object_file.write_groups(
            [list(reversed(objects))], reuse=run.extents
        )[0]
        again = object_file.read_group_array(reversed_run)
        assert again["oid"].tolist() == list(reversed(first["oid"].tolist()))

    def test_capacity_zero_disables_decoded_layer(self):
        disk = Disk(model=DiskModel(), buffer_pages=0)
        file = PagedFile(disk, "objs.dat", spatial_object_codec(3))
        run = file.append_group(_objects(50))
        file.read_group_array(run)
        file.read_group_array(run)
        assert disk.buffer_pool.decoded_hits == 0

    def test_clear_drops_decoded_entries(self, object_file):
        run = object_file.append_group(_objects(60))
        pool = object_file.disk.buffer_pool
        object_file.read_group_array(run)
        object_file.disk.clear_cache()
        before = pool.counters()
        object_file.read_group_array(run)
        delta = pool.counters().delta_since(before)
        assert delta.decoded_hits == 0 and delta.decoded_misses > 0


class TestQueryReportCacheCounters:
    def test_sequential_report_exposes_cache_counters(self):
        suite = build_benchmark_suite(
            n_datasets=2,
            objects_per_dataset=800,
            seed=3,
            buffer_pages=512,
            model=DiskModel(),
        )
        odyssey = SpaceOdyssey(suite.catalog)
        from repro.geometry.box import Box

        region = Box.cube(suite.universe.center, suite.universe.side(0) * 0.2)
        odyssey.query(region.clamp(suite.universe), [0, 1])
        cold = odyssey.last_report.cache
        assert cold is not None
        assert cold.hits + cold.misses > 0, "the query read pages"
        assert cold.decoded_misses > 0, "first decoding of each page is a miss"
        odyssey.query(region.clamp(suite.universe), [0, 1])
        warm = odyssey.last_report.cache
        assert warm.hits > 0, "second query should hit the byte cache"
        assert warm.decoded_hits > 0, "second query should hit the decoded layer"

    def test_batch_reports_carry_cache_counters(self):
        suite = build_benchmark_suite(
            n_datasets=2,
            objects_per_dataset=800,
            seed=3,
            buffer_pages=512,
            model=DiskModel(),
        )
        odyssey = SpaceOdyssey(suite.catalog)
        from repro.geometry.box import Box

        region = Box.cube(suite.universe.center, suite.universe.side(0) * 0.2)
        result = odyssey.query_batch([(region.clamp(suite.universe), (0, 1))] * 3)
        assert all(report.cache is not None for report in result.reports)
        total_reads = sum(
            report.cache.hits + report.cache.misses for report in result.reports
        )
        assert total_reads > 0


class TestDecodedGroup:
    def test_from_records_and_materialize(self, object_file):
        objects = _objects(40)
        run = object_file.append_group(objects)
        group = DecodedGroup.from_records(object_file.read_group_array(run), 3)
        assert group.n_records == 40
        everything = group.materialize(np.ones(40, dtype=bool))
        assert everything == objects
        nothing = group.materialize(np.zeros(40, dtype=bool))
        assert nothing == []
