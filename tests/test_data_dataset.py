"""Unit tests for raw datasets and the catalog."""

from __future__ import annotations

import pytest

from repro.data.dataset import Dataset, DatasetCatalog, raw_file_name
from repro.data.spatial_object import SpatialObject
from repro.geometry.box import Box

from tests.conftest import make_catalog, make_dataset, make_object, make_random_objects


class TestDatasetCreate:
    def test_create_and_scan_roundtrip(self, disk, universe):
        objects = make_random_objects(universe, 500, dataset_id=1, seed=3)
        dataset = Dataset.create(disk, 1, "ds1", objects, universe)
        assert dataset.n_objects == 500
        scanned = dataset.read_all()
        assert {o.key() for o in scanned} == {o.key() for o in objects}

    def test_create_rejects_wrong_dataset_id(self, disk, universe):
        objects = [make_object(0, dataset_id=9, center=(1.0, 1.0, 1.0))]
        with pytest.raises(ValueError):
            Dataset.create(disk, 1, "bad", objects, universe)

    def test_create_rejects_object_outside_universe(self, disk, universe):
        outside = SpatialObject(
            oid=0, dataset_id=0, box=Box((200.0, 200.0, 200.0), (201.0, 201.0, 201.0))
        )
        with pytest.raises(ValueError):
            Dataset.create(disk, 0, "bad", [outside], universe)

    def test_create_twice_same_name_fails(self, disk, universe):
        make_dataset(disk, universe, dataset_id=0, count=10, name="dup")
        with pytest.raises(ValueError):
            make_dataset(disk, universe, dataset_id=0, count=10, name="dup")

    def test_empty_dataset(self, disk, universe):
        dataset = Dataset.create(disk, 0, "empty", [], universe)
        assert dataset.n_objects == 0
        assert dataset.read_all() == []
        assert dataset.size_pages() >= 0

    def test_open_existing(self, disk, universe):
        created = make_dataset(disk, universe, dataset_id=2, count=120, name="reopen")
        reopened = Dataset.open(disk, 2, "reopen", universe)
        assert reopened.n_objects == created.n_objects

    def test_open_missing_fails(self, disk, universe):
        with pytest.raises(ValueError):
            Dataset.open(disk, 0, "nope", universe)

    def test_scan_charges_sequential_io(self, disk, universe):
        dataset = make_dataset(disk, universe, count=400)
        disk.reset_head()
        before = disk.stats_snapshot()
        dataset.read_all()
        delta = disk.stats.delta_since(before)
        assert delta.pages_read == dataset.size_pages()
        assert delta.seeks == 1  # one sequential pass

    def test_range_query_scan_is_correct(self, disk, universe):
        dataset = make_dataset(disk, universe, count=300, seed=5)
        query = Box.cube((50.0, 50.0, 50.0), 30.0)
        expected = {o.key() for o in dataset.read_all() if o.intersects(query)}
        got = {o.key() for o in dataset.range_query_scan(query)}
        assert got == expected

    def test_raw_file_name_convention(self):
        assert raw_file_name("abc") == "raw/abc.dat"


class TestDatasetCatalog:
    def test_lookup_and_ordering(self, disk, universe):
        catalog = make_catalog(disk, universe, n_datasets=3, count=50)
        assert catalog.dataset_ids() == [0, 1, 2]
        assert len(catalog) == 3
        assert catalog.get(1).dataset_id == 1
        assert [d.dataset_id for d in catalog] == [0, 1, 2]

    def test_unknown_id_raises(self, disk, universe):
        catalog = make_catalog(disk, universe, n_datasets=2, count=20)
        with pytest.raises(KeyError):
            catalog.get(99)

    def test_subset_validates_ids(self, disk, universe):
        catalog = make_catalog(disk, universe, n_datasets=3, count=20)
        assert [d.dataset_id for d in catalog.subset([2, 0])] == [2, 0]
        with pytest.raises(KeyError):
            catalog.subset([5])

    def test_totals(self, disk, universe):
        catalog = make_catalog(disk, universe, n_datasets=3, count=40)
        assert catalog.total_objects() == 120
        assert catalog.total_pages() > 0

    def test_duplicate_ids_rejected(self, disk, universe):
        a = make_dataset(disk, universe, dataset_id=0, count=10, name="a")
        b = make_dataset(disk, universe, dataset_id=0, count=10, name="b")
        with pytest.raises(ValueError):
            DatasetCatalog([a, b])

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            DatasetCatalog([])

    def test_universe_is_bounding_box(self, disk, universe):
        catalog = make_catalog(disk, universe, n_datasets=2, count=20)
        assert catalog.universe.contains_box(universe)
        assert catalog.dimension == 3
