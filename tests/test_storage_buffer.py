"""Unit tests for the LRU buffer pool, its decoded-array layer and sharding."""

from __future__ import annotations

import threading

import pytest

from repro.storage.buffer import BufferCounters, BufferPool, ShardedBufferPool


class TestBasicOperations:
    def test_get_miss_returns_none(self):
        pool = BufferPool(4)
        assert pool.get("f", 0) is None
        assert pool.misses == 1

    def test_put_then_get(self):
        pool = BufferPool(4)
        pool.put("f", 0, b"data")
        assert pool.get("f", 0) == b"data"
        assert pool.hits == 1

    def test_len_and_contains(self):
        pool = BufferPool(4)
        pool.put("f", 1, b"x")
        assert len(pool) == 1
        assert ("f", 1) in pool
        assert ("f", 2) not in pool

    def test_zero_capacity_disables_caching(self):
        pool = BufferPool(0)
        pool.put("f", 0, b"x")
        assert pool.get("f", 0) is None
        assert len(pool) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(-1)


class TestEviction:
    def test_lru_eviction_order(self):
        pool = BufferPool(2)
        pool.put("f", 0, b"a")
        pool.put("f", 1, b"b")
        pool.get("f", 0)  # page 0 becomes most recently used
        pool.put("f", 2, b"c")  # evicts page 1
        assert pool.get("f", 1) is None
        assert pool.get("f", 0) == b"a"
        assert pool.get("f", 2) == b"c"
        assert pool.evictions == 1

    def test_put_existing_refreshes_position(self):
        pool = BufferPool(2)
        pool.put("f", 0, b"a")
        pool.put("f", 1, b"b")
        pool.put("f", 0, b"a2")  # refresh 0
        pool.put("f", 2, b"c")  # evicts 1, not 0
        assert pool.get("f", 0) == b"a2"
        assert pool.get("f", 1) is None

    def test_capacity_never_exceeded(self):
        pool = BufferPool(3)
        for page in range(10):
            pool.put("f", page, bytes([page]))
        assert len(pool) == 3


class TestInvalidation:
    def test_clear(self):
        pool = BufferPool(4)
        pool.put("f", 0, b"a")
        pool.clear()
        assert len(pool) == 0
        assert pool.get("f", 0) is None

    def test_invalidate_file_only_affects_that_file(self):
        pool = BufferPool(4)
        pool.put("f", 0, b"a")
        pool.put("g", 0, b"b")
        pool.invalidate_file("f")
        assert pool.get("f", 0) is None
        assert pool.get("g", 0) == b"b"


class TestDecodedLayer:
    def test_decoded_entry_requires_resident_byte_page(self):
        pool = BufferPool(4)
        page = b"bytes"
        pool.put_decoded("f", 0, page, [1, 2, 3])  # no byte page: ignored
        assert pool.get_decoded("f", 0, page) is None
        assert pool.decoded_misses == 1
        pool.put("f", 0, page)
        pool.put_decoded("f", 0, page, [1, 2, 3])
        assert pool.get_decoded("f", 0, page) == [1, 2, 3]
        assert pool.decoded_hits == 1

    def test_decoded_hit_requires_byte_identity(self):
        """A decoding is only served for the exact bytes object it was
        computed from — an equal copy (e.g. a snapshot overlay page) must
        miss, so stale pool entries can never alias a decode."""
        pool = BufferPool(4)
        page = b"bytes"
        pool.put("f", 0, page)
        pool.put_decoded("f", 0, page, "decoded")
        equal_copy = bytes(bytearray(page))
        assert equal_copy == page and equal_copy is not page
        assert pool.get_decoded("f", 0, equal_copy) is None
        assert pool.get_decoded("f", 0, page) == "decoded"

    def test_stale_put_decoded_is_ignored(self):
        """put_decoded for bytes no longer resident must not resurrect a
        stale decoding over the page's current contents."""
        pool = BufferPool(4)
        old = b"old!"
        new = b"new!"
        pool.put("f", 0, old)
        pool.put("f", 0, new)  # old decode-source bytes are gone
        pool.put_decoded("f", 0, old, "decoded-old")  # late: ignored
        assert pool.get_decoded("f", 0, new) is None
        assert pool.get_decoded("f", 0, old) is None

    def test_eviction_drops_decoded_array_with_its_byte_page(self):
        pool = BufferPool(2)
        page = b"a"
        pool.put("f", 0, page)
        pool.put_decoded("f", 0, page, "decoded-0")
        pool.put("f", 1, b"b")
        pool.put("f", 2, b"c")  # evicts page 0 and its decoded entry
        assert pool.evictions == 1
        assert pool.decoded_evictions == 1
        assert pool.get_decoded("f", 0, page) is None

    def test_eviction_of_undecoded_page_counts_no_decoded_eviction(self):
        pool = BufferPool(1)
        pool.put("f", 0, b"a")
        pool.put("f", 1, b"b")
        assert pool.evictions == 1
        assert pool.decoded_evictions == 0

    def test_overwrite_invalidates_stale_decoding(self):
        pool = BufferPool(4)
        old = b"old"
        pool.put("f", 0, old)
        pool.put_decoded("f", 0, old, "decoded-old")
        new = b"new"
        pool.put("f", 0, new)  # refresh: the old decoding is stale
        assert pool.get_decoded("f", 0, new) is None
        assert pool.get_decoded("f", 0, old) is None

    def test_invalidate_file_and_clear_drop_decoded_entries(self):
        pool = BufferPool(4)
        page = b"a"
        for name in ("f", "g"):
            pool.put(name, 0, page)
            pool.put_decoded(name, 0, page, name)
        pool.invalidate_file("f")
        assert pool.get_decoded("f", 0, page) is None
        assert pool.get_decoded("g", 0, page) == "g"
        pool.clear()
        assert pool.get_decoded("g", 0, page) is None

    def test_invalidation_counts_decoded_drops(self):
        """Regression: file invalidation used to drop decoded entries
        without counting them, under-reporting decoded drops after merges
        delete files."""
        pool = BufferPool(8)
        page_a, page_c = b"a", b"c"
        pool.put("merge", 0, page_a)
        pool.put_decoded("merge", 0, page_a, "d0")
        pool.put("merge", 1, b"b")  # byte page without a decoded entry
        pool.put("other", 0, page_c)
        pool.put_decoded("other", 0, page_c, "d1")
        pool.invalidate_file("merge")
        # Exactly the one decoded entry of the invalidated file is counted,
        # on its own counter — the eviction counter stays untouched.
        assert pool.decoded_invalidations == 1
        assert pool.decoded_evictions == 0
        assert pool.counters().decoded_invalidations == 1

    def test_decoded_drop_invariant_across_eviction_and_invalidation(self):
        """Every decoded drop outside clear() is counted by exactly one of
        decoded_evictions / decoded_invalidations."""
        pool = BufferPool(2)
        page_a, page_b = b"a", b"b"
        decoded_added = 0
        pool.put("f", 0, page_a)
        pool.put_decoded("f", 0, page_a, "d0")
        decoded_added += 1
        pool.put("g", 0, page_b)
        pool.put_decoded("g", 0, page_b, "d1")
        decoded_added += 1
        pool.put("f", 1, b"c")  # evicts ("f", 0) and its decoded entry
        pool.invalidate_file("g")  # drops ("g", 0) and its decoded entry
        assert pool.get_decoded("f", 0, page_a) is None
        assert pool.get_decoded("g", 0, page_b) is None
        dropped = pool.decoded_evictions + pool.decoded_invalidations
        assert dropped == decoded_added
        assert pool.decoded_evictions == 1
        assert pool.decoded_invalidations == 1

    def test_counter_accounting_snapshot_and_delta(self):
        pool = BufferPool(2)
        page = b"a"
        pool.put("f", 0, page)
        pool.put_decoded("f", 0, page, "d0")
        pool.get("f", 0)
        pool.get("f", 1)  # miss
        pool.get_decoded("f", 0, page)
        pool.get_decoded("f", 1, page)  # miss
        pool.put("f", 1, b"b")
        pool.put("f", 2, b"c")  # evicts page 0 (+ decoded entry)
        snapshot = pool.counters()
        assert snapshot == BufferCounters(
            hits=1,
            misses=1,
            evictions=1,
            decoded_hits=1,
            decoded_misses=1,
            decoded_evictions=1,
        )
        pool.get("f", 2)
        delta = pool.counters().delta_since(snapshot)
        assert delta == BufferCounters(hits=1)


class TestShardedBufferPool:
    def test_routing_is_deterministic_and_spreads(self):
        pool = ShardedBufferPool(64, n_shards=4)
        assert all(
            pool.shard_of("f", page) == pool.shard_of("f", page) for page in range(50)
        )
        used = {pool.shard_of("f", page) for page in range(50)}
        assert len(used) > 1, "pages should spread over shards"

    def test_capacity_split_sums_to_total(self):
        pool = ShardedBufferPool(10, n_shards=4)
        assert pool.capacity_pages == 10
        assert pool.n_shards == 4
        for page in range(40):
            pool.put("f", page, bytes([page]))
        assert len(pool) <= 10

    def test_put_get_contains_roundtrip(self):
        pool = ShardedBufferPool(16, n_shards=4)
        pool.put("f", 3, b"payload")
        assert ("f", 3) in pool
        assert pool.get("f", 3) == b"payload"
        assert pool.hits == 1
        assert pool.get("g", 3) is None
        assert pool.misses == 1

    def test_decoded_layer_per_shard(self):
        pool = ShardedBufferPool(16, n_shards=4)
        page = b"bytes"
        pool.put("f", 5, page)
        pool.put_decoded("f", 5, page, "decoded")
        assert pool.get_decoded("f", 5, page) == "decoded"
        assert pool.get_decoded("f", 6, page) is None
        assert pool.decoded_hits == 1 and pool.decoded_misses == 1

    def test_invalidate_file_covers_all_shards(self):
        pool = ShardedBufferPool(64, n_shards=4)
        for page in range(20):
            pool.put("f", page, b"x")
            pool.put("g", page, b"y")
        pool.invalidate_file("f")
        assert all(pool.get("f", page) is None for page in range(20))
        assert all(pool.get("g", page) == b"y" for page in range(20))
        pool.clear()
        assert len(pool) == 0

    def test_aggregated_counters_sum_over_shards(self):
        pool = ShardedBufferPool(8, n_shards=3)
        for page in range(30):
            pool.put("f", page, bytes([page]))
            pool.get("f", page)
        per_shard = pool.shard_counters()
        total = BufferCounters()
        for snapshot in per_shard:
            total = total + snapshot
        assert total == pool.counters()
        assert pool.counters().hits == pool.hits
        assert pool.counters().evictions == pool.evictions > 0

    def test_zero_capacity_disables_caching(self):
        pool = ShardedBufferPool(0, n_shards=4)
        pool.put("f", 0, b"x")
        assert pool.get("f", 0) is None
        assert len(pool) == 0

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            ShardedBufferPool(8, n_shards=0)
        with pytest.raises(ValueError):
            ShardedBufferPool(-1, n_shards=2)

    def test_tiny_capacity_clamps_shard_count(self):
        """Regression: capacity < n_shards used to give the tail shards
        capacity 0, so pages routed there silently never cached."""
        pool = ShardedBufferPool(2, n_shards=8)
        assert pool.capacity_pages == 2
        assert pool.n_shards == 2  # clamped: every shard holds >= 1 page
        # A page must always be cacheable right after it is put, whatever
        # shard it routes to — with a 0-capacity shard this get() missed.
        for page in range(20):
            pool.put("f", page, bytes([page]))
            assert pool.get("f", page) == bytes([page]), f"page {page} never cached"
        assert len(pool) <= pool.capacity_pages

    def test_single_page_pool_keeps_one_shard(self):
        pool = ShardedBufferPool(1, n_shards=16)
        assert pool.n_shards == 1
        pool.put("f", 7, b"x")
        assert pool.get("f", 7) == b"x"

    def test_invalidation_counter_aggregates_over_shards(self):
        pool = ShardedBufferPool(32, n_shards=4)
        for page in range(8):
            data = b"x" + bytes([page])
            pool.put("f", page, data)
            pool.put_decoded("f", page, data, f"d{page}")
        pool.invalidate_file("f")
        assert pool.decoded_invalidations == 8
        assert pool.counters().decoded_invalidations == 8
        assert pool.decoded_evictions == 0


class TestConcurrentIntrospection:
    def test_len_and_contains_race_mutating_threads(self):
        """Regression: __len__/__contains__ read shard state without the
        shard locks, racing the thread-parallel executor's mutations."""
        pool = ShardedBufferPool(64, n_shards=4)
        stop = threading.Event()
        errors: list[BaseException] = []

        def mutate(name: str) -> None:
            try:
                page = 0
                while not stop.is_set():
                    pool.put(name, page % 200, b"x")
                    if page % 17 == 0:
                        pool.invalidate_file(name)
                    if page % 53 == 0:
                        pool.clear()
                    page += 1
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        workers = [
            threading.Thread(target=mutate, args=(name,), daemon=True)
            for name in ("f", "g")
        ]
        for worker in workers:
            worker.start()
        try:
            for round_no in range(3000):
                size = len(pool)
                assert 0 <= size <= pool.capacity_pages
                ("f", round_no % 200) in pool  # must never raise
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)
        finally:
            stop.set()
            for worker in workers:
                worker.join(timeout=30)
        assert not errors, f"concurrent introspection raised: {errors!r}"

    def test_multi_shard_operations_take_locks_in_index_order(self):
        """Regression: the documented lock ordering for multi-shard
        operations (``invalidate_file``, ``clear``, ``__len__``,
        ``__contains__``) is one shard lock at a time, in ascending shard
        index order, never nested — so two of them can never deadlock
        against each other.  Observe the acquisition order directly."""
        pool = ShardedBufferPool(64, n_shards=4)
        for page in range(16):
            pool.put("f", page, b"x")
        acquired: list[int] = []

        class OrderRecordingLock:
            def __init__(self, index: int, inner) -> None:
                self._index = index
                self._inner = inner

            def __enter__(self):
                acquired.append(self._index)
                return self._inner.__enter__()

            def __exit__(self, *exc):
                return self._inner.__exit__(*exc)

            def acquire(self, *args, **kwargs):
                acquired.append(self._index)
                return self._inner.acquire(*args, **kwargs)

            def release(self):
                return self._inner.release()

        pool._locks = [
            OrderRecordingLock(index, lock) for index, lock in enumerate(pool._locks)
        ]
        for operation in (
            lambda: len(pool),
            lambda: ("f", 3) in pool,
            lambda: pool.invalidate_file("f"),
            lambda: pool.clear(),
        ):
            acquired.clear()
            operation()
            assert acquired == sorted(acquired), (
                f"shard locks acquired out of index order: {acquired}"
            )


class TestInvalidatePage:
    """Single-page invalidation: the primitive the disk uses to keep the
    pool honest around failed reads and in-place overwrites."""

    def test_drops_byte_and_decoded_layers(self):
        pool = BufferPool(4)
        page = b"bytes"
        pool.put("f", 0, page)
        pool.put_decoded("f", 0, page, "decoded")
        pool.put("f", 1, b"other")
        pool.invalidate_page("f", 0)
        assert pool.get("f", 0) is None
        assert pool.get_decoded("f", 0, page) is None
        assert pool.get("f", 1) == b"other"  # untouched sibling
        assert pool.decoded_invalidations == 1

    def test_missing_page_is_a_noop(self):
        pool = BufferPool(4)
        pool.invalidate_page("f", 0)  # nothing cached: must not raise
        assert pool.decoded_invalidations == 0

    def test_sharded_pool_routes_to_the_owning_shard(self):
        pool = ShardedBufferPool(16, 4)
        for page_no in range(8):
            pool.put("f", page_no, b"x%d" % page_no)
        pool.invalidate_page("f", 3)
        assert pool.get("f", 3) is None
        for page_no in (0, 1, 2, 4, 5, 6, 7):
            assert pool.get("f", page_no) is not None


class TestDiskFailedReadInvalidation:
    """Regression: a failed backend read or write must never leave the
    pool serving bytes the backend no longer vouches for."""

    @staticmethod
    def _disk_with_script(buffer_pages=8):
        from repro.storage.backend import InMemoryBackend, StorageBackend
        from repro.storage.cost_model import DiskModel
        from repro.storage.disk import Disk
        from repro.storage.errors import TransientIOError

        class ScriptedBackend(StorageBackend):
            """Fails exactly the operations the test arms."""

            def __init__(self):
                inner = InMemoryBackend(page_size=64)
                super().__init__(inner.page_size)
                self.inner = inner
                self.fail_reads = 0
                self.fail_writes = 0

            def create(self, name):
                self.inner.create(name)

            def delete(self, name):
                self.inner.delete(name)

            def exists(self, name):
                return self.inner.exists(name)

            def list_files(self):
                return self.inner.list_files()

            def num_pages(self, name):
                return self.inner.num_pages(name)

            def clone(self):
                raise NotImplementedError

            def read(self, name, page_no):
                if self.fail_reads > 0:
                    self.fail_reads -= 1
                    raise TransientIOError("injected read fault")
                return self.inner.read(name, page_no)

            def write(self, name, page_no, data):
                if self.fail_writes > 0:
                    self.fail_writes -= 1
                    raise TransientIOError("injected write fault")
                self.inner.write(name, page_no, data)

            def append(self, name, data):
                return self.inner.append(name, data)

        backend = ScriptedBackend()
        disk = Disk(
            backend=backend,
            model=DiskModel(page_size=64),
            buffer_pages=buffer_pages,
        )
        return disk, backend

    def test_failed_write_does_not_leave_stale_cached_bytes(self):
        from repro.storage.errors import TransientIOError

        disk, backend = self._disk_with_script()
        disk.create_file("f")
        disk.append_page("f", b"old")
        assert disk.read_page("f", 0).startswith(b"old")  # now cached
        backend.fail_writes = 1
        with pytest.raises(TransientIOError):
            disk.write_page("f", 0, b"new")
        # The write failed before reaching the store; the pool must fall
        # back to the backend's (old) truth, not a stale cache entry.
        assert disk.read_page("f", 0).startswith(b"old")
        disk.write_page("f", 0, b"new")  # retried write goes through
        assert disk.read_page("f", 0).startswith(b"new")

    def test_failed_recache_after_write_leaves_page_uncached(self):
        disk, backend = self._disk_with_script()
        disk.create_file("f")
        disk.append_page("f", b"old")
        backend.fail_reads = 1  # the post-write refresh read will fail
        disk.write_page("f", 0, b"new")  # the write itself succeeds
        assert disk.buffer_pool.get("f", 0) is None  # no stale entry
        assert disk.read_page("f", 0).startswith(b"new")  # fresh fetch

    def test_failed_read_invalidates_instead_of_caching(self):
        from repro.storage.errors import TransientIOError

        disk, backend = self._disk_with_script()
        disk.create_file("f")
        disk.append_page("f", b"data")
        disk.clear_cache()
        backend.fail_reads = 1
        with pytest.raises(TransientIOError):
            disk.read_page("f", 0)
        assert disk.buffer_pool.get("f", 0) is None
        assert disk.read_page("f", 0).startswith(b"data")

    def test_failed_run_read_invalidates_the_failing_page(self):
        from repro.storage.errors import TransientIOError

        disk, backend = self._disk_with_script()
        disk.create_file("f")
        for index in range(4):
            disk.append_page("f", b"p%d" % index)
        disk.clear_cache()
        backend.fail_reads = 1  # the run aborts on its first page
        with pytest.raises(TransientIOError):
            disk.read_run("f", 0, 4)
        for page_no in range(4):
            assert disk.buffer_pool.get("f", page_no) is None
        assert [bytes(p[:2]) for p in disk.read_run("f", 0, 4)] == [
            b"p0",
            b"p1",
            b"p2",
            b"p3",
        ]


class TestDecodedArrayImmutability:
    """Arrays served from the decoded layer (and every other array read
    path) are shared between callers — buffer-pool cache hits, batch read
    sets, even process-executor mmap views all alias the same memory.  A
    caller mutating one in place would silently corrupt every other
    reader's view of the page, so the storage layer hands them out with
    ``writeable=False`` and in-place writes must raise."""

    @pytest.fixture
    def stored(self):
        from repro.data.spatial_object import spatial_object_codec
        from repro.storage.cost_model import DiskModel
        from repro.storage.disk import Disk
        from repro.storage.pagedfile import PagedFile

        from tests.conftest import make_random_objects
        from repro.geometry.box import Box

        disk = Disk(model=DiskModel(), buffer_pages=64)
        file = PagedFile(disk, "frozen.dat", spatial_object_codec(3))
        universe = Box((0.0, 0.0, 0.0), (100.0, 100.0, 100.0))
        # Enough records to span several pages, so the multi-page
        # concatenation path is exercised too.
        run = file.append_group(
            make_random_objects(universe, 300, dataset_id=0, seed=5)
        )
        return file, run

    def test_read_group_array_is_frozen(self, stored):
        file, run = stored
        records = file.read_group_array(run)
        assert not records.flags.writeable
        with pytest.raises(ValueError):
            records["oid"][0] = 999

    def test_decoded_cache_hit_is_frozen(self, stored):
        """The second read serves the pool's decoded entries: still frozen."""
        file, run = stored
        file.read_group_array(run)
        cached = file.read_group_array(run)
        assert not cached.flags.writeable
        with pytest.raises(ValueError):
            cached["lo"][:] = 0.0

    def test_scan_arrays_chunks_are_frozen(self, stored):
        file, _ = stored
        chunks = list(file.scan_arrays(chunk_pages=2))
        assert chunks
        for chunk in chunks:
            assert not chunk.flags.writeable

    def test_snapshot_read_is_frozen(self, stored):
        file, run = stored
        records = file.read_group_array_at(run, lambda name, page_no: None)
        assert not records.flags.writeable
        with pytest.raises(ValueError):
            records["hi"][0] = 1.0
