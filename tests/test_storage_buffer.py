"""Unit tests for the LRU buffer pool."""

from __future__ import annotations

import pytest

from repro.storage.buffer import BufferPool


class TestBasicOperations:
    def test_get_miss_returns_none(self):
        pool = BufferPool(4)
        assert pool.get("f", 0) is None
        assert pool.misses == 1

    def test_put_then_get(self):
        pool = BufferPool(4)
        pool.put("f", 0, b"data")
        assert pool.get("f", 0) == b"data"
        assert pool.hits == 1

    def test_len_and_contains(self):
        pool = BufferPool(4)
        pool.put("f", 1, b"x")
        assert len(pool) == 1
        assert ("f", 1) in pool
        assert ("f", 2) not in pool

    def test_zero_capacity_disables_caching(self):
        pool = BufferPool(0)
        pool.put("f", 0, b"x")
        assert pool.get("f", 0) is None
        assert len(pool) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(-1)


class TestEviction:
    def test_lru_eviction_order(self):
        pool = BufferPool(2)
        pool.put("f", 0, b"a")
        pool.put("f", 1, b"b")
        pool.get("f", 0)  # page 0 becomes most recently used
        pool.put("f", 2, b"c")  # evicts page 1
        assert pool.get("f", 1) is None
        assert pool.get("f", 0) == b"a"
        assert pool.get("f", 2) == b"c"
        assert pool.evictions == 1

    def test_put_existing_refreshes_position(self):
        pool = BufferPool(2)
        pool.put("f", 0, b"a")
        pool.put("f", 1, b"b")
        pool.put("f", 0, b"a2")  # refresh 0
        pool.put("f", 2, b"c")  # evicts 1, not 0
        assert pool.get("f", 0) == b"a2"
        assert pool.get("f", 1) is None

    def test_capacity_never_exceeded(self):
        pool = BufferPool(3)
        for page in range(10):
            pool.put("f", page, bytes([page]))
        assert len(pool) == 3


class TestInvalidation:
    def test_clear(self):
        pool = BufferPool(4)
        pool.put("f", 0, b"a")
        pool.clear()
        assert len(pool) == 0
        assert pool.get("f", 0) is None

    def test_invalidate_file_only_affects_that_file(self):
        pool = BufferPool(4)
        pool.put("f", 0, b"a")
        pool.put("g", 0, b"b")
        pool.invalidate_file("f")
        assert pool.get("f", 0) is None
        assert pool.get("g", 0) == b"b"
