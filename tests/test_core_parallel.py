"""Unit tests for the thread-parallel batch executor.

The heavy equivalence checking lives in the fuzz harness
(``tests/test_engine_fuzz.py``); this file covers the executor's API
surface and the thread-safe read set directly.
"""

from __future__ import annotations

import threading

import pytest

from repro.bench.runner import generate_workload
from repro.core.batch import BatchExecutor, BatchReadSet, QueryBatch
from repro.core.config import OdysseyConfig
from repro.core.odyssey import SpaceOdyssey
from repro.core.parallel import ParallelExecutor, ParallelReadSet, default_workers
from repro.data.spatial_object import spatial_object_codec
from repro.storage.cost_model import DiskModel
from repro.storage.disk import Disk
from repro.storage.pagedfile import PagedFile

from tests.conftest import make_random_objects
from tests.test_batch_differential import (
    REPORT_FIELDS,
    adaptive_state,
    disk_files,
)


MERGE_CONFIG = OdysseyConfig(
    merge_threshold=1,
    min_merge_combination=2,
    merge_partition_min_hits=1,
    merge_only_converged=False,
)


def _workload(suite, n=24, seed=61):
    return list(
        generate_workload(
            suite.universe,
            suite.catalog.dataset_ids(),
            n,
            seed=seed,
            datasets_per_query=3,
            volume_fraction=5e-3,
            ranges="clustered",
            ids_distribution="heavy_hitter",
        )
    )


class TestParallelExecutor:
    def test_bit_identical_to_serial_batch(self, suite):
        workload = _workload(suite)
        serial = SpaceOdyssey(suite.fork().catalog, MERGE_CONFIG)
        parallel = SpaceOdyssey(suite.fork().catalog, MERGE_CONFIG)
        serial_result = serial.query_batch(workload)
        parallel_result = parallel.query_batch(workload, workers=4)
        assert parallel_result.results == serial_result.results  # order included
        for expected, actual in zip(serial_result.reports, parallel_result.reports):
            for field in REPORT_FIELDS + ("objects_examined",):
                assert getattr(actual, field) == getattr(expected, field)
        assert parallel_result.group_reads == serial_result.group_reads
        assert (
            parallel_result.group_reads_deduped == serial_result.group_reads_deduped
        )
        assert adaptive_state(parallel) == adaptive_state(serial)
        assert disk_files(parallel) == disk_files(serial)

    def test_cpu_seconds_match_serial_batch(self, suite):
        workload = _workload(suite, n=16)
        serial = SpaceOdyssey(suite.fork().catalog, MERGE_CONFIG)
        parallel = SpaceOdyssey(suite.fork().catalog, MERGE_CONFIG)
        serial.query_batch(workload)
        parallel.query_batch(workload, workers=3)
        # The deterministic writer phase charges CPU in submission order,
        # so the accumulated float is the identical sum.
        assert parallel.disk.stats.cpu_seconds == serial.disk.stats.cpu_seconds

    def test_workers_one_uses_serial_engine(self, suite):
        executor = ParallelExecutor(
            SpaceOdyssey(suite.fork().catalog)._processor, workers=1
        )
        assert executor.workers == 1
        # A single-query batch short-circuits too, whatever the worker count.
        assert ParallelExecutor(
            SpaceOdyssey(suite.fork().catalog)._processor, workers=8
        ).workers == 8

    def test_invalid_workers_rejected(self, suite):
        odyssey = SpaceOdyssey(suite.fork().catalog)
        with pytest.raises(ValueError):
            odyssey.query_batch([], workers=0)
        with pytest.raises(ValueError):
            ParallelExecutor(odyssey._processor, workers=-2)

    def test_default_workers_positive_and_bounded(self):
        assert 1 <= default_workers() <= 8

    def test_empty_and_single_query_batches(self, suite):
        odyssey = SpaceOdyssey(suite.fork().catalog)
        empty = odyssey.query_batch([], workers=4)
        assert len(empty) == 0 and empty.reports == []
        workload = _workload(suite, n=1)
        single = odyssey.query_batch(workload, workers=4)
        assert len(single) == 1
        assert odyssey.summary().queries_executed == 1

    def test_accepts_prebuilt_query_batch(self, suite):
        workload = _workload(suite, n=6)
        batch = QueryBatch(workload)
        odyssey = SpaceOdyssey(suite.fork().catalog)
        result = odyssey.query_batch(batch, workers=2)
        assert len(result) == 6

    def test_invalid_dataset_id_fails_before_any_work(self, suite):
        odyssey = SpaceOdyssey(suite.fork().catalog)
        workload = _workload(suite, n=4)
        bad = [(workload[0].box, (0, 99))] + [
            (q.box, q.dataset_ids) for q in workload[1:]
        ]
        with pytest.raises(KeyError):
            odyssey.query_batch(bad, workers=3)
        assert odyssey.summary().queries_executed == 0
        assert odyssey.trees == {}


class TestParallelReadSet:
    @pytest.fixture
    def stored_groups(self):
        disk = Disk(model=DiskModel(), buffer_pages=64)
        file = PagedFile(disk, "objs.dat", spatial_object_codec(3))
        from repro.geometry.box import Box

        universe = Box((0.0, 0.0, 0.0), (100.0, 100.0, 100.0))
        runs = [
            file.append_group(
                make_random_objects(universe, 120, dataset_id=d, seed=d)
            )
            for d in range(3)
        ]
        return file, runs

    def test_counters_match_serial_read_set(self, stored_groups):
        file, runs = stored_groups
        serial = BatchReadSet(3)
        parallel = ParallelReadSet(3)
        sequence = [runs[0], runs[1], runs[0], runs[2], runs[1], runs[0]]
        for run in sequence:
            serial.read(file, run)
            parallel.read(file, run)
        assert parallel.group_reads == serial.group_reads == len(sequence)
        assert parallel.dedup_hits == serial.dedup_hits == len(sequence) - len(runs)

    def test_concurrent_reads_decode_each_group_once(self, stored_groups):
        file, runs = stored_groups
        read_set = ParallelReadSet(3)
        seen = []
        barrier = threading.Barrier(6)

        def reader() -> None:
            barrier.wait(timeout=10)
            for run in runs:
                seen.append(read_set.read(file, run))

        threads = [threading.Thread(target=reader) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert read_set.group_reads == 6 * len(runs)
        assert read_set.dedup_hits == 6 * len(runs) - len(runs)
        # Every reader got the same DecodedGroup instance per stored group.
        distinct = {id(group) for group in seen}
        assert len(distinct) == len(runs)


class TestProcessExecutor:
    def _compare(self, serial_engine, process_engine, workload, workers=3):
        serial_result = serial_engine.query_batch(workload)
        process_result = process_engine.query_batch(
            workload, workers=workers, executor="process"
        )
        assert process_result.results == serial_result.results  # order included
        for expected, actual in zip(serial_result.reports, process_result.reports):
            for field in REPORT_FIELDS + ("objects_examined",):
                assert getattr(actual, field) == getattr(expected, field)
        assert process_result.group_reads == serial_result.group_reads
        assert (
            process_result.group_reads_deduped == serial_result.group_reads_deduped
        )
        assert adaptive_state(process_engine) == adaptive_state(serial_engine)
        assert disk_files(process_engine) == disk_files(serial_engine)

    def test_bit_identical_to_serial_batch(self, suite):
        """In-memory backend: workers read the shared-memory staging block."""
        workload = _workload(suite)
        serial = SpaceOdyssey(suite.fork().catalog, MERGE_CONFIG)
        process = SpaceOdyssey(suite.fork().catalog, MERGE_CONFIG)
        self._compare(serial, process, workload)

    def test_bit_identical_on_filesystem_backend(self, tmp_path):
        """Filesystem backend: workers mmap the page files zero-copy."""
        from repro.data.suite import build_benchmark_suite
        from repro.storage.backend import FileSystemBackend

        fs_suite = build_benchmark_suite(
            n_datasets=3,
            objects_per_dataset=250,
            seed=19,
            disk=Disk(
                backend=FileSystemBackend(tmp_path / "pages"),
                model=DiskModel(seek_time_s=1e-4),
                buffer_pages=64,
            ),
        )
        workload = _workload(fs_suite, n=16)
        serial = SpaceOdyssey(fs_suite.fork().catalog, MERGE_CONFIG)
        process = SpaceOdyssey(fs_suite.fork().catalog, MERGE_CONFIG)
        # Sanity: the mmap fast path is actually available on this backend.
        raw = process.catalog.datasets()[0].file.name
        assert process.disk.mmap_descriptor(raw) is not None
        self._compare(serial, process, workload)

    def test_workers_one_uses_serial_engine(self, suite):
        from repro.core import parallel as parallel_mod
        from repro.core.parallel import ProcessExecutor

        engine = SpaceOdyssey(suite.fork().catalog, MERGE_CONFIG)
        workload = _workload(suite, n=6)
        before = dict(parallel_mod._pools)
        result = engine.query_batch(workload, workers=1, executor="process")
        assert len(result.results) == len(workload)
        assert parallel_mod._pools == before  # no pool was started

    def test_snapshot_with_process_executor_rejected(self, suite):
        engine = SpaceOdyssey(suite.fork().catalog, MERGE_CONFIG)
        with pytest.raises(ValueError, match="snapshot"):
            engine.query_batch(
                _workload(suite, n=4), snapshot=True, executor="process", workers=2
            )

    def test_unknown_executor_rejected(self, suite):
        engine = SpaceOdyssey(suite.fork().catalog, MERGE_CONFIG)
        with pytest.raises(ValueError, match="executor"):
            engine.query_batch(_workload(suite, n=4), workers=2, executor="fiber")

    def test_config_default_executor(self, suite):
        """``OdysseyConfig.batch_executor`` picks the pool when executor=None."""
        from dataclasses import replace

        config = replace(MERGE_CONFIG, batch_executor="process")
        workload = _workload(suite, n=12)
        serial = SpaceOdyssey(suite.fork().catalog, MERGE_CONFIG)
        process = SpaceOdyssey(suite.fork().catalog, config)
        serial_result = serial.query_batch(workload)
        process_result = process.query_batch(workload, workers=3)
        assert process_result.results == serial_result.results
        assert adaptive_state(process) == adaptive_state(serial)
        with pytest.raises(ValueError, match="batch_executor"):
            OdysseyConfig(batch_executor="fiber")

    def test_broken_pool_falls_back_to_threads(self, suite, monkeypatch):
        """A dead pool reruns the batch on the thread executor, bit-identically."""
        from concurrent.futures.process import BrokenProcessPool

        from repro.core import parallel as parallel_mod

        class _DeadPool:
            def submit(self, *args, **kwargs):
                raise BrokenProcessPool("worker died")

        monkeypatch.setattr(
            parallel_mod, "_process_pool", lambda workers: _DeadPool()
        )
        discarded = []
        monkeypatch.setattr(parallel_mod, "_discard_pool", discarded.append)
        workload = _workload(suite)
        serial = SpaceOdyssey(suite.fork().catalog, MERGE_CONFIG)
        process = SpaceOdyssey(suite.fork().catalog, MERGE_CONFIG)
        serial_result = serial.query_batch(workload)
        process_result = process.query_batch(workload, workers=3, executor="process")
        assert discarded == [3]
        assert process_result.results == serial_result.results
        assert adaptive_state(process) == adaptive_state(serial)
        assert disk_files(process) == disk_files(serial)
