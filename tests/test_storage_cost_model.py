"""Unit tests for the disk cost model and IO statistics."""

from __future__ import annotations

import pytest

from repro.storage.cost_model import AccessKind, DiskModel, IOStats


class TestDiskModel:
    def test_page_transfer_time(self):
        model = DiskModel(page_size=4096, transfer_rate_bytes_per_s=4096 * 100)
        assert model.page_transfer_time_s == pytest.approx(0.01)

    def test_random_access_includes_seek(self):
        model = DiskModel(seek_time_s=0.005, page_size=4096, transfer_rate_bytes_per_s=4096 * 100)
        assert model.access_time_s(AccessKind.RANDOM, 1) == pytest.approx(0.015)
        assert model.access_time_s(AccessKind.SEQUENTIAL, 1) == pytest.approx(0.01)

    def test_multi_page_access_scales_transfer_only(self):
        model = DiskModel(seek_time_s=0.005, page_size=4096, transfer_rate_bytes_per_s=4096 * 100)
        random_ten = model.access_time_s(AccessKind.RANDOM, 10)
        assert random_ten == pytest.approx(0.005 + 0.1)

    def test_zero_pages(self):
        model = DiskModel()
        assert model.access_time_s(AccessKind.SEQUENTIAL, 0) == 0.0

    def test_negative_pages_rejected(self):
        with pytest.raises(ValueError):
            DiskModel().access_time_s(AccessKind.RANDOM, -1)

    def test_cpu_time(self):
        model = DiskModel(cpu_per_record_s=1e-6)
        assert model.cpu_time_s(1000) == pytest.approx(1e-3)
        with pytest.raises(ValueError):
            model.cpu_time_s(-1)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DiskModel(page_size=0)
        with pytest.raises(ValueError):
            DiskModel(seek_time_s=-1)
        with pytest.raises(ValueError):
            DiskModel(transfer_rate_bytes_per_s=0)
        with pytest.raises(ValueError):
            DiskModel(cpu_per_record_s=-1)


class TestIOStats:
    def test_records_accumulate(self):
        stats = IOStats()
        stats.record_read(AccessKind.RANDOM, 2, 0.5)
        stats.record_read(AccessKind.SEQUENTIAL, 3, 0.1)
        stats.record_write(AccessKind.RANDOM, 1, 0.2)
        stats.record_cpu(0.05)
        assert stats.pages_read == 5
        assert stats.pages_written == 1
        assert stats.seeks == 2
        assert stats.io_seconds == pytest.approx(0.8)
        assert stats.simulated_seconds == pytest.approx(0.85)
        assert stats.reads_by_kind["random"] == 2
        assert stats.reads_by_kind["sequential"] == 3

    def test_cache_hits(self):
        stats = IOStats()
        stats.record_cache_hit(3)
        assert stats.cache_hits == 3

    def test_negative_cpu_rejected(self):
        with pytest.raises(ValueError):
            IOStats().record_cpu(-0.1)

    def test_snapshot_is_independent(self):
        stats = IOStats()
        stats.record_read(AccessKind.RANDOM, 1, 0.1)
        snap = stats.snapshot()
        stats.record_read(AccessKind.RANDOM, 1, 0.1)
        assert snap.pages_read == 1
        assert stats.pages_read == 2

    def test_delta_since(self):
        stats = IOStats()
        stats.record_read(AccessKind.RANDOM, 1, 0.1)
        snap = stats.snapshot()
        stats.record_read(AccessKind.SEQUENTIAL, 4, 0.4)
        stats.record_write(AccessKind.RANDOM, 2, 0.3)
        delta = stats.delta_since(snap)
        assert delta.pages_read == 4
        assert delta.pages_written == 2
        assert delta.io_seconds == pytest.approx(0.7)
        assert delta.reads_by_kind["sequential"] == 4
        assert delta.reads_by_kind["random"] == 0
