"""Randomized differential fuzz harness: six engines, one truth.

For each seed, a pseudo-random generator derives an entire scenario —
suite shape (dimension, dataset count and sizes, buffer pool budget and
shard count), engine configuration (merge knobs, refinement threshold) and
workload (length, combination sizes, range/ids distributions) — and the
same query sequence is executed through all six execution paths:

* **scalar** — the seed per-record reference (``columnar=False``, ``query``);
* **columnar** — the vectorized sequential engine (``query``);
* **batch** — ``query_batch`` in random-size chunks, serial executor;
* **parallel** — ``query_batch`` in the same chunks, ``workers`` threads;
* **epoch** — ``query_batch(..., snapshot=True)`` in the same chunks:
  the MVCC read path of :mod:`repro.core.epoch`, pinned to a published
  epoch and read lock-free;
* **process** — ``query_batch(..., executor="process")`` in the same
  chunks: page decode + filtering in worker *processes* over
  shared-memory staged pages (:class:`~repro.core.parallel.ProcessExecutor`).

Agreement is asserted at the strength each pair guarantees:

* scalar vs columnar: byte-identical hits *in the same order*, identical
  reports including ``objects_examined``;
* batch vs parallel, batch vs epoch, batch vs process: identical hits
  *in the same order*, identical reports including ``objects_examined``
  (all four read the
  same start-of-batch trees through the same deterministic plans — for
  the epoch engine, in isolation the pinned snapshot IS start-of-batch
  state and every pre-image overlay lookup misses);
* columnar vs batch: identical hit *sets* per query (batching may reorder
  within a result list) and identical reports except ``objects_examined``
  (the one documented batching deviation);
* all six: identical post-run adaptive state and byte-identical on-disk
  files.

Every assertion message carries the scenario seed, so a failure is
reproduced with ``run_fuzz_scenario(seed)`` in a REPL or by grepping the
pytest output for ``fuzz seed``.

A quick sample of seeds runs in tier-1; set ``REPRO_FUZZ_ITERATIONS=N``
to fuzz N extra seeds in the slow-marked deep mode::

    REPRO_FUZZ_ITERATIONS=200 python -m pytest tests/test_engine_fuzz.py -q
"""

from __future__ import annotations

import os
import random
from dataclasses import replace

import pytest

from repro.bench.runner import generate_workload
from repro.core.config import OdysseyConfig
from repro.core.odyssey import SpaceOdyssey
from repro.data.suite import build_benchmark_suite
from repro.storage.cost_model import DiskModel

from tests.test_batch_differential import (
    REPORT_FIELDS,
    adaptive_state,
    disk_files,
    packed_hits,
)

#: Seeds fuzzed in every tier-1 run.
QUICK_SEEDS = tuple(range(4))

#: Extra seeds fuzzed in deep mode (``REPRO_FUZZ_ITERATIONS=N``).
DEEP_ITERATIONS = int(os.environ.get("REPRO_FUZZ_ITERATIONS", "0"))
DEEP_SEEDS = tuple(range(len(QUICK_SEEDS), len(QUICK_SEEDS) + DEEP_ITERATIONS))

#: Report fields compared for the pairs that also guarantee examined counts.
STRICT_REPORT_FIELDS = REPORT_FIELDS + ("objects_examined",)


def _random_scenario(rng: random.Random) -> dict:
    """One fully-derived scenario: suite, config and workload parameters."""
    dimension = rng.choice((2, 3, 3))  # 3-D weighted: the paper's setting
    return {
        "dimension": dimension,
        "n_datasets": rng.randint(2, 4),
        "objects_per_dataset": rng.randint(150, 450),
        "suite_seed": rng.randint(0, 2**31),
        "buffer_pages": rng.choice((0, 32, 256)),
        "buffer_shards": rng.choice((1, 4)),
        "config": OdysseyConfig(
            refinement_threshold=rng.choice((2.0, 4.0)),
            merge_threshold=rng.choice((1, 2)),
            min_merge_combination=rng.choice((2, 3)),
            merge_partition_min_hits=rng.choice((1, 2)),
            merge_only_converged=rng.choice((True, False)),
            merge_space_budget_pages=rng.choice((None, 8, 16)),
            enable_merging=rng.random() > 0.15,
        ),
        "n_queries": rng.randint(10, 22),
        "workload_seed": rng.randint(0, 2**31),
        "datasets_per_query": rng.randint(1, 3),
        "volume_fraction": rng.choice((1e-3, 5e-3, 2e-2)),
        "ranges": rng.choice(("uniform", "clustered")),
        "ids_distribution": rng.choice(
            ("uniform", "zipf", "heavy_hitter", "self_similar")
        ),
        "batch_size": rng.choice((2, 3, 5, 8, 64)),
        "workers": rng.randint(2, 4),
    }


def run_fuzz_scenario(
    seed: int, compression: str | None = None, traced: bool = False
) -> None:
    """Derive the scenario for ``seed``, run all six engines, assert agreement.

    ``traced=True`` enables full per-phase tracing on the four batch-path
    engines (batch, parallel, epoch, process) while scalar and columnar
    stay untraced — every cross-engine equality below then doubles as a
    proof that telemetry observes without perturbing: traced engines must
    match the untraced references bit-for-bit (hits, reports, adaptive
    state, on-disk bytes).
    """
    rng = random.Random(seed)
    scenario = _random_scenario(rng)
    tag = f"fuzz seed {seed} ({scenario['dimension']}-D, {scenario['n_queries']} queries)"

    suite = build_benchmark_suite(
        n_datasets=scenario["n_datasets"],
        objects_per_dataset=scenario["objects_per_dataset"],
        seed=scenario["suite_seed"],
        dimension=scenario["dimension"],
        buffer_pages=scenario["buffer_pages"],
        buffer_shards=scenario["buffer_shards"],
        model=DiskModel(seek_time_s=1e-4),
        compression=compression,
    )
    workload = list(
        generate_workload(
            suite.universe,
            suite.catalog.dataset_ids(),
            scenario["n_queries"],
            seed=scenario["workload_seed"],
            datasets_per_query=min(
                scenario["datasets_per_query"], scenario["n_datasets"]
            ),
            volume_fraction=scenario["volume_fraction"],
            ranges=scenario["ranges"],
            ids_distribution=scenario["ids_distribution"],
        )
    )
    config = scenario["config"]

    scalar = SpaceOdyssey(suite.fork().catalog, replace(config, columnar=False))
    columnar = SpaceOdyssey(suite.fork().catalog, config)
    batch = SpaceOdyssey(suite.fork().catalog, config)
    parallel = SpaceOdyssey(suite.fork().catalog, config)
    epoch = SpaceOdyssey(suite.fork().catalog, config)
    process = SpaceOdyssey(suite.fork().catalog, config)
    tracers = {}
    if traced:
        for engine in (batch, parallel, epoch, process):
            tracers[engine] = engine.enable_tracing(capacity=512)

    scalar_hits, scalar_reports = [], []
    columnar_hits, columnar_reports = [], []
    for query in workload:
        scalar_hits.append(scalar.query(query.box, query.dataset_ids))
        scalar_reports.append(scalar.last_report)
        columnar_hits.append(columnar.query(query.box, query.dataset_ids))
        columnar_reports.append(columnar.last_report)

    batch_hits, batch_reports = [], []
    parallel_hits, parallel_reports = [], []
    epoch_hits, epoch_reports = [], []
    process_hits, process_reports = [], []
    chunk_size = scenario["batch_size"]
    for start in range(0, len(workload), chunk_size):
        chunk = workload[start : start + chunk_size]
        serial_result = batch.query_batch(chunk)
        batch_hits.extend(serial_result.results)
        batch_reports.extend(serial_result.reports)
        parallel_result = parallel.query_batch(chunk, workers=scenario["workers"])
        parallel_hits.extend(parallel_result.results)
        parallel_reports.extend(parallel_result.reports)
        epoch_result = epoch.query_batch(
            chunk, snapshot=True, workers=scenario["workers"]
        )
        epoch_hits.extend(epoch_result.results)
        epoch_reports.extend(epoch_result.reports)
        process_result = process.query_batch(
            chunk, workers=scenario["workers"], executor="process"
        )
        process_hits.extend(process_result.results)
        process_reports.extend(process_result.reports)

    for index in range(len(workload)):
        assert scalar_hits[index] == columnar_hits[index], (
            f"{tag}: scalar vs columnar hits differ (order included) "
            f"for query {index}"
        )
        assert batch_hits[index] == parallel_hits[index], (
            f"{tag}: batch vs parallel hits differ (order included) "
            f"for query {index}"
        )
        assert batch_hits[index] == epoch_hits[index], (
            f"{tag}: batch vs epoch hits differ (order included) "
            f"for query {index}"
        )
        assert batch_hits[index] == process_hits[index], (
            f"{tag}: batch vs process hits differ (order included) "
            f"for query {index}"
        )
        assert packed_hits(columnar, columnar_hits[index]) == packed_hits(
            batch, batch_hits[index]
        ), f"{tag}: columnar vs batch hit bytes differ for query {index}"
        for field in STRICT_REPORT_FIELDS:
            assert getattr(scalar_reports[index], field) == getattr(
                columnar_reports[index], field
            ), f"{tag}: scalar vs columnar report field {field!r} differs for query {index}"
            assert getattr(batch_reports[index], field) == getattr(
                parallel_reports[index], field
            ), f"{tag}: batch vs parallel report field {field!r} differs for query {index}"
            assert getattr(batch_reports[index], field) == getattr(
                epoch_reports[index], field
            ), f"{tag}: batch vs epoch report field {field!r} differs for query {index}"
            assert getattr(batch_reports[index], field) == getattr(
                process_reports[index], field
            ), f"{tag}: batch vs process report field {field!r} differs for query {index}"
        for field in REPORT_FIELDS:
            assert getattr(columnar_reports[index], field) == getattr(
                batch_reports[index], field
            ), f"{tag}: columnar vs batch report field {field!r} differs for query {index}"

    reference_state = adaptive_state(scalar)
    reference_files = disk_files(scalar)
    for name, engine in (
        ("columnar", columnar),
        ("batch", batch),
        ("parallel", parallel),
        ("epoch", epoch),
        ("process", process),
    ):
        assert adaptive_state(engine) == reference_state, (
            f"{tag}: {name} adaptive state diverged from scalar"
        )
        assert disk_files(engine) == reference_files, (
            f"{tag}: {name} on-disk bytes diverged from scalar"
        )

    if traced:
        for engine, tracer in tracers.items():
            spans = tracer.finished()
            assert spans, f"{tag}: a traced engine recorded no spans"
            assert any(span.name == "batch" for span in spans), (
                f"{tag}: traced engine is missing its batch root spans"
            )


@pytest.mark.parametrize("seed", QUICK_SEEDS)
def test_fuzz_quick(seed):
    """The tier-1 sample of the fuzz space."""
    run_fuzz_scenario(seed)


@pytest.mark.parametrize("seed", QUICK_SEEDS[:2])
def test_fuzz_compressed_raw_files(seed):
    """The same six-engine oracle over zlib-compressed raw dataset files.

    Every fork shares the master's compressed bytes, so the per-page
    codec header must decode identically through the scalar path, the
    columnar path, the buffer pool's decoded layer and the process
    executor's staged buffers.
    """
    run_fuzz_scenario(seed, compression="zlib")


@pytest.mark.parametrize("seed", QUICK_SEEDS[:2])
def test_fuzz_traced(seed):
    """The six-engine oracle with tracing fully enabled on the batch paths.

    The observation-only contract of :mod:`repro.obs`: a traced engine is
    bit-identical to an untraced one.  Scalar and columnar stay untraced
    as references, so every equality the oracle asserts proves it.
    """
    run_fuzz_scenario(seed, traced=True)


@pytest.mark.slow
@pytest.mark.skipif(
    DEEP_ITERATIONS == 0,
    reason="deep fuzz disabled; set REPRO_FUZZ_ITERATIONS=N to enable",
)
@pytest.mark.parametrize("seed", DEEP_SEEDS)
def test_fuzz_deep(seed):
    """The opt-in deep sweep (one test per extra seed)."""
    run_fuzz_scenario(seed)


# ---------------------------------------------------------------------- #
# Fault campaign: the same six-engine oracle under injected storage faults
# ---------------------------------------------------------------------- #

#: Seeds fault-fuzzed in every tier-1 run.
FAULT_QUICK_SEEDS = (0, 1)

#: Extra seeds fault-fuzzed in deep mode (``REPRO_FAULT_ITERATIONS=N``).
FAULT_DEEP_ITERATIONS = int(os.environ.get("REPRO_FAULT_ITERATIONS", "0"))
FAULT_DEEP_SEEDS = tuple(
    range(len(FAULT_QUICK_SEEDS), len(FAULT_QUICK_SEEDS) + FAULT_DEEP_ITERATIONS)
)


def run_fault_campaign(seed: int) -> None:
    """One fuzz scenario re-run with every engine's storage under fire.

    Each engine's cloned backend is wrapped in a seeded
    :class:`~repro.storage.faults.FaultInjectingBackend` (transient
    read/write errors, in-flight bit-flips, torn in-place writes) under a
    :class:`~repro.storage.retry.RetryingBackend`.  The contract: the
    retry layer absorbs every injected fault (zero client-visible
    errors), and all six engines still produce bit-identical hits,
    adaptive state and on-disk bytes — fault placement differs per engine
    (thread scheduling consumes the fault RNG in different orders), so
    this proves transient faults cannot perturb logical state.
    """
    from repro.storage.faults import FaultInjectingBackend, FaultPlan
    from repro.storage.retry import RetryingBackend, RetryPolicy

    from tests.test_recovery import fork_with

    rng = random.Random(0xFA17 + seed)
    scenario = _random_scenario(rng)
    tag = f"fault seed {seed} ({scenario['n_queries']} queries)"

    suite = build_benchmark_suite(
        n_datasets=scenario["n_datasets"],
        objects_per_dataset=scenario["objects_per_dataset"],
        seed=scenario["suite_seed"],
        dimension=scenario["dimension"],
        buffer_pages=scenario["buffer_pages"],
        buffer_shards=scenario["buffer_shards"],
        model=DiskModel(seek_time_s=1e-4),
    )
    workload = list(
        generate_workload(
            suite.universe,
            suite.catalog.dataset_ids(),
            scenario["n_queries"],
            seed=scenario["workload_seed"],
            datasets_per_query=min(
                scenario["datasets_per_query"], scenario["n_datasets"]
            ),
            volume_fraction=scenario["volume_fraction"],
            ranges=scenario["ranges"],
            ids_distribution=scenario["ids_distribution"],
        )
    )
    config = scenario["config"]
    plan = FaultPlan(
        seed=seed,
        read_error_rate=0.03,
        write_error_rate=0.03,
        corrupt_read_rate=0.02,
        torn_write_rate=0.02,
    )
    policy = RetryPolicy(max_attempts=8, seed=seed)

    def faulty_fork():
        return fork_with(
            suite,
            lambda backend: RetryingBackend(
                FaultInjectingBackend(backend, plan), policy, sleep=lambda _s: None
            ),
        )

    scalar = SpaceOdyssey(faulty_fork().catalog, replace(config, columnar=False))
    columnar = SpaceOdyssey(faulty_fork().catalog, config)
    batch = SpaceOdyssey(faulty_fork().catalog, config)
    parallel = SpaceOdyssey(faulty_fork().catalog, config)
    epoch = SpaceOdyssey(faulty_fork().catalog, config)
    process = SpaceOdyssey(faulty_fork().catalog, config)
    engines = (
        ("scalar", scalar),
        ("columnar", columnar),
        ("batch", batch),
        ("parallel", parallel),
        ("epoch", epoch),
        ("process", process),
    )

    scalar_hits, columnar_hits = [], []
    for query in workload:
        scalar_hits.append(scalar.query(query.box, query.dataset_ids))
        columnar_hits.append(columnar.query(query.box, query.dataset_ids))

    batch_hits, parallel_hits, epoch_hits = [], [], []
    process_hits = []
    chunk_size = scenario["batch_size"]
    for start in range(0, len(workload), chunk_size):
        chunk = workload[start : start + chunk_size]
        batch_hits.extend(batch.query_batch(chunk).results)
        parallel_hits.extend(
            parallel.query_batch(chunk, workers=scenario["workers"]).results
        )
        epoch_hits.extend(
            epoch.query_batch(
                chunk, snapshot=True, workers=scenario["workers"]
            ).results
        )
        process_hits.extend(
            process.query_batch(
                chunk, workers=scenario["workers"], executor="process"
            ).results
        )

    # Disarm before the byte-level comparison, like restarting on healthy
    # hardware; the retry layer has already proven it absorbs everything.
    injected = 0
    for name, engine in engines:
        retrying = engine.disk.backend
        fault = retrying.inner
        fault.disarm()
        counters = fault.counters()
        injected += (
            counters.transient_read_errors
            + counters.transient_write_errors
            + counters.reads_corrupted
            + counters.torn_writes
        )
        assert retrying.counters().exhausted == 0, (
            f"{tag}: {name} exhausted a retry budget (client-visible error)"
        )
    assert injected > 0, f"{tag}: the campaign injected no faults at all"

    for index in range(len(workload)):
        assert scalar_hits[index] == columnar_hits[index], (
            f"{tag}: scalar vs columnar hits differ for query {index}"
        )
        assert batch_hits[index] == parallel_hits[index], (
            f"{tag}: batch vs parallel hits differ for query {index}"
        )
        assert batch_hits[index] == epoch_hits[index], (
            f"{tag}: batch vs epoch hits differ for query {index}"
        )
        assert batch_hits[index] == process_hits[index], (
            f"{tag}: batch vs process hits differ for query {index}"
        )
        assert packed_hits(columnar, columnar_hits[index]) == packed_hits(
            batch, batch_hits[index]
        ), f"{tag}: columnar vs batch hit bytes differ for query {index}"

    reference_state = adaptive_state(scalar)
    reference_files = disk_files(scalar)
    for name, engine in engines[1:]:
        assert adaptive_state(engine) == reference_state, (
            f"{tag}: {name} adaptive state diverged under faults"
        )
        assert disk_files(engine) == reference_files, (
            f"{tag}: {name} on-disk bytes diverged under faults"
        )


@pytest.mark.parametrize("seed", FAULT_QUICK_SEEDS)
def test_fault_campaign_quick(seed):
    """The tier-1 sample of the fault-campaign space."""
    run_fault_campaign(seed)


@pytest.mark.slow
@pytest.mark.skipif(
    FAULT_DEEP_ITERATIONS == 0,
    reason="deep fault campaign disabled; set REPRO_FAULT_ITERATIONS=N to enable",
)
@pytest.mark.parametrize("seed", FAULT_DEEP_SEEDS)
def test_fault_campaign_deep(seed):
    """The opt-in deep fault sweep (one test per extra seed)."""
    run_fault_campaign(seed)
