"""Tests for the SpaceOdyssey facade: correctness, adaptivity, merging, budget."""

from __future__ import annotations

import pytest

from repro.baselines.interface import BruteForceScan, result_keys
from repro.core.config import OdysseyConfig
from repro.core.odyssey import SpaceOdyssey
from repro.geometry.box import Box
from repro.workload import ClusteredRangeGenerator, CombinationGenerator, WorkloadBuilder

from tests.conftest import make_catalog


@pytest.fixture
def catalog(disk, universe):
    return make_catalog(disk, universe, n_datasets=4, count=400, seed=41)


@pytest.fixture
def config() -> OdysseyConfig:
    # ppl = 8 keeps the trees small for unit tests; the benchmark uses 64.
    return OdysseyConfig(partitions_per_level=8, merge_threshold=1, min_merge_combination=3,
                         merge_partition_min_hits=1, merge_only_converged=False)


@pytest.fixture
def odyssey(catalog, config) -> SpaceOdyssey:
    return SpaceOdyssey(catalog, config)


@pytest.fixture
def oracle(catalog) -> BruteForceScan:
    return BruteForceScan(catalog)


def small_queries(universe, count=12, seed=5):
    generator = ClusteredRangeGenerator(
        universe, volume_fraction=2e-3, seed=seed, n_cluster_centers=3
    )
    return list(generator.ranges(count))


class TestBasics:
    def test_no_build_phase(self, odyssey):
        assert odyssey.is_built
        odyssey.build()  # no-op
        assert odyssey.summary().datasets_initialized == 0

    def test_invalid_ppl_for_dimension_fails_fast(self, catalog):
        with pytest.raises(ValueError):
            SpaceOdyssey(catalog, OdysseyConfig(partitions_per_level=10))

    def test_query_requires_datasets(self, odyssey, universe):
        with pytest.raises(ValueError):
            odyssey.query(Box.cube((1.0, 1.0, 1.0), 1.0), [])

    def test_query_rejects_unknown_dataset(self, odyssey, universe):
        with pytest.raises(KeyError):
            odyssey.query(Box.cube((1.0, 1.0, 1.0), 1.0), [99])

    def test_name_reflects_merging(self, catalog, config):
        assert SpaceOdyssey(catalog, config).name == "Odyssey"
        assert (
            SpaceOdyssey(catalog, config.without_merging()).name == "Odyssey w/o merging"
        )


class TestLazyInitialization:
    def test_first_query_initialises_only_requested_datasets(self, odyssey, universe):
        odyssey.query(Box.cube((50.0, 50.0, 50.0), 10.0), [1])
        assert set(odyssey.trees) == {1}
        report = odyssey.last_report
        assert report.initialized_datasets == [1]

    def test_second_query_does_not_reinitialise(self, odyssey, universe):
        query = Box.cube((50.0, 50.0, 50.0), 10.0)
        odyssey.query(query, [1])
        odyssey.query(query, [1, 2])
        assert odyssey.last_report.initialized_datasets == [2]

    def test_untouched_datasets_never_initialised(self, odyssey, universe):
        for _ in range(5):
            odyssey.query(Box.cube((50.0, 50.0, 50.0), 10.0), [0, 1])
        assert set(odyssey.trees) == {0, 1}


class TestCorrectness:
    def test_matches_bruteforce_across_workload(self, odyssey, oracle, catalog, universe):
        range_gen = ClusteredRangeGenerator(
            universe, volume_fraction=1e-3, seed=3, n_cluster_centers=4
        )
        combo_gen = CombinationGenerator(catalog.dataset_ids(), 3, "zipf", seed=4)
        workload = WorkloadBuilder(range_gen, combo_gen).build(40)
        for query in workload:
            got = result_keys(odyssey.query(query.box, query.dataset_ids))
            expected = result_keys(oracle.query(query.box, query.dataset_ids))
            assert got == expected

    def test_repeated_identical_query_is_stable(self, odyssey, oracle, universe):
        query = Box.cube((40.0, 60.0, 50.0), 15.0)
        expected = result_keys(oracle.query(query, [0, 1, 2]))
        for _ in range(6):
            assert result_keys(odyssey.query(query, [0, 1, 2])) == expected

    def test_results_only_from_requested_datasets(self, odyssey, universe):
        results = odyssey.query(Box.cube((50.0, 50.0, 50.0), 40.0), [2, 3])
        assert {obj.dataset_id for obj in results} <= {2, 3}


class TestAdaptivity:
    def test_hot_areas_get_refined(self, odyssey, universe):
        query = Box.cube((50.0, 50.0, 50.0), 4.0)
        for _ in range(5):
            odyssey.query(query, [0])
        tree = odyssey.trees[0]
        assert tree.depth >= 2
        assert tree.n_partitions > odyssey.config.partitions_per_level

    def test_objects_never_lost_across_refinement(self, odyssey, catalog, universe):
        for box in small_queries(universe, count=15):
            odyssey.query(box, [0, 1])
        for dataset_id, tree in odyssey.trees.items():
            assert tree.total_stored_objects() == catalog.get(dataset_id).n_objects

    def test_per_query_cost_decreases_with_repetition(self, odyssey, universe, disk):
        query = Box.cube((50.0, 50.0, 50.0), 6.0)
        costs = []
        for _ in range(6):
            disk.clear_cache()
            disk.reset_head()
            before = disk.stats_snapshot()
            odyssey.query(query, [0, 1])
            costs.append(disk.stats.delta_since(before).simulated_seconds)
        assert costs[-1] < costs[0]

    def test_summary_reflects_progress(self, odyssey, universe):
        for box in small_queries(universe, count=8):
            odyssey.query(box, [0, 1, 2])
        summary = odyssey.summary()
        assert summary.queries_executed == 8
        assert summary.datasets_initialized == 3
        assert summary.total_partitions >= 3 * odyssey.config.partitions_per_level


class TestMerging:
    def test_merge_file_created_for_hot_combination(self, odyssey, universe):
        query = Box.cube((50.0, 50.0, 50.0), 8.0)
        for _ in range(4):
            odyssey.query(query, [0, 1, 2])
        assert len(odyssey.merge_directory) == 1
        assert odyssey.merger.merges_performed >= 1
        assert frozenset({0, 1, 2}) in odyssey.merge_directory

    def test_small_combinations_not_merged(self, odyssey, universe):
        query = Box.cube((50.0, 50.0, 50.0), 8.0)
        for _ in range(5):
            odyssey.query(query, [0, 1])
        assert len(odyssey.merge_directory) == 0

    def test_merging_disabled(self, catalog, config, universe):
        odyssey = SpaceOdyssey(catalog, config.without_merging())
        query = Box.cube((50.0, 50.0, 50.0), 8.0)
        for _ in range(5):
            odyssey.query(query, [0, 1, 2])
        assert len(odyssey.merge_directory) == 0

    def test_queries_use_merge_file_after_creation(self, odyssey, universe, oracle):
        query = Box.cube((50.0, 50.0, 50.0), 8.0)
        for _ in range(5):
            odyssey.query(query, [0, 1, 2])
        report = odyssey.last_report
        assert report.route == "exact"
        assert report.partitions_from_merge > 0
        # And the answers remain correct while reading from the merge file.
        assert result_keys(odyssey.query(query, [0, 1, 2])) == result_keys(
            oracle.query(query, [0, 1, 2])
        )

    def test_superset_merge_file_serves_smaller_combination(self, odyssey, universe, oracle):
        query = Box.cube((50.0, 50.0, 50.0), 8.0)
        for _ in range(4):
            odyssey.query(query, [0, 1, 2, 3])
        odyssey.query(query, [0, 1, 2])
        assert odyssey.last_report.route in {"superset", "exact"}
        assert result_keys(odyssey.query(query, [0, 1, 2])) == result_keys(
            oracle.query(query, [0, 1, 2])
        )

    def test_correctness_after_merge_and_further_refinement(self, odyssey, oracle, universe):
        # Queries keep refining after the merge file exists; answers must not change.
        big = Box.cube((50.0, 50.0, 50.0), 12.0)
        small = Box.cube((50.0, 50.0, 50.0), 2.0)
        for _ in range(4):
            odyssey.query(big, [0, 1, 2])
        for _ in range(4):
            odyssey.query(small, [0, 1, 2])
        assert result_keys(odyssey.query(big, [0, 1, 2])) == result_keys(
            oracle.query(big, [0, 1, 2])
        )


class TestSpaceBudget:
    def test_lru_eviction_respects_budget(self, catalog, universe):
        config = OdysseyConfig(
            partitions_per_level=8,
            merge_threshold=1,
            min_merge_combination=3,
            merge_partition_min_hits=1,
            merge_only_converged=False,
            merge_space_budget_pages=4,
        )
        odyssey = SpaceOdyssey(catalog, config)
        query_a = Box.cube((30.0, 30.0, 30.0), 10.0)
        query_b = Box.cube((70.0, 70.0, 70.0), 10.0)
        for _ in range(4):
            odyssey.query(query_a, [0, 1, 2])
        for _ in range(4):
            odyssey.query(query_b, [1, 2, 3])
        assert odyssey.merge_directory.total_pages() <= 4 or len(odyssey.merge_directory) == 1
        assert odyssey.merger.evictions >= 1

    def test_unbounded_budget_never_evicts(self, odyssey, universe):
        query = Box.cube((50.0, 50.0, 50.0), 8.0)
        for _ in range(5):
            odyssey.query(query, [0, 1, 2])
        assert odyssey.merger.evictions == 0
