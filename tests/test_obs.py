"""Unit and integration tests for the telemetry layer (:mod:`repro.obs`).

Covers the three layers the module promises — tracing, the metrics
registry, exporters — plus the wiring: trace structure across all six
execution modes (span parentage, process-worker grafting, ring-buffer
eviction), registry adapter invariants (snapshot totals reconcile
exactly with the legacy subsystem counters they adopt), exporter golden
outputs, the disk stats snapshot satellite, service latency digests,
epoch-retention gauges, structured recovery logs and the ``stats`` CLI
command.
"""

from __future__ import annotations

import json
import logging
import threading

import pytest

from repro.bench.runner import generate_workload
from repro.core.config import OdysseyConfig
from repro.core.odyssey import SpaceOdyssey
from repro.data.suite import build_benchmark_suite
from repro.geometry.box import Box
from repro.obs import (
    Counter,
    EngineSnapshot,
    Gauge,
    Histogram,
    JsonLogFormatter,
    MetricsRegistry,
    Tracer,
    configure_json_logging,
    maybe_span,
    snapshot_to_json,
    snapshot_to_prometheus,
    spans_to_json,
    write_trace,
)
from repro.obs.metrics import log_bucket_bounds
from repro.obs.trace import _NULL_SPAN
from repro.storage.cost_model import DiskModel


@pytest.fixture(scope="module")
def suite():
    return build_benchmark_suite(
        n_datasets=2,
        objects_per_dataset=250,
        seed=11,
        model=DiskModel(seek_time_s=1e-4),
    )


@pytest.fixture(scope="module")
def workload(suite):
    return list(
        generate_workload(
            suite.universe,
            suite.catalog.dataset_ids(),
            10,
            seed=3,
            datasets_per_query=2,
            volume_fraction=5e-3,
        )
    )


# ---------------------------------------------------------------------- #
# Tracer
# ---------------------------------------------------------------------- #


class TestTracer:
    def test_nesting_follows_the_thread_stack(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
                assert tracer.current_span() is inner
        assert tracer.current_span() is None
        names = [span.name for span in tracer.finished()]
        assert names == ["inner", "outer"]  # children end first

    def test_rootless_spans_start_new_traces(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.parent_id is None and b.parent_id is None
        assert a.trace_id != b.trace_id

    def test_explicit_parent_crosses_threads(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            recorded = []

            def worker():
                # A pool thread has an empty stack; parent= links it.
                with tracer.span("work", parent=root) as span:
                    recorded.append(span)

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert recorded[0].parent_id == root.span_id
        assert recorded[0].trace_id == root.trace_id

    def test_ring_buffer_evicts_oldest_and_counts(self):
        tracer = Tracer(capacity=3)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer) == 3
        assert tracer.evicted == 2
        assert [span.name for span in tracer.finished()] == ["s2", "s3", "s4"]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_record_completed_grafts_without_stack(self):
        tracer = Tracer()
        with tracer.span("phase") as phase:
            grafted = tracer.record_completed(
                "worker", parent=phase, start_wall=123.0, duration_s=0.5, pid=42
            )
            # Grafting must not disturb the open-span stack.
            assert tracer.current_span() is phase
        assert grafted.parent_id == phase.span_id
        assert grafted.start_wall == 123.0
        assert grafted.duration_s == 0.5
        assert grafted.attributes["pid"] == 42

    def test_event_parents_to_current_span(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            event = tracer.event("tick", detail=1)
        assert event.parent_id == root.span_id
        assert event.duration_s == 0.0

    def test_drain_empties_the_ring(self):
        tracer = Tracer()
        with tracer.span("once"):
            pass
        assert [span.name for span in tracer.drain()] == ["once"]
        assert len(tracer) == 0
        assert tracer.finished() == []


class TestMaybeSpan:
    def test_disabled_path_is_one_shared_noop(self):
        first = maybe_span(None, "anything", attr=1)
        second = maybe_span(None, "other")
        assert first is second is _NULL_SPAN
        with first as span:
            assert span is None

    def test_enabled_path_records(self):
        tracer = Tracer()
        with maybe_span(tracer, "phase", k=1) as span:
            assert span is not None and span.attributes == {"k": 1}
        assert [s.name for s in tracer.finished()] == ["phase"]


# ---------------------------------------------------------------------- #
# Metrics
# ---------------------------------------------------------------------- #


class TestCounterGauge:
    def test_counter_only_goes_up(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2)
        assert counter.value == 3
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_callback(self):
        gauge = Gauge("g")
        gauge.set(7)
        assert gauge.value == 7
        live = Gauge("live", callback=lambda: 41 + 1)
        assert live.value == 42
        with pytest.raises(RuntimeError):
            live.set(1)


class TestHistogram:
    def test_observe_summary_and_percentiles(self):
        histogram = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 0.6, 1.5, 3.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary.count == 4
        assert summary.total == pytest.approx(5.6)
        assert summary.minimum == 0.5
        assert summary.maximum == 3.0
        # p50 is the upper bound of the bucket holding the median.
        assert summary.p50 == 1.0
        assert summary.p99 == 3.0  # clamped to the observed maximum

    def test_empty_summary_is_zero(self):
        summary = Histogram("h").summary()
        assert summary.count == 0 and summary.p99 == 0.0

    def test_overflow_bucket(self):
        histogram = Histogram("h", bounds=(1.0,))
        histogram.observe(10.0)
        state = histogram.to_dict()
        assert state["bucket_counts"] == [0]
        assert state["overflow"] == 1

    def test_merge_adds_bucket_counts(self):
        bounds = (1.0, 2.0)
        a, b = Histogram("a", bounds), Histogram("b", bounds)
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge(b)
        summary = a.summary()
        assert summary.count == 3
        assert summary.minimum == 0.5 and summary.maximum == 9.0
        assert a.to_dict()["overflow"] == 1

    def test_merge_requires_identical_bounds(self):
        with pytest.raises(ValueError):
            Histogram("a", (1.0,)).merge(Histogram("b", (2.0,)))

    def test_default_bounds_are_shared_and_valid(self):
        assert Histogram("a").bounds == Histogram("b").bounds
        with pytest.raises(ValueError):
            log_bucket_bounds(growth=1.0)
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2.0, 1.0))


class TestMetricsRegistry:
    def test_adapter_flattens_nested_mappings_under_prefix(self):
        registry = MetricsRegistry()
        registry.add_counter_source(
            "disk", lambda: {"pages": 3, "by_kind": {"seq": 1, "rand": 2}}
        )
        snapshot = registry.snapshot()
        assert snapshot.counters == {
            "disk.pages": 3,
            "disk.by_kind.seq": 1,
            "disk.by_kind.rand": 2,
        }

    def test_raising_source_is_skipped(self):
        registry = MetricsRegistry()

        def broken():
            raise RuntimeError("dead weakref")

        registry.add_counter_source("bad", broken)
        registry.add_counter_source("good", lambda: {"x": 1})
        assert registry.snapshot().counters == {"good.x": 1}

    def test_owned_metrics_and_histogram_sources(self):
        registry = MetricsRegistry()
        counter = registry.counter("own.counter")
        counter.inc(5)
        registry.gauge("own.gauge", callback=lambda: 9)
        histogram = registry.histogram("own.hist", bounds=(1.0,))
        histogram.observe(0.5)
        external = Histogram("ext", bounds=(1.0,))
        registry.add_histogram_source("ext", lambda: external)
        snapshot = registry.snapshot()
        assert snapshot.counters["own.counter"] == 5
        assert snapshot.gauges["own.gauge"] == 9
        assert snapshot.histograms["own.hist"]["count"] == 1
        assert snapshot.histograms["ext"]["count"] == 0


# ---------------------------------------------------------------------- #
# Exporters
# ---------------------------------------------------------------------- #


class TestExporters:
    @staticmethod
    def _tiny_snapshot() -> EngineSnapshot:
        histogram = Histogram("h", bounds=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(3.0)
        return EngineSnapshot(
            taken_at=0.0,
            counters={"a.b": 2},
            gauges={"g": 1.5},
            histograms={"h": histogram.to_dict()},
        )

    def test_prometheus_golden_output(self):
        text = snapshot_to_prometheus(self._tiny_snapshot())
        assert text == (
            "# TYPE repro_a_b counter\n"
            "repro_a_b 2\n"
            "# TYPE repro_g gauge\n"
            "repro_g 1.5\n"
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1.0"} 1\n'
            'repro_h_bucket{le="2.0"} 1\n'
            'repro_h_bucket{le="+Inf"} 2\n'
            "repro_h_sum 3.5\n"
            "repro_h_count 2\n"
        )

    def test_json_round_trips(self):
        document = json.loads(snapshot_to_json(self._tiny_snapshot()))
        assert document["counters"]["a.b"] == 2
        assert document["histograms"]["h"]["bucket_counts"] == [1, 0]

    def test_spans_to_json_and_write_trace(self, tmp_path):
        tracer = Tracer()
        with tracer.span("root", k=1):
            with tracer.span("child"):
                pass
        document = json.loads(spans_to_json(tracer.finished(), evicted=7))
        assert document["evicted"] == 7
        assert [span["name"] for span in document["spans"]] == ["child", "root"]
        path = tmp_path / "trace.json"
        assert write_trace(tracer, path) == 2
        on_disk = json.loads(path.read_text())
        assert on_disk["spans"][1]["attributes"] == {"k": 1}


# ---------------------------------------------------------------------- #
# Structured logs
# ---------------------------------------------------------------------- #


class TestJsonLogging:
    def test_formatter_emits_json_with_extras(self):
        record = logging.LogRecord(
            "repro.test", logging.INFO, __file__, 1, "hello %s", ("world",), None
        )
        record.replayed_queries = 3
        payload = json.loads(JsonLogFormatter().format(record))
        assert payload["message"] == "hello world"
        assert payload["level"] == "INFO"
        assert payload["logger"] == "repro.test"
        assert payload["replayed_queries"] == 3

    def test_configure_is_idempotent(self):
        logger = logging.getLogger("repro")
        before = list(logger.handlers)
        try:
            handler = configure_json_logging()
            again = configure_json_logging()
            assert handler not in logger.handlers  # replaced, not stacked
            json_handlers = [
                h for h in logger.handlers if getattr(h, "_repro_json", False)
            ]
            assert json_handlers == [again]
        finally:
            logger.handlers[:] = before

    def test_recovery_emits_structured_progress(self, tmp_path, caplog):
        suite = build_benchmark_suite(
            n_datasets=2, objects_per_dataset=200, seed=5
        )
        engine = SpaceOdyssey(
            suite.catalog, journal=tmp_path / "manifest.journal"
        )
        window = Box.cube(
            center=tuple(500.0 for _ in range(suite.catalog.dimension)),
            side=200.0,
        )
        engine.query(window, [0, 1])
        with caplog.at_level(logging.INFO, logger="repro.recovery"):
            recovered = SpaceOdyssey.recover(engine.journal, disk=engine.disk)
        messages = [record.message for record in caplog.records]
        assert "recovery started" in messages
        assert "recovery complete" in messages
        complete = next(
            record
            for record in caplog.records
            if record.message == "recovery complete"
        )
        assert complete.replayed_queries == 1
        assert recovered.summary().queries_executed == 1


# ---------------------------------------------------------------------- #
# Disk stats snapshot (satellite: atomic copy vs documented live view)
# ---------------------------------------------------------------------- #


class TestDiskStatsSnapshot:
    def test_snapshot_is_an_immutable_copy(self, suite, workload):
        engine = SpaceOdyssey(suite.fork().catalog)
        disk = engine.disk
        frozen = disk.stats_snapshot()
        pages_before = frozen.pages_read
        for query in workload[:3]:
            engine.query(query.box, query.dataset_ids)
        assert frozen.pages_read == pages_before, "snapshot mutated after I/O"
        assert disk.stats_snapshot().pages_read > pages_before

    def test_stats_property_remains_the_live_view(self, suite):
        disk = suite.fork().catalog.datasets()[0].disk
        assert disk.stats is disk.stats, "live view must be the shared object"
        assert disk.stats_snapshot() is not disk.stats


# ---------------------------------------------------------------------- #
# Engine telemetry: adapter reconciliation and gauges
# ---------------------------------------------------------------------- #


class TestEngineTelemetry:
    def test_snapshot_reconciles_with_legacy_counters(self, suite, workload):
        engine = SpaceOdyssey(suite.fork().catalog)
        for start in range(0, len(workload), 4):
            engine.query_batch(workload[start : start + 4])
        snapshot = engine.telemetry()
        io = engine.disk.stats_snapshot()
        pool = engine.disk.buffer_pool.counters()
        summary = engine.summary()
        assert snapshot.counters["disk.io.pages_read"] == io.pages_read
        assert snapshot.counters["disk.io.cache_hits"] == io.cache_hits
        assert (
            snapshot.counters["disk.io.reads_by_kind.sequential"]
            == io.reads_by_kind["sequential"]
        )
        assert snapshot.counters["disk.buffer.hits"] == pool.hits
        assert snapshot.counters["disk.buffer.misses"] == pool.misses
        assert (
            snapshot.counters["engine.queries_executed"]
            == summary.queries_executed
        )
        assert (
            snapshot.counters["engine.total_partitions"]
            == summary.total_partitions
        )

    def test_epoch_gauges_quiescent_and_pinned(self, suite, workload):
        engine = SpaceOdyssey(suite.fork().catalog)
        for query in workload[:3]:
            engine.query(query.box, query.dataset_ids)
        manager = engine.epochs
        gauges = manager.gauges()
        assert gauges == {
            "live_epochs": 1,
            "pinned_readers": 0,
            "retained_pages": 0,
            "retained_bytes": 0,
        }
        assert manager.retained_bytes_total() == 0
        epoch = manager.pin()
        try:
            assert manager.gauges()["pinned_readers"] == 1
        finally:
            manager.unpin(epoch)
        snapshot = engine.telemetry()
        assert snapshot.gauges["epoch.live_epochs"] == 1
        assert snapshot.gauges["epoch.pinned_readers"] == 0

    def test_trace_gauges_follow_enable_disable(self, suite):
        engine = SpaceOdyssey(suite.fork().catalog)
        assert engine.tracer is None
        assert engine.telemetry().gauges["trace.enabled"] == 0
        tracer = engine.enable_tracing(capacity=128)
        assert engine.tracer is tracer
        gauges = engine.telemetry().gauges
        assert gauges["trace.enabled"] == 1
        assert gauges["trace.capacity"] == 128
        engine.disable_tracing()
        assert engine.tracer is None

    def test_retry_and_fault_adapters_reconcile(self, workload):
        from repro.storage.faults import FaultInjectingBackend, FaultPlan
        from repro.storage.retry import RetryingBackend, RetryPolicy

        from tests.test_recovery import fork_with

        local_suite = build_benchmark_suite(
            n_datasets=2, objects_per_dataset=200, seed=5
        )
        plan = FaultPlan(seed=1, read_error_rate=0.05, corrupt_read_rate=0.03)
        forked = fork_with(
            local_suite,
            lambda backend: RetryingBackend(
                FaultInjectingBackend(backend, plan),
                RetryPolicy(max_attempts=8, seed=1),
                sleep=lambda _s: None,
            ),
        )
        engine = SpaceOdyssey(forked.catalog)
        for query in workload[:5]:
            engine.query(query.box, query.dataset_ids)
        snapshot = engine.telemetry()
        retrying = engine.disk.backend
        counters = retrying.counters()
        assert snapshot.counters["storage.retry.retries"] == counters.retries
        assert (
            snapshot.counters["storage.retry.corrupt_reads_detected"]
            == counters.corrupt_reads_detected
        )
        fault = retrying.inner.counters()
        assert (
            snapshot.counters["storage.faults.transient_read_errors"]
            == fault.transient_read_errors
        )

    def test_prometheus_export_of_live_engine_parses(self, suite, workload):
        engine = SpaceOdyssey(suite.fork().catalog)
        engine.query(workload[0].box, workload[0].dataset_ids)
        text = snapshot_to_prometheus(engine.telemetry())
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert line.startswith("# TYPE repro_")
            else:
                name, value = line.rsplit(" ", 1)
                assert name.startswith("repro_")
                float(value)  # every sample parses as a number


# ---------------------------------------------------------------------- #
# Trace structure across all six execution modes
# ---------------------------------------------------------------------- #


def _check_parentage(spans, tag):
    by_id = {span.span_id: span for span in spans}
    for span in spans:
        if span.parent_id is None:
            continue
        parent = by_id.get(span.parent_id)
        assert parent is not None, f"{tag}: span {span.name} orphaned"
        assert parent.trace_id == span.trace_id, (
            f"{tag}: {span.name} crossed traces"
        )


class TestTraceStructure:
    @pytest.fixture(scope="class")
    def traced_runs(self, suite, workload):
        """Each execution mode run once with tracing on; returns tracers."""
        config = OdysseyConfig()
        runs = {}

        def run_sequential(name, engine_config):
            engine = SpaceOdyssey(suite.fork().catalog, engine_config)
            tracer = engine.enable_tracing(capacity=8192)
            for query in workload:
                engine.query(query.box, query.dataset_ids)
            runs[name] = tracer

        run_sequential("scalar", OdysseyConfig(columnar=False))
        run_sequential("columnar", config)

        def run_batched(name, **kwargs):
            engine = SpaceOdyssey(suite.fork().catalog, config)
            tracer = engine.enable_tracing(capacity=8192)
            for start in range(0, len(workload), 4):
                engine.query_batch(workload[start : start + 4], **kwargs)
            runs[name] = tracer

        run_batched("batch")
        run_batched("parallel", workers=2)
        run_batched("epoch", snapshot=True, workers=2)
        run_batched("process", workers=2, executor="process")
        return runs

    @pytest.mark.parametrize(
        "mode", ["scalar", "columnar", "batch", "parallel", "epoch", "process"]
    )
    def test_parentage_is_closed_and_consistent(self, traced_runs, mode):
        spans = traced_runs[mode].finished()
        assert spans, f"{mode}: no spans recorded"
        assert traced_runs[mode].evicted == 0
        _check_parentage(spans, mode)

    def test_sequential_modes_emit_query_spans(self, traced_runs, workload):
        for mode in ("scalar", "columnar"):
            spans = traced_runs[mode].finished()
            queries = [span for span in spans if span.name == "query"]
            assert len(queries) == len(workload)
            for span in queries:
                assert span.parent_id is None  # each query is its own trace
                assert "route" in span.attributes
                assert "hits" in span.attributes

    @pytest.mark.parametrize("mode", ["batch", "parallel", "epoch", "process"])
    def test_batch_modes_nest_phases_under_roots(self, traced_runs, mode):
        spans = traced_runs[mode].finished()
        by_id = {span.span_id: span for span in spans}
        roots = [span for span in spans if span.name == "batch"]
        assert roots, f"{mode}: missing batch root spans"
        executors = {span.attributes["executor"] for span in roots}
        expected = {
            "batch": "serial",
            "parallel": "thread",
            "epoch": "epoch",
            "process": "process",
        }[mode]
        assert executors == {expected}
        phases = [
            span for span in spans if span.name in ("batch.overlap", "batch.read_filter")
        ]
        assert phases, f"{mode}: missing phase spans"
        root_ids = {span.span_id for span in roots}
        for span in phases:
            # Phases hang off the root, possibly through epoch.prepare.
            ancestor = span
            while ancestor.parent_id is not None:
                ancestor = by_id[ancestor.parent_id]
            assert ancestor.span_id in root_ids

    def test_thread_parallel_filter_spans_parented_to_phase(self, traced_runs, workload):
        spans = traced_runs["parallel"].finished()
        by_id = {span.span_id: span for span in spans}
        filters = [span for span in spans if span.name == "query.filter"]
        assert len(filters) == len(workload)
        for span in filters:
            assert by_id[span.parent_id].name == "batch.read_filter"

    def test_process_workers_graft_timing_spans(self, traced_runs, workload):
        spans = traced_runs["process"].finished()
        by_id = {span.span_id: span for span in spans}
        grafted = [span for span in spans if span.name == "query.filter"]
        assert len(grafted) == len(workload)
        for span in grafted:
            assert "pid" in span.attributes, "worker timing lost its pid"
            assert by_id[span.parent_id].name == "batch.read_filter"
        worker_overlap = [
            span for span in spans if span.name == "batch.overlap.worker"
        ]
        for span in worker_overlap:
            assert by_id[span.parent_id].name == "batch.overlap"

    def test_epoch_mode_records_prepare_and_commit(self, traced_runs):
        spans = traced_runs["epoch"].finished()
        names = {span.name for span in spans}
        assert {"epoch.prepare", "epoch.commit", "epoch.publish"} <= names
        prepares = [span for span in spans if span.name == "epoch.prepare"]
        assert all("epoch" in span.attributes for span in prepares)


# ---------------------------------------------------------------------- #
# Serving: latency digest and serve-phase spans
# ---------------------------------------------------------------------- #


class TestServeTelemetry:
    def test_latency_digest_and_serve_spans(self, suite, workload):
        engine = SpaceOdyssey(suite.fork().catalog)
        tracer = engine.enable_tracing()
        with engine.serve(max_batch=4, max_delay_ms=1.0) as service:
            submissions = [
                service.submit(query.box, query.dataset_ids)
                for query in workload
            ]
            for submission in submissions:
                submission.result(timeout=30.0)
        stats = service.stats
        assert stats.completed == len(workload)
        assert stats.latency is not None
        assert stats.latency.count == len(workload)
        assert stats.latency.maximum >= stats.latency.minimum > 0.0
        assert stats.latency.p99 >= stats.latency.p50
        spans = tracer.finished()
        serve_spans = [
            span for span in spans if span.name.startswith("serve.")
        ]
        assert serve_spans, "no serve-phase spans recorded"
        flushes = {span.attributes.get("flush") for span in serve_spans}
        assert flushes <= {"size", "deadline", "drain"}
        # The engine-level registry merges latency across services.
        snapshot = engine.telemetry()
        assert (
            snapshot.histograms["serve.latency_seconds"]["count"]
            == len(workload)
        )
        assert snapshot.counters["serve.completed"] == len(workload)


# ---------------------------------------------------------------------- #
# CLI: the stats command
# ---------------------------------------------------------------------- #


class TestStatsCommand:
    def test_stats_json_and_trace(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "stats.json"
        trace = tmp_path / "trace.json"
        assert (
            main(
                [
                    "stats",
                    "--scale",
                    "tiny",
                    "--queries",
                    "4",
                    "--batch-size",
                    "2",
                    "--output",
                    str(output),
                    "--trace",
                    str(trace),
                ]
            )
            == 0
        )
        snapshot = json.loads(output.read_text())
        assert snapshot["counters"]["engine.queries_executed"] == 4
        document = json.loads(trace.read_text())
        assert document["spans"], "stats --trace wrote no spans"

    def test_stats_prometheus_to_stdout(self, capsys):
        from repro.cli import main

        assert (
            main(
                ["stats", "--queries", "2", "--batch-size", "2", "--format", "prometheus"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert out.startswith("# TYPE repro_")
        assert "repro_engine_queries_executed 2" in out
