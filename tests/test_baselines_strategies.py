"""Unit tests for the 1fE / Ain1 strategies and the brute-force oracle."""

from __future__ import annotations

import pytest

from repro.baselines.grid import GridIndex
from repro.baselines.interface import BruteForceScan, result_keys
from repro.baselines.strategies import AllInOne, OneForEach
from repro.geometry.box import Box

from tests.conftest import make_catalog


@pytest.fixture
def catalog(disk, universe):
    return make_catalog(disk, universe, n_datasets=3, count=200, seed=31)


@pytest.fixture
def grid_factory(disk, universe):
    def factory(name: str) -> GridIndex:
        return GridIndex(disk, name, universe, cells_per_dim=4)

    return factory


@pytest.fixture
def oracle(catalog):
    return BruteForceScan(catalog)


QUERY = Box.cube((50.0, 50.0, 50.0), 30.0)


class TestBruteForceScan:
    def test_filters_by_dataset(self, catalog, oracle):
        result = oracle.query(QUERY, [0, 2])
        assert {o.dataset_id for o in result} <= {0, 2}

    def test_is_always_built(self, oracle):
        assert oracle.is_built
        oracle.build()  # no-op


class TestOneForEach:
    def test_builds_one_index_per_dataset(self, catalog, grid_factory):
        strategy = OneForEach(catalog, grid_factory, "Grid-1fE")
        strategy.build()
        assert strategy.is_built
        assert set(strategy.indexes) == {0, 1, 2}

    def test_query_matches_oracle(self, catalog, grid_factory, oracle):
        strategy = OneForEach(catalog, grid_factory, "Grid-1fE")
        strategy.build()
        for ids in ([0], [1, 2], [0, 1, 2]):
            assert result_keys(strategy.query(QUERY, ids)) == result_keys(
                oracle.query(QUERY, ids)
            )

    def test_query_before_build_fails(self, catalog, grid_factory):
        strategy = OneForEach(catalog, grid_factory)
        with pytest.raises(RuntimeError):
            strategy.query(QUERY, [0])

    def test_build_twice_fails(self, catalog, grid_factory):
        strategy = OneForEach(catalog, grid_factory)
        strategy.build()
        with pytest.raises(RuntimeError):
            strategy.build()

    def test_unknown_dataset_rejected(self, catalog, grid_factory):
        strategy = OneForEach(catalog, grid_factory)
        strategy.build()
        with pytest.raises(KeyError):
            strategy.query(QUERY, [99])

    def test_probes_only_requested_indexes(self, catalog, grid_factory, disk):
        strategy = OneForEach(catalog, grid_factory, "Grid-1fE")
        strategy.build()
        disk.clear_cache()
        before = disk.stats_snapshot()
        strategy.query(QUERY, [0])
        one_dataset_io = disk.stats.delta_since(before).pages_read
        disk.clear_cache()
        before = disk.stats_snapshot()
        strategy.query(QUERY, [0, 1, 2])
        all_datasets_io = disk.stats.delta_since(before).pages_read
        assert all_datasets_io >= one_dataset_io

    def test_drop(self, catalog, grid_factory):
        strategy = OneForEach(catalog, grid_factory)
        strategy.build()
        strategy.drop()
        assert not strategy.is_built


class TestAllInOne:
    def test_builds_single_index(self, catalog, grid_factory):
        strategy = AllInOne(catalog, grid_factory, "Grid-Ain1")
        strategy.build()
        assert strategy.is_built
        assert strategy.index is not None
        assert strategy.index.n_objects == catalog.total_objects()

    def test_query_matches_oracle(self, catalog, grid_factory, oracle):
        strategy = AllInOne(catalog, grid_factory, "Grid-Ain1")
        strategy.build()
        for ids in ([1], [0, 2], [0, 1, 2]):
            assert result_keys(strategy.query(QUERY, ids)) == result_keys(
                oracle.query(QUERY, ids)
            )

    def test_filters_non_requested_datasets(self, catalog, grid_factory):
        strategy = AllInOne(catalog, grid_factory)
        strategy.build()
        result = strategy.query(universe_box(catalog), [1])
        assert {o.dataset_id for o in result} == {1}

    def test_query_before_build_fails(self, catalog, grid_factory):
        strategy = AllInOne(catalog, grid_factory)
        with pytest.raises(RuntimeError):
            strategy.query(QUERY, [0])

    def test_unknown_dataset_rejected(self, catalog, grid_factory):
        strategy = AllInOne(catalog, grid_factory)
        strategy.build()
        with pytest.raises(KeyError):
            strategy.query(QUERY, [42])

    def test_drop(self, catalog, grid_factory):
        strategy = AllInOne(catalog, grid_factory)
        strategy.build()
        strategy.drop()
        assert not strategy.is_built
        assert strategy.index is None


def universe_box(catalog) -> Box:
    return catalog.universe
