"""Unit tests for record codecs and page packing."""

from __future__ import annotations

import pytest

from repro.data.spatial_object import SpatialObject, spatial_object_codec
from repro.geometry.box import Box
from repro.storage.codec import (
    FixedRecordCodec,
    decode_page,
    encode_page,
    paginate,
    records_per_page,
)


@pytest.fixture
def int_codec() -> FixedRecordCodec[int]:
    return FixedRecordCodec("<q", lambda value: (value,), lambda fields: fields[0])


class TestFixedRecordCodec:
    def test_roundtrip(self, int_codec):
        assert int_codec.unpack(int_codec.pack(42)) == 42
        assert int_codec.record_size == 8

    def test_spatial_object_roundtrip(self):
        codec = spatial_object_codec(3)
        obj = SpatialObject(oid=7, dataset_id=3, box=Box((0.0, 1.0, 2.0), (3.0, 4.0, 5.0)))
        assert codec.unpack(codec.pack(obj)) == obj

    def test_spatial_object_record_size_3d(self):
        # 2 int64 + 6 float64 = 64 bytes -> 63 objects per 4 KB page.
        codec = spatial_object_codec(3)
        assert codec.record_size == 64
        assert records_per_page(codec.record_size, 4096) == 63

    def test_spatial_object_dimension_mismatch(self):
        codec = spatial_object_codec(2)
        obj = SpatialObject(oid=0, dataset_id=0, box=Box((0.0, 0.0, 0.0), (1.0, 1.0, 1.0)))
        with pytest.raises(ValueError):
            codec.pack(obj)

    def test_codec_rejects_bad_dimension(self):
        with pytest.raises(ValueError):
            spatial_object_codec(0)


class TestPagePacking:
    def test_records_per_page_accounts_for_header_and_trailer(self, int_codec):
        # 4-byte count header + 4-byte checksum trailer: (84 - 4 - 4) / 8.
        assert records_per_page(int_codec.record_size, 84) == 9

    def test_record_too_large_for_page(self):
        with pytest.raises(ValueError):
            records_per_page(1000, 256)

    def test_encode_decode_roundtrip(self, int_codec):
        records = list(range(10))
        page = encode_page(int_codec, records, 256)
        assert len(page) <= 256
        assert decode_page(int_codec, page) == records

    def test_encode_partial_page(self, int_codec):
        page = encode_page(int_codec, [1, 2], 256)
        assert decode_page(int_codec, page) == [1, 2]

    def test_encode_overfull_page_rejected(self, int_codec):
        too_many = list(range(records_per_page(8, 256) + 1))
        with pytest.raises(ValueError):
            encode_page(int_codec, too_many, 256)

    def test_paginate_fills_pages(self, int_codec):
        capacity = records_per_page(8, 256)
        records = list(range(capacity * 2 + 3))
        pages = paginate(int_codec, records, 256)
        assert len(pages) == 3
        decoded = [record for page in pages for record in decode_page(int_codec, page)]
        assert decoded == records

    def test_paginate_empty(self, int_codec):
        assert paginate(int_codec, [], 256) == []
