"""Unit tests for record codecs and page packing."""

from __future__ import annotations

import pytest

from repro.data.spatial_object import SpatialObject, spatial_object_codec
from repro.geometry.box import Box
from repro.storage.codec import (
    FixedRecordCodec,
    decode_page,
    encode_page,
    paginate,
    records_per_page,
)


@pytest.fixture
def int_codec() -> FixedRecordCodec[int]:
    return FixedRecordCodec("<q", lambda value: (value,), lambda fields: fields[0])


class TestFixedRecordCodec:
    def test_roundtrip(self, int_codec):
        assert int_codec.unpack(int_codec.pack(42)) == 42
        assert int_codec.record_size == 8

    def test_spatial_object_roundtrip(self):
        codec = spatial_object_codec(3)
        obj = SpatialObject(oid=7, dataset_id=3, box=Box((0.0, 1.0, 2.0), (3.0, 4.0, 5.0)))
        assert codec.unpack(codec.pack(obj)) == obj

    def test_spatial_object_record_size_3d(self):
        # 2 int64 + 6 float64 = 64 bytes -> 63 objects per 4 KB page.
        codec = spatial_object_codec(3)
        assert codec.record_size == 64
        assert records_per_page(codec.record_size, 4096) == 63

    def test_spatial_object_dimension_mismatch(self):
        codec = spatial_object_codec(2)
        obj = SpatialObject(oid=0, dataset_id=0, box=Box((0.0, 0.0, 0.0), (1.0, 1.0, 1.0)))
        with pytest.raises(ValueError):
            codec.pack(obj)

    def test_codec_rejects_bad_dimension(self):
        with pytest.raises(ValueError):
            spatial_object_codec(0)


class TestPagePacking:
    def test_records_per_page_accounts_for_header_and_trailer(self, int_codec):
        # 4-byte count header + 4-byte checksum trailer: (84 - 4 - 4) / 8.
        assert records_per_page(int_codec.record_size, 84) == 9

    def test_record_too_large_for_page(self):
        with pytest.raises(ValueError):
            records_per_page(1000, 256)

    def test_encode_decode_roundtrip(self, int_codec):
        records = list(range(10))
        page = encode_page(int_codec, records, 256)
        assert len(page) <= 256
        assert decode_page(int_codec, page) == records

    def test_encode_partial_page(self, int_codec):
        page = encode_page(int_codec, [1, 2], 256)
        assert decode_page(int_codec, page) == [1, 2]

    def test_encode_overfull_page_rejected(self, int_codec):
        too_many = list(range(records_per_page(8, 256) + 1))
        with pytest.raises(ValueError):
            encode_page(int_codec, too_many, 256)

    def test_paginate_fills_pages(self, int_codec):
        capacity = records_per_page(8, 256)
        records = list(range(capacity * 2 + 3))
        pages = paginate(int_codec, records, 256)
        assert len(pages) == 3
        decoded = [record for page in pages for record in decode_page(int_codec, page)]
        assert decoded == records

    def test_paginate_empty(self, int_codec):
        assert paginate(int_codec, [], 256) == []


class TestPageCompression:
    """Optional per-page compression behind the header's codec bits."""

    @pytest.fixture
    def objects(self):
        from tests.conftest import make_random_objects

        universe = Box((0.0, 0.0, 0.0), (100.0, 100.0, 100.0))
        return make_random_objects(universe, 400, dataset_id=0, seed=11)

    def test_compressed_pages_roundtrip(self, int_codec):
        from repro.storage.codec import (
            COMPRESSION_CODECS,
            decode_page,
            decode_page_array,
            paginate_bytes_compressed,
        )

        import numpy as np

        dtype = np.dtype([("value", "<i8")])
        records = list(range(500))
        data = b"".join(int_codec.pack(r) for r in records)
        for compression in COMPRESSION_CODECS:
            pages = paginate_bytes_compressed(
                data, int_codec.record_size, 256, compression
            )
            decoded = [r for page in pages for r in decode_page(int_codec, page)]
            assert decoded == records
            array_decoded = []
            for page in pages:
                array_decoded.extend(
                    int(v) for v in decode_page_array(dtype, page)["value"]
                )
            assert array_decoded == records

    def test_compression_packs_more_records_per_page(self, int_codec):
        from repro.storage.codec import paginate, paginate_bytes_compressed

        records = list(range(2000))  # small ints: highly compressible
        data = b"".join(int_codec.pack(r) for r in records)
        plain = paginate(int_codec, records, 256)
        compressed = paginate_bytes_compressed(data, int_codec.record_size, 256, "zlib")
        assert len(compressed) < len(plain)

    def test_uncompressed_pages_have_zero_codec_bits(self, int_codec):
        from repro.storage.codec import encode_page, page_header_fields

        page = encode_page(int_codec, [1, 2, 3], 256)
        count, codec_id = page_header_fields(page)
        assert (count, codec_id) == (3, 0)

    def test_incompressible_chunk_falls_back_to_plain_page(self, int_codec):
        import os as _os

        from repro.storage.codec import (
            decode_page,
            page_header_fields,
            paginate_bytes_compressed,
        )

        rng_bytes = _os.urandom(int_codec.record_size * 64)
        # Interpret random bytes as records: incompressible payloads must
        # land in plain uncompressed pages rather than oversized ones.
        pages = paginate_bytes_compressed(rng_bytes, int_codec.record_size, 256, "zlib")
        assert all(len(page) == 256 for page in pages)
        recovered = b"".join(
            int_codec.pack(r) for page in pages for r in decode_page(int_codec, page)
        )
        assert recovered == rng_bytes
        assert any(page_header_fields(page)[1] == 0 for page in pages)

    def test_paged_file_compression_end_to_end(self, objects):
        from repro.storage.cost_model import DiskModel
        from repro.storage.disk import Disk
        from repro.storage.pagedfile import PagedFile

        codec = spatial_object_codec(3)
        disk = Disk(model=DiskModel(), buffer_pages=32)
        plain = PagedFile(disk, "plain.dat", codec)
        packed = PagedFile(disk, "packed.dat", codec, compression="zlib")
        run_plain = plain.append_group(objects)
        run_packed = packed.append_group(objects)
        assert packed.read_group(run_packed) == plain.read_group(run_plain)
        assert packed.num_pages() < plain.num_pages()
        frozen = packed.read_group_array(run_packed)
        assert not frozen.flags.writeable

    def test_scalar_and_array_writes_produce_identical_bytes(self, objects):
        from repro.storage.cost_model import DiskModel
        from repro.storage.disk import Disk
        from repro.storage.pagedfile import PagedFile

        codec = spatial_object_codec(3)
        disk = Disk(model=DiskModel(), buffer_pages=32)
        scalar_file = PagedFile(disk, "scalar.dat", codec, compression="zlib")
        array_file = PagedFile(disk, "array.dat", codec, compression="zlib")
        run = scalar_file.append_group(objects)
        array_file.append_group_array(scalar_file.read_group_array(run))
        scalar_pages = [
            disk.backend.read("scalar.dat", p)
            for p in range(disk.backend.num_pages("scalar.dat"))
        ]
        array_pages = [
            disk.backend.read("array.dat", p)
            for p in range(disk.backend.num_pages("array.dat"))
        ]
        assert scalar_pages == array_pages

    def test_unknown_compression_rejected(self):
        from repro.storage.cost_model import DiskModel
        from repro.storage.disk import Disk
        from repro.storage.pagedfile import PagedFile

        disk = Disk(model=DiskModel(), buffer_pages=4)
        with pytest.raises(ValueError, match="compression"):
            PagedFile(disk, "x.dat", spatial_object_codec(3), compression="lz99")

    def test_preferred_compression_is_available(self):
        from repro.storage.codec import COMPRESSION_CODECS, preferred_compression

        assert preferred_compression() in COMPRESSION_CODECS
