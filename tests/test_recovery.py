"""Crash-consistent recovery: differential parity, crash-point sweep, edge cases.

The contract under test (see :mod:`repro.core.recovery`): an engine
recovered from its manifest journal is **bit-identical** — adaptive
state, on-disk derived bytes, and the answers of every subsequent query —
to an engine that executed the same committed query prefix without ever
crashing.  The sweep drives a simulated crash into every journaled write
site (all six named journal crash points, plus scheduled crashes on the
Nth backend page mutation with torn-page persistence) and proves the
contract holds from each.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench.runner import generate_workload
from repro.core.config import OdysseyConfig
from repro.core.odyssey import SpaceOdyssey
from repro.core.recovery import RecoveryError, recover
from repro.data.dataset import Dataset, DatasetCatalog
from repro.data.spatial_object import spatial_object_codec
from repro.data.suite import BenchmarkSuite, build_benchmark_suite
from repro.storage.backend import FileSystemBackend
from repro.storage.cost_model import DiskModel
from repro.storage.disk import Disk
from repro.storage.errors import SimulatedCrash
from repro.storage.faults import FaultInjectingBackend, FaultPlan
from repro.storage.journal import ManifestJournal
from repro.storage.pagedfile import PagedFile

from tests.test_batch_differential import adaptive_state, disk_files, packed_hits

CONFIG = OdysseyConfig(merge_threshold=1, min_merge_combination=2)

N_QUERIES = 12


@pytest.fixture(scope="module")
def base_suite() -> BenchmarkSuite:
    return build_benchmark_suite(
        n_datasets=3,
        objects_per_dataset=250,
        seed=13,
        buffer_pages=64,
        model=DiskModel(seek_time_s=1e-4),
    )


def make_workload(suite: BenchmarkSuite, n: int = N_QUERIES, seed: int = 5):
    return list(
        generate_workload(
            suite.universe,
            suite.catalog.dataset_ids(),
            n,
            seed=seed,
            datasets_per_query=2,
            volume_fraction=5e-3,
        )
    )


def fork_with(suite: BenchmarkSuite, wrap) -> BenchmarkSuite:
    """`BenchmarkSuite.fork`, but with the cloned backend wrapped first."""
    disk = Disk(
        backend=wrap(suite.disk.backend.clone()),
        model=suite.disk.model,
        buffer_pages=suite.disk.buffer_pool.capacity_pages,
        buffer_shards=getattr(suite.disk.buffer_pool, "n_shards", 1),
    )
    datasets = [
        Dataset(
            dataset_id=dataset.dataset_id,
            name=dataset.name,
            universe=dataset.universe,
            n_objects=dataset.n_objects,
            disk=disk,
            file=PagedFile(
                disk, dataset.file.name, spatial_object_codec(dataset.dimension)
            ),
        )
        for dataset in suite.datasets
    ]
    return BenchmarkSuite(
        disk=disk,
        catalog=DatasetCatalog(datasets),
        generator=suite.generator,
        seed=suite.seed,
    )


@pytest.fixture(scope="module")
def reference(base_suite):
    """A never-crashed run with a full state snapshot after every query.

    ``snapshots[k]`` is the (adaptive_state, disk_files) pair after the
    first ``k`` queries — the oracle a recovered engine with ``k``
    committed queries must match bit-for-bit.
    """
    workload = make_workload(base_suite)
    engine = SpaceOdyssey(base_suite.fork().catalog, CONFIG)
    snapshots = [(adaptive_state(engine), disk_files(engine))]
    hits = []
    for query in workload:
        hits.append(engine.query(query.box, query.dataset_ids))
        snapshots.append((adaptive_state(engine), disk_files(engine)))
    return workload, engine, snapshots, hits


def assert_matches_reference(recovered, reference, committed: int) -> None:
    workload, ref_engine, snapshots, ref_hits = reference
    state, files = snapshots[committed]
    assert adaptive_state(recovered) == state, (
        f"adaptive state after recovery at commit {committed} diverged"
    )
    assert disk_files(recovered) == files, (
        f"on-disk bytes after recovery at commit {committed} diverged"
    )
    # Finishing the workload must land on the reference's final state.
    for j in range(committed, len(workload)):
        hits = recovered.query(workload[j].box, workload[j].dataset_ids)
        assert packed_hits(recovered, hits) == packed_hits(ref_engine, ref_hits[j]), (
            f"post-recovery answer for query {j} diverged"
        )
    assert adaptive_state(recovered) == snapshots[-1][0]
    assert disk_files(recovered) == snapshots[-1][1]


# ---------------------------------------------------------------------- #
# Differential parity
# ---------------------------------------------------------------------- #


class TestRecoveryParity:
    def test_recover_memory_backend(self, base_suite, reference, tmp_path):
        workload = reference[0]
        path = tmp_path / "journal.log"
        engine = SpaceOdyssey(base_suite.fork().catalog, CONFIG, journal=path)
        for query in workload[:8]:
            engine.query(query.box, query.dataset_ids)
        survivor = engine.disk.backend.clone()  # the bytes a crash leaves
        del engine

        recovered = SpaceOdyssey.recover(path, backend=survivor)
        assert recovered.summary().queries_executed == 8
        assert_matches_reference(recovered, reference, committed=8)
        # The recovered engine keeps journaling: the log now covers the
        # continuation queries too.
        assert len(ManifestJournal(path).read_last()["queries"]) == len(workload)

    def test_recover_filesystem_backend_argument_free(self, tmp_path):
        model = DiskModel(seek_time_s=1e-4)
        disk = Disk(
            backend=FileSystemBackend(tmp_path / "pages", page_size=model.page_size),
            model=model,
            buffer_pages=64,
        )
        suite = build_benchmark_suite(
            n_datasets=2, objects_per_dataset=200, seed=3, disk=disk
        )
        workload = make_workload(suite, n=6, seed=9)

        ref = SpaceOdyssey(suite.fork().catalog, CONFIG)
        for query in workload:
            ref.query(query.box, query.dataset_ids)

        path = tmp_path / "journal.log"
        engine = SpaceOdyssey(suite.catalog, CONFIG, journal=path)
        for query in workload:
            engine.query(query.box, query.dataset_ids)
        del engine  # the page files and the journal survive on disk

        # The manifest records the filesystem root: no arguments needed.
        recovered = SpaceOdyssey.recover(path)
        assert recovered.summary().queries_executed == len(workload)
        assert adaptive_state(recovered) == adaptive_state(ref)
        assert disk_files(recovered) == disk_files(ref)

    def test_batch_and_epoch_paths_are_journaled(self, base_suite, tmp_path):
        workload = make_workload(base_suite)
        path = tmp_path / "journal.log"
        engine = SpaceOdyssey(base_suite.fork().catalog, CONFIG, journal=path)
        engine.query_batch(workload[:4])
        engine.query_batch(workload[4:8], snapshot=True, workers=2)
        engine.query_batch(workload[8:])

        recovered = SpaceOdyssey.recover(path, backend=engine.disk.backend.clone())
        assert recovered.summary().queries_executed == len(workload)
        assert adaptive_state(recovered) == adaptive_state(engine)
        assert disk_files(recovered) == disk_files(engine)

    def test_recover_with_snapshot_reads_disabled(self, base_suite, tmp_path):
        config = replace(CONFIG, snapshot_reads=False)
        workload = make_workload(base_suite, n=6)
        path = tmp_path / "journal.log"
        engine = SpaceOdyssey(base_suite.fork().catalog, config, journal=path)
        for query in workload:
            engine.query(query.box, query.dataset_ids)

        recovered = SpaceOdyssey.recover(path, backend=engine.disk.backend.clone())
        assert recovered.config == config
        assert adaptive_state(recovered) == adaptive_state(engine)
        assert disk_files(recovered) == disk_files(engine)

    def test_recovery_is_idempotent(self, base_suite, tmp_path):
        # A crash *during* recovery just means recovery runs again: replay
        # writes nothing to the journal, so a second pass over the same
        # survivor bytes lands on the same state.
        workload = make_workload(base_suite, n=6)
        path = tmp_path / "journal.log"
        engine = SpaceOdyssey(base_suite.fork().catalog, CONFIG, journal=path)
        for query in workload:
            engine.query(query.box, query.dataset_ids)
        survivor = engine.disk.backend.clone()
        del engine

        first = SpaceOdyssey.recover(path, backend=survivor)
        state, files = adaptive_state(first), disk_files(first)
        del first
        again = SpaceOdyssey.recover(path, backend=survivor)
        assert adaptive_state(again) == state
        assert disk_files(again) == files


# ---------------------------------------------------------------------- #
# Crash-point sweep
# ---------------------------------------------------------------------- #

JOURNAL_CRASH_POINTS = (
    "journal.commit.start",
    "journal.commit.torn",
    "journal.commit.end",
    "journal.rewrite.start",
    "journal.rewrite.before_rename",
    "journal.rewrite.end",
)


class TestCrashPointSweep:
    @pytest.mark.parametrize("point", JOURNAL_CRASH_POINTS)
    def test_crash_at_every_journal_site(self, base_suite, reference, tmp_path, point):
        workload = reference[0]
        holder: dict[str, FaultInjectingBackend] = {}

        def wrap(backend):
            holder["fault"] = FaultInjectingBackend(
                backend, FaultPlan(crash_points=frozenset({point}))
            )
            return holder["fault"]

        forked = fork_with(base_suite, wrap)
        fault = holder["fault"]
        fault.disarm()  # construction commits the initial checkpoint cleanly
        path = tmp_path / "journal.log"
        journal = ManifestJournal(path, compact_every=3, crash_hook=fault.maybe_crash)
        engine = SpaceOdyssey(forked.catalog, CONFIG, journal=journal)
        fault.rearm()

        crashed_on = None
        for index, query in enumerate(workload):
            try:
                engine.query(query.box, query.dataset_ids)
            except SimulatedCrash:
                crashed_on = index
                break
        assert crashed_on is not None, f"crash point {point} never fired"
        del engine

        fault.disarm()  # restart on healthy hardware
        recovered = SpaceOdyssey.recover(
            ManifestJournal(path, compact_every=3), backend=fault
        )
        committed = recovered.summary().queries_executed
        # Crashing before durability loses the in-flight query; crashing
        # after keeps it.  Nothing else is acceptable.
        assert committed in (crashed_on, crashed_on + 1), (
            f"{point}: crash on query {crashed_on} recovered {committed} queries"
        )
        assert_matches_reference(recovered, reference, committed=committed)

    @pytest.mark.parametrize("nth_mutation", (1, 3, 10, 25, 60))
    def test_crash_on_nth_page_mutation(
        self, base_suite, reference, tmp_path, nth_mutation
    ):
        # Power loss mid-write: the Nth page mutation persists a torn page
        # (checksum-detectable) and kills the process.
        workload = reference[0]
        holder: dict[str, FaultInjectingBackend] = {}

        def wrap(backend):
            holder["fault"] = FaultInjectingBackend(
                backend,
                FaultPlan(crash_after_mutations=nth_mutation, torn_crash=True),
            )
            return holder["fault"]

        forked = fork_with(base_suite, wrap)
        fault = holder["fault"]
        fault.disarm()
        path = tmp_path / "journal.log"
        engine = SpaceOdyssey(forked.catalog, CONFIG, journal=path)
        fault.rearm()

        crashed_on = None
        for index, query in enumerate(workload):
            try:
                engine.query(query.box, query.dataset_ids)
            except SimulatedCrash:
                crashed_on = index
                break
        del engine
        fault.disarm()

        recovered = SpaceOdyssey.recover(path, backend=fault)
        committed = recovered.summary().queries_executed
        if crashed_on is None:
            # The workload performed fewer mutations than the schedule.
            assert committed == len(workload)
        else:
            # Page mutations happen strictly before the query commits.
            assert committed == crashed_on
        assert_matches_reference(recovered, reference, committed=committed)


# ---------------------------------------------------------------------- #
# Edge cases
# ---------------------------------------------------------------------- #


class TestRecoveryEdgeCases:
    def test_empty_journal_raises(self, tmp_path):
        with pytest.raises(RecoveryError, match="no intact manifest"):
            recover(tmp_path / "journal.log")

    def test_wholly_torn_journal_raises(self, tmp_path):
        import struct

        path = tmp_path / "journal.log"
        path.write_bytes(struct.pack("<II", 100, 0) + b"torn")
        with pytest.raises(RecoveryError, match="no intact manifest"):
            recover(path)

    def test_corrupt_tail_exposes_previous_commit(
        self, base_suite, reference, tmp_path
    ):
        workload = reference[0]
        path = tmp_path / "journal.log"
        engine = SpaceOdyssey(base_suite.fork().catalog, CONFIG, journal=path)
        for query in workload[:5]:
            engine.query(query.box, query.dataset_ids)
        survivor = engine.disk.backend.clone()
        del engine

        path.write_bytes(path.read_bytes()[:-3])  # tear the final record

        recovered = SpaceOdyssey.recover(path, backend=survivor)
        assert recovered.summary().queries_executed == 4
        assert_matches_reference(recovered, reference, committed=4)

    def test_unsupported_manifest_version_raises(self, tmp_path):
        path = tmp_path / "journal.log"
        ManifestJournal(path).commit({"version": 999, "queries": []})
        with pytest.raises(RecoveryError, match="version"):
            recover(path)

    def test_memory_backend_requires_survivor(self, base_suite, tmp_path):
        path = tmp_path / "journal.log"
        engine = SpaceOdyssey(base_suite.fork().catalog, CONFIG, journal=path)
        workload = make_workload(base_suite, n=1)
        engine.query(workload[0].box, workload[0].dataset_ids)
        with pytest.raises(RecoveryError, match="in-memory"):
            recover(path)  # no backend passed: the bytes died with the process

    def test_missing_raw_file_raises(self, base_suite, tmp_path):
        path = tmp_path / "journal.log"
        engine = SpaceOdyssey(base_suite.fork().catalog, CONFIG, journal=path)
        workload = make_workload(base_suite, n=2)
        for query in workload:
            engine.query(query.box, query.dataset_ids)
        survivor = engine.disk.backend.clone()
        raw = next(name for name in survivor.list_files() if name.startswith("raw"))
        survivor.delete(raw)
        with pytest.raises(RecoveryError, match="missing"):
            recover(path, backend=survivor)

    def test_fresh_engine_rejects_used_journal(self, base_suite, tmp_path):
        path = tmp_path / "journal.log"
        engine = SpaceOdyssey(base_suite.fork().catalog, CONFIG, journal=path)
        workload = make_workload(base_suite, n=1)
        engine.query(workload[0].box, workload[0].dataset_ids)
        del engine
        with pytest.raises(ValueError, match="recover"):
            SpaceOdyssey(base_suite.fork().catalog, CONFIG, journal=path)
