"""Unit tests for the synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generator import (
    ClusteredBoxGenerator,
    GeneratorProfile,
    NeuroscienceDatasetGenerator,
    UniformBoxGenerator,
    brain_universe,
    derived_rng,
)
from repro.data.suite import build_benchmark_suite
from repro.geometry.box import Box


@pytest.fixture
def universe() -> Box:
    return brain_universe(dimension=3, side=1000.0)


class TestHelpers:
    def test_brain_universe(self):
        box = brain_universe(dimension=2, side=10.0)
        assert box == Box((0.0, 0.0), (10.0, 10.0))
        with pytest.raises(ValueError):
            brain_universe(side=-1)

    def test_derived_rng_is_deterministic(self):
        a = derived_rng(7, "x", 3).integers(1_000_000)
        b = derived_rng(7, "x", 3).integers(1_000_000)
        c = derived_rng(7, "y", 3).integers(1_000_000)
        assert a == b
        assert a != c

    def test_generator_profile_validation(self):
        with pytest.raises(ValueError):
            GeneratorProfile(object_extent_fraction=0)
        with pytest.raises(ValueError):
            GeneratorProfile(extent_jitter=1.0)


class TestUniformGenerator:
    def test_objects_inside_universe(self, universe):
        gen = UniformBoxGenerator(universe, seed=1)
        objects = list(gen.objects(dataset_id=0, count=200))
        assert len(objects) == 200
        assert all(universe.contains_box(o.box) for o in objects)
        assert all(o.dataset_id == 0 for o in objects)
        assert len({o.oid for o in objects}) == 200

    def test_deterministic_per_seed_and_dataset(self, universe):
        gen_a = UniformBoxGenerator(universe, seed=1)
        gen_b = UniformBoxGenerator(universe, seed=1)
        a = list(gen_a.objects(0, 20))
        b = list(gen_b.objects(0, 20))
        assert a == b
        different = list(gen_a.objects(1, 20))
        assert different != a


class TestClusteredGenerator:
    def test_objects_concentrate_near_centers(self, universe):
        gen = ClusteredBoxGenerator(universe, seed=2, n_clusters=3, cluster_sigma_fraction=0.02)
        objects = list(gen.objects(0, 300))
        centers = gen.cluster_centers
        near = 0
        for obj in objects:
            distances = np.linalg.norm(centers - np.asarray(obj.center), axis=1)
            if distances.min() < 0.15 * 1000:
                near += 1
        assert near / len(objects) > 0.9

    def test_cluster_centers_shared_across_datasets(self, universe):
        gen = ClusteredBoxGenerator(universe, seed=2, n_clusters=4)
        assert np.allclose(gen.cluster_centers, gen.cluster_centers)

    def test_validation(self, universe):
        with pytest.raises(ValueError):
            ClusteredBoxGenerator(universe, seed=1, n_clusters=0)
        with pytest.raises(ValueError):
            ClusteredBoxGenerator(universe, seed=1, cluster_sigma_fraction=0)


class TestNeuroscienceGenerator:
    def test_generates_requested_count(self, universe):
        gen = NeuroscienceDatasetGenerator(universe, seed=3)
        objects = list(gen.objects(0, 500))
        assert len(objects) == 500
        assert all(universe.contains_box(o.box) for o in objects)

    def test_spatial_skew_around_microcircuits(self, universe):
        gen = NeuroscienceDatasetGenerator(
            universe, seed=3, n_microcircuits=4, microcircuit_sigma_fraction=0.03
        )
        objects = list(gen.objects(0, 400))
        centers = gen.microcircuit_centers
        near = 0
        for obj in objects:
            distances = np.linalg.norm(centers - np.asarray(obj.center), axis=1)
            if distances.min() < 0.25 * 1000:
                near += 1
        assert near / len(objects) > 0.85

    def test_validation(self, universe):
        with pytest.raises(ValueError):
            NeuroscienceDatasetGenerator(universe, seed=1, n_microcircuits=0)
        with pytest.raises(ValueError):
            NeuroscienceDatasetGenerator(universe, seed=1, segments_per_neuron=0)
        with pytest.raises(ValueError):
            NeuroscienceDatasetGenerator(universe, seed=1, branch_probability=2.0)

    def test_generate_datasets_creates_raw_files(self, universe, disk):
        gen = NeuroscienceDatasetGenerator(universe, seed=5)
        datasets = gen.generate_datasets(disk, n_datasets=2, objects_per_dataset=150)
        assert len(datasets) == 2
        assert all(d.n_objects == 150 for d in datasets)
        assert datasets[0].dataset_id != datasets[1].dataset_id


class TestBenchmarkSuite:
    def test_build_benchmark_suite(self):
        suite = build_benchmark_suite(n_datasets=3, objects_per_dataset=120, seed=1)
        assert len(suite.catalog) == 3
        assert suite.catalog.total_objects() == 360
        assert suite.universe.dimension == 3

    def test_suite_is_deterministic(self):
        a = build_benchmark_suite(n_datasets=2, objects_per_dataset=80, seed=9)
        b = build_benchmark_suite(n_datasets=2, objects_per_dataset=80, seed=9)
        objs_a = a.catalog.get(0).read_all()
        objs_b = b.catalog.get(0).read_all()
        assert objs_a == objs_b

    def test_fork_creates_independent_copy(self):
        suite = build_benchmark_suite(n_datasets=2, objects_per_dataset=60, seed=4)
        fork = suite.fork()
        assert fork.disk is not suite.disk
        assert fork.catalog.total_objects() == suite.catalog.total_objects()
        # Mutating the fork's disk does not affect the master.
        fork.disk.create_file("scratch")
        assert not suite.disk.file_exists("scratch")
        # The fork starts with fresh I/O accounting.
        assert fork.disk.stats.pages_read == 0

    def test_fork_preserves_data(self):
        suite = build_benchmark_suite(n_datasets=1, objects_per_dataset=70, seed=4)
        fork = suite.fork()
        assert {o.key() for o in fork.catalog.get(0).read_all()} == {
            o.key() for o in suite.catalog.get(0).read_all()
        }

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            build_benchmark_suite(n_datasets=0)
        with pytest.raises(ValueError):
            build_benchmark_suite(objects_per_dataset=0)
