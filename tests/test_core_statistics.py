"""Unit tests for the statistics collector."""

from __future__ import annotations

import pytest

from repro.core.statistics import StatisticsCollector


class TestRecording:
    def test_combination_counting(self):
        stats = StatisticsCollector()
        stats.record_query({1, 2, 3}, {1: [(0,)], 2: [(0,)], 3: [(1,)]})
        stats.record_query({1, 2, 3}, {1: [(2,)], 2: [(0,)], 3: [(1,)]})
        stats.record_query({1, 2}, {1: [(0,)], 2: [(0,)]})
        assert stats.combination_count([1, 2, 3]) == 2
        assert stats.combination_count([2, 1]) == 1  # order-insensitive
        assert stats.combination_count([9]) == 0
        assert stats.queries_seen == 3

    def test_partition_accumulation(self):
        stats = StatisticsCollector()
        stats.record_query({1, 2}, {1: [(0,), (1,)], 2: [(0,)]})
        stats.record_query({1, 2}, {1: [(2,)], 2: [(0,)]})
        combo = stats.combination_stats({1, 2})
        assert combo is not None
        assert combo.partitions[1] == {(0,), (1,), (2,)}
        assert combo.partitions[2] == {(0,)}
        assert combo.all_partition_keys() == {(0,), (1,), (2,)}

    def test_key_hits_counted_per_query(self):
        stats = StatisticsCollector()
        stats.record_query({1, 2}, {1: [(0,)], 2: [(0,)]})
        stats.record_query({1, 2}, {1: [(0,)], 2: [(1,)]})
        combo = stats.combination_stats({1, 2})
        assert combo.key_hits[(0,)] == 2  # counted once per query, not per dataset
        assert combo.key_hits[(1,)] == 1

    def test_query_volume_average(self):
        stats = StatisticsCollector()
        stats.record_query({1}, {1: []}, query_volume=2.0)
        stats.record_query({1}, {1: []}, query_volume=4.0)
        assert stats.combination_stats({1}).average_query_volume() == pytest.approx(3.0)

    def test_empty_combination_rejected(self):
        with pytest.raises(ValueError):
            StatisticsCollector().record_query(set(), {})

    def test_partition_hit_counts(self):
        stats = StatisticsCollector()
        stats.record_query({1}, {1: [(0,), (1,)]})
        stats.record_query({1, 2}, {1: [(0,)], 2: [(0,)]})
        assert stats.partition_hit_count(1, (0,)) == 2
        assert stats.partition_hit_count(1, (1,)) == 1
        assert stats.partition_hit_count(2, (5,)) == 0


class TestRankings:
    def test_hottest_combinations(self):
        stats = StatisticsCollector()
        for _ in range(5):
            stats.record_query({1, 2}, {1: [], 2: []})
        stats.record_query({3}, {3: []})
        hottest = stats.hottest_combinations(limit=1)
        assert hottest == [(frozenset({1, 2}), 5)]

    def test_hottest_partitions(self):
        stats = StatisticsCollector()
        for _ in range(3):
            stats.record_query({1}, {1: [(7,)]})
        stats.record_query({1}, {1: [(8,)]})
        ((key, count),) = stats.hottest_partitions(limit=1)
        assert key == (1, (7,))
        assert count == 3

    def test_logical_clock(self):
        stats = StatisticsCollector()
        assert stats.logical_clock == 0
        assert stats.tick() == 1
        assert stats.tick() == 2
        assert stats.logical_clock == 2
