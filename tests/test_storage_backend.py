"""Unit tests for the page storage backends."""

from __future__ import annotations

import pytest

from repro.storage.backend import FileSystemBackend, InMemoryBackend, StorageError


@pytest.fixture(params=["memory", "filesystem"])
def backend(request, tmp_path):
    if request.param == "memory":
        return InMemoryBackend(page_size=256)
    return FileSystemBackend(tmp_path, page_size=256)


class TestFileLifecycle:
    def test_create_and_exists(self, backend):
        assert not backend.exists("a")
        backend.create("a")
        assert backend.exists("a")
        assert backend.num_pages("a") == 0

    def test_create_twice_fails(self, backend):
        backend.create("a")
        with pytest.raises(StorageError):
            backend.create("a")

    def test_delete(self, backend):
        backend.create("a")
        backend.delete("a")
        assert not backend.exists("a")

    def test_delete_missing_fails(self, backend):
        with pytest.raises(StorageError):
            backend.delete("missing")

    def test_list_files_sorted(self, backend):
        for name in ("b", "a", "c"):
            backend.create(name)
        listed = backend.list_files()
        assert listed == sorted(listed)
        assert len(listed) == 3


class TestPageAccess:
    def test_append_and_read(self, backend):
        backend.create("f")
        page_no = backend.append("f", b"hello")
        assert page_no == 0
        data = backend.read("f", 0)
        assert data.startswith(b"hello")
        assert len(data) == 256

    def test_append_returns_increasing_page_numbers(self, backend):
        backend.create("f")
        numbers = [backend.append("f", bytes([i])) for i in range(5)]
        assert numbers == [0, 1, 2, 3, 4]
        assert backend.num_pages("f") == 5

    def test_write_overwrites_in_place(self, backend):
        backend.create("f")
        backend.append("f", b"old")
        backend.write("f", 0, b"new")
        assert backend.read("f", 0).startswith(b"new")
        assert backend.num_pages("f") == 1

    def test_read_out_of_range(self, backend):
        backend.create("f")
        with pytest.raises(StorageError):
            backend.read("f", 0)

    def test_write_out_of_range(self, backend):
        backend.create("f")
        with pytest.raises(StorageError):
            backend.write("f", 3, b"x")

    def test_oversized_page_rejected(self, backend):
        backend.create("f")
        with pytest.raises(StorageError):
            backend.append("f", bytes(1000))

    def test_read_missing_file(self, backend):
        with pytest.raises(StorageError):
            backend.read("missing", 0)


class TestClone:
    def test_clone_copies_contents(self, backend):
        backend.create("f")
        backend.append("f", b"abc")
        copy = backend.clone()
        assert copy.exists("f")
        assert copy.read("f", 0).startswith(b"abc")

    def test_clone_is_independent(self, backend):
        backend.create("f")
        backend.append("f", b"abc")
        copy = backend.clone()
        copy.append("f", b"extra")
        assert backend.num_pages("f") == 1
        assert copy.num_pages("f") == 2


def test_filesystem_backend_sanitises_names(tmp_path):
    backend = FileSystemBackend(tmp_path, page_size=128)
    backend.create("raw/with:odd chars")
    assert backend.exists("raw/with:odd chars")
    backend.append("raw/with:odd chars", b"x")
    assert backend.num_pages("raw/with:odd chars") == 1


class TestFileSystemErrorPaths:
    """The error paths only a real filesystem can produce."""

    @pytest.fixture
    def fs(self, tmp_path):
        return FileSystemBackend(tmp_path, page_size=128)

    def test_missing_file_raises_everywhere(self, fs):
        for operation in (
            lambda: fs.num_pages("missing"),
            lambda: fs.read("missing", 0),
            lambda: fs.write("missing", 0, b"x"),
            lambda: fs.append("missing", b"x"),
            lambda: fs.delete("missing"),
        ):
            with pytest.raises(StorageError, match="no such file"):
                operation()

    def test_negative_page_offset_rejected(self, fs):
        fs.create("f")
        fs.append("f", b"data")
        with pytest.raises(StorageError, match="out of range"):
            fs.read("f", -1)
        with pytest.raises(StorageError, match="out of range"):
            fs.write("f", -1, b"x")

    def test_read_past_end_of_file(self, fs):
        fs.create("f")
        fs.append("f", b"data")
        with pytest.raises(StorageError, match="out of range"):
            fs.read("f", 1)
        with pytest.raises(StorageError, match="out of range"):
            fs.read("f", 10_000)

    def test_short_page_surfaces_as_storage_error(self, fs, tmp_path):
        """A truncated OS file must raise, not silently return short bytes."""
        import os

        fs.create("f")
        fs.append("f", b"page-0")
        fs.append("f", b"page-1")
        os.truncate(tmp_path / "f.pages", 128 + 40)  # page 1 now partial
        assert fs.read("f", 0).startswith(b"page-0")  # intact page unaffected
        with pytest.raises(StorageError, match="short page"):
            fs.read("f", 1)

    def test_partial_trailing_page_not_counted(self, fs, tmp_path):
        """num_pages only counts complete pages of a foreign/truncated file."""
        import os

        fs.create("f")
        fs.append("f", b"page-0")
        os.truncate(tmp_path / "f.pages", 128 + 13)
        assert fs.num_pages("f") == 1

    def test_create_collides_with_sanitised_sibling(self, fs):
        """Two names sanitising to the same OS file cannot coexist."""
        fs.create("a/b")
        with pytest.raises(StorageError, match="already exists"):
            fs.create("a:b")


class TestErrorTaxonomy:
    """Both backends raise the same typed errors for the same conditions.

    The taxonomy (see :mod:`repro.storage.errors`) is what the retry and
    recovery layers key on: transient errors are worth retrying, missing
    files/pages and oversized data are not.
    """

    def test_missing_file_is_typed(self, backend):
        from repro.storage.errors import MissingFileError

        for operation in (
            lambda: backend.num_pages("missing"),
            lambda: backend.read("missing", 0),
            lambda: backend.write("missing", 0, b"x"),
            lambda: backend.append("missing", b"x"),
            lambda: backend.delete("missing"),
        ):
            with pytest.raises(MissingFileError):
                operation()

    def test_missing_page_is_typed(self, backend):
        from repro.storage.errors import MissingPageError

        backend.create("f")
        backend.append("f", b"page-0")
        for page_no in (-1, 1, 10_000):
            with pytest.raises(MissingPageError):
                backend.read("f", page_no)
            with pytest.raises(MissingPageError):
                backend.write("f", page_no, b"x")

    def test_oversized_page_is_a_caller_bug_not_io(self, backend):
        from repro.storage.errors import (
            CorruptPageError,
            MissingFileError,
            TransientIOError,
        )

        backend.create("f")
        with pytest.raises(StorageError) as info:
            backend.append("f", b"x" * 257)
        assert not isinstance(
            info.value, (TransientIOError, CorruptPageError, MissingFileError)
        )

    def test_every_taxonomy_member_is_a_storage_error(self):
        from repro.storage.errors import (
            CorruptPageError,
            MissingFileError,
            MissingPageError,
            TransientIOError,
        )

        for kind in (
            CorruptPageError,
            MissingFileError,
            MissingPageError,
            TransientIOError,
        ):
            assert issubclass(kind, StorageError)

    def test_transient_classification_drives_retry(self):
        from repro.storage.errors import (
            CorruptPageError,
            MissingFileError,
            MissingPageError,
            TransientIOError,
            is_transient,
        )

        assert is_transient(TransientIOError("x"))
        assert is_transient(CorruptPageError("x"))
        assert not is_transient(MissingFileError("x"))
        assert not is_transient(MissingPageError("x"))
        assert not is_transient(StorageError("x"))
