"""Unit tests for the page storage backends."""

from __future__ import annotations

import pytest

from repro.storage.backend import FileSystemBackend, InMemoryBackend, StorageError


@pytest.fixture(params=["memory", "filesystem"])
def backend(request, tmp_path):
    if request.param == "memory":
        return InMemoryBackend(page_size=256)
    return FileSystemBackend(tmp_path, page_size=256)


class TestFileLifecycle:
    def test_create_and_exists(self, backend):
        assert not backend.exists("a")
        backend.create("a")
        assert backend.exists("a")
        assert backend.num_pages("a") == 0

    def test_create_twice_fails(self, backend):
        backend.create("a")
        with pytest.raises(StorageError):
            backend.create("a")

    def test_delete(self, backend):
        backend.create("a")
        backend.delete("a")
        assert not backend.exists("a")

    def test_delete_missing_fails(self, backend):
        with pytest.raises(StorageError):
            backend.delete("missing")

    def test_list_files_sorted(self, backend):
        for name in ("b", "a", "c"):
            backend.create(name)
        listed = backend.list_files()
        assert listed == sorted(listed)
        assert len(listed) == 3


class TestPageAccess:
    def test_append_and_read(self, backend):
        backend.create("f")
        page_no = backend.append("f", b"hello")
        assert page_no == 0
        data = backend.read("f", 0)
        assert data.startswith(b"hello")
        assert len(data) == 256

    def test_append_returns_increasing_page_numbers(self, backend):
        backend.create("f")
        numbers = [backend.append("f", bytes([i])) for i in range(5)]
        assert numbers == [0, 1, 2, 3, 4]
        assert backend.num_pages("f") == 5

    def test_write_overwrites_in_place(self, backend):
        backend.create("f")
        backend.append("f", b"old")
        backend.write("f", 0, b"new")
        assert backend.read("f", 0).startswith(b"new")
        assert backend.num_pages("f") == 1

    def test_read_out_of_range(self, backend):
        backend.create("f")
        with pytest.raises(StorageError):
            backend.read("f", 0)

    def test_write_out_of_range(self, backend):
        backend.create("f")
        with pytest.raises(StorageError):
            backend.write("f", 3, b"x")

    def test_oversized_page_rejected(self, backend):
        backend.create("f")
        with pytest.raises(StorageError):
            backend.append("f", bytes(1000))

    def test_read_missing_file(self, backend):
        with pytest.raises(StorageError):
            backend.read("missing", 0)


class TestClone:
    def test_clone_copies_contents(self, backend):
        backend.create("f")
        backend.append("f", b"abc")
        copy = backend.clone()
        assert copy.exists("f")
        assert copy.read("f", 0).startswith(b"abc")

    def test_clone_is_independent(self, backend):
        backend.create("f")
        backend.append("f", b"abc")
        copy = backend.clone()
        copy.append("f", b"extra")
        assert backend.num_pages("f") == 1
        assert copy.num_pages("f") == 2


def test_filesystem_backend_sanitises_names(tmp_path):
    backend = FileSystemBackend(tmp_path, page_size=128)
    backend.create("raw/with:odd chars")
    assert backend.exists("raw/with:odd chars")
    backend.append("raw/with:odd chars", b"x")
    assert backend.num_pages("raw/with:odd chars") == 1
