"""Differential oracle: batched execution must be indistinguishable from
sequential execution.

For randomized workloads, two engines over byte-identical forks of the same
suite execute the same query sequence — one through ``query()`` per query,
one through ``query_batch()`` in chunks — and every observable must agree:

* byte-identical hits per query (the packed codec bytes of the result
  objects, order-insensitively);
* identical ``QueryReport``\\ s, field by field (``objects_examined`` is the
  one documented exception: the batch may examine coarser partitions);
* identical post-run adaptive state: partition trees (leaf keys, hit
  counts, stored runs), merge directory contents, merger counters,
  statistics — and, strongest of all, byte-identical on-disk files.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import generate_workload
from repro.core.config import OdysseyConfig
from repro.core.odyssey import SpaceOdyssey
from repro.data.spatial_object import spatial_object_codec
from repro.data.suite import BenchmarkSuite

#: QueryReport fields that must agree exactly between the two engines.
REPORT_FIELDS = (
    "query_index",
    "requested",
    "route",
    "initialized_datasets",
    "partitions_read",
    "partitions_from_merge",
    "results",
    "refinements",
    "merged",
    "merge_new_partitions",
    "evicted_merge_files",
)


def packed_hits(odyssey: SpaceOdyssey, hits) -> frozenset[bytes]:
    """The order-insensitive byte identity of one query answer."""
    codec = spatial_object_codec(odyssey.catalog.dimension)
    packed = sorted(codec.pack(obj) for obj in hits)
    assert len(set(packed)) == len(packed), "duplicate objects in a query answer"
    return frozenset(packed)


def adaptive_state(odyssey: SpaceOdyssey):
    """A comparable snapshot of everything the adaptive machinery mutated."""
    trees = {}
    for dataset_id, tree in sorted(odyssey.trees.items()):
        leaves = sorted(
            (
                leaf.key,
                leaf.hit_count,
                leaf.n_objects,
                leaf.run.extents if leaf.run is not None else (),
            )
            for leaf in tree.leaves()
        )
        trees[dataset_id] = (tree.n_partitions, tree.depth, tuple(leaves))
    merge_files = {}
    for info in odyssey.merge_directory.all_files():
        entries = {
            key: {
                dataset_id: (run.extents, run.n_records)
                for dataset_id, run in per_dataset.items()
            }
            for key, per_dataset in info.entries.items()
        }
        merge_files[tuple(sorted(info.combination))] = (
            info.file_name,
            entries,
            info.created_at,
            info.last_used,
        )
    combinations = {
        tuple(sorted(combo)): (
            stats.count,
            dict(stats.key_hits),
            {d: frozenset(keys) for d, keys in stats.partitions.items()},
            stats.total_query_volume,
        )
        for combo, stats in odyssey.statistics.combinations().items()
    }
    return (
        trees,
        merge_files,
        combinations,
        odyssey.merger.merges_performed,
        odyssey.merger.partitions_merged,
        odyssey.merger.evictions,
        odyssey.summary(),
    )


def disk_files(odyssey: SpaceOdyssey) -> dict[str, list[bytes]]:
    """Every on-disk file's raw pages (the ultimate byte-identity check)."""
    disk = odyssey.disk
    return {
        name: [disk.backend.read(name, page) for page in range(disk.num_pages(name))]
        for name in sorted(disk.list_files())
    }


def run_differential(
    suite: BenchmarkSuite,
    workload,
    config: OdysseyConfig,
    batch_size: int,
) -> None:
    sequential = SpaceOdyssey(suite.fork().catalog, config)
    seq_hits = []
    seq_reports = []
    for query in workload:
        seq_hits.append(sequential.query(query.box, query.dataset_ids))
        seq_reports.append(sequential.last_report)

    batched = SpaceOdyssey(suite.fork().catalog, config)
    batch_hits = []
    batch_reports = []
    queries = list(workload)
    for start in range(0, len(queries), batch_size):
        result = batched.query_batch(queries[start : start + batch_size])
        batch_hits.extend(result.results)
        batch_reports.extend(result.reports)

    for index, (expected, actual) in enumerate(zip(seq_hits, batch_hits)):
        assert len(actual) == len(expected), f"hit count differs for query {index}"
        assert packed_hits(batched, actual) == packed_hits(
            sequential, expected
        ), f"hit bytes differ for query {index}"
    for index, (expected, actual) in enumerate(zip(seq_reports, batch_reports)):
        for field in REPORT_FIELDS:
            assert getattr(actual, field) == getattr(
                expected, field
            ), f"report field {field!r} differs for query {index}"
    assert adaptive_state(batched) == adaptive_state(sequential)
    assert disk_files(batched) == disk_files(sequential)


@pytest.fixture(scope="module")
def differential_suite(master_suite: BenchmarkSuite) -> BenchmarkSuite:
    return master_suite


@pytest.mark.parametrize("batch_size", [1, 3, 7, 50])
@pytest.mark.parametrize("seed", [101, 202])
def test_uniform_workload_matches_sequential(differential_suite, batch_size, seed):
    workload = generate_workload(
        differential_suite.universe,
        differential_suite.catalog.dataset_ids(),
        30,
        seed=seed,
        datasets_per_query=3,
        volume_fraction=1e-3,
        ids_distribution="zipf",
    )
    config = OdysseyConfig(
        merge_threshold=1, merge_partition_min_hits=1, merge_only_converged=False
    )
    run_differential(differential_suite, workload, config, batch_size)


@pytest.mark.parametrize("batch_size", [4, 16])
def test_clustered_workload_with_heavy_merging(differential_suite, batch_size):
    workload = generate_workload(
        differential_suite.universe,
        differential_suite.catalog.dataset_ids(),
        40,
        seed=77,
        datasets_per_query=3,
        volume_fraction=5e-3,
        ranges="clustered",
        ids_distribution="heavy_hitter",
    )
    config = OdysseyConfig(
        merge_threshold=1,
        min_merge_combination=2,
        merge_partition_min_hits=1,
        merge_only_converged=False,
    )
    run_differential(differential_suite, workload, config, batch_size)


@pytest.mark.parametrize("batch_size", [8])
def test_merge_evictions_replay_identically(differential_suite, batch_size):
    workload = generate_workload(
        differential_suite.universe,
        differential_suite.catalog.dataset_ids(),
        36,
        seed=55,
        datasets_per_query=3,
        volume_fraction=5e-3,
        ranges="clustered",
        ids_distribution="uniform",
    )
    config = OdysseyConfig(
        merge_threshold=1,
        min_merge_combination=2,
        merge_partition_min_hits=1,
        merge_only_converged=False,
        merge_space_budget_pages=6,
    )
    run_differential(differential_suite, workload, config, batch_size)


def test_mixed_combination_sizes_and_duplicates(differential_suite):
    """Hand-built batch: mixed combinations, duplicate queries, empty windows."""
    from repro.geometry.box import Box

    universe = differential_suite.universe
    center = universe.center
    big = Box.cube(center, universe.side(0) * 0.2).clamp(universe)
    point = Box(center, center)  # degenerate zero-extent window
    off = Box.cube(universe.lo, universe.side(0) * 0.1).clamp(universe)
    queries = [
        (big, (0, 1, 2)),
        (big, (0, 1, 2)),  # duplicate
        (point, (3,)),
        (off, (0, 3)),
        (big, (0, 1, 2)),  # duplicate again, post-merge-trigger
        (point, (3,)),
    ]
    config = OdysseyConfig(
        merge_threshold=1, merge_partition_min_hits=1, merge_only_converged=False
    )
    sequential = SpaceOdyssey(differential_suite.fork().catalog, config)
    expected = [sequential.query(box, ids) for box, ids in queries]
    batched = SpaceOdyssey(differential_suite.fork().catalog, config)
    result = batched.query_batch(queries)
    assert result.hit_counts() == [len(hits) for hits in expected]
    for actual, wanted in zip(result.results, expected):
        assert packed_hits(batched, actual) == packed_hits(sequential, wanted)
    assert adaptive_state(batched) == adaptive_state(sequential)
    assert disk_files(batched) == disk_files(sequential)
