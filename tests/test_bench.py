"""Unit tests for the benchmark harness (scales, approaches, runner, reporting)."""

from __future__ import annotations

import json

import pytest

from repro.baselines.interface import BruteForceScan
from repro.bench.approaches import (
    APPROACHES,
    FIGURE4_APPROACHES,
    FIGURE5_APPROACHES,
    make_approach,
    odyssey_config_for,
)
from repro.bench.experiments import build_suite, build_workload
from repro.bench.runner import run_approach
from repro.bench.scales import SCALES, ExperimentScale, get_scale
from repro.bench import reporting


@pytest.fixture(scope="module")
def micro_scale() -> ExperimentScale:
    """A very small scale so harness tests stay fast."""
    return SCALES["tiny"].scaled(
        name="micro",
        n_datasets=3,
        objects_per_dataset=400,
        n_queries=10,
        grid_cells_per_dim=4,
    )


@pytest.fixture(scope="module")
def micro_suite(micro_scale):
    return build_suite(micro_scale)


@pytest.fixture(scope="module")
def micro_workload(micro_suite, micro_scale):
    return build_workload(
        micro_suite,
        micro_scale,
        ranges="clustered",
        ids_distribution="zipf",
        datasets_per_query=2,
    )


class TestScales:
    def test_presets_exist(self):
        assert {"tiny", "small", "medium", "paper"} <= set(SCALES)

    def test_get_scale_by_name_and_object(self):
        assert get_scale("tiny") is SCALES["tiny"]
        scale = SCALES["tiny"].scaled(n_queries=5)
        assert get_scale(scale) is scale
        with pytest.raises(ValueError):
            get_scale("huge")

    def test_scaled_overrides(self):
        scale = SCALES["small"].scaled(n_queries=42)
        assert scale.n_queries == 42
        assert scale.n_datasets == SCALES["small"].n_datasets

    def test_disk_model_uses_scale_seek(self):
        scale = SCALES["small"]
        assert scale.disk_model().seek_time_s == scale.seek_time_s

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentScale(name="bad", n_queries=0)
        with pytest.raises(ValueError):
            ExperimentScale(name="bad", query_volume_fraction=2.0)


class TestApproaches:
    def test_registry_contains_paper_approaches(self):
        assert set(FIGURE4_APPROACHES) <= set(APPROACHES)
        assert set(FIGURE5_APPROACHES) <= set(APPROACHES)

    def test_unknown_approach_rejected(self, micro_suite, micro_scale):
        with pytest.raises(ValueError):
            make_approach("BTree", micro_suite, micro_scale)

    def test_odyssey_config_matches_paper(self, micro_scale):
        config = odyssey_config_for(micro_scale)
        assert config.refinement_threshold == 4.0
        assert config.partitions_per_level == 64
        assert config.merge_threshold == 2
        assert not odyssey_config_for(micro_scale, enable_merging=False).enable_merging

    @pytest.mark.parametrize("name", sorted(APPROACHES))
    def test_every_approach_answers_correctly(self, name, micro_suite, micro_scale, micro_workload):
        from repro.baselines.interface import result_keys

        suite = micro_suite.fork()
        approach = make_approach(name, suite, micro_scale)
        approach.build()
        oracle = BruteForceScan(suite.catalog)
        for query in list(micro_workload)[:5]:
            assert result_keys(approach.query(query.box, query.dataset_ids)) == result_keys(
                oracle.query(query.box, query.dataset_ids)
            )


class TestRunner:
    def test_run_static_approach(self, micro_suite, micro_scale, micro_workload):
        suite = micro_suite.fork()
        approach = make_approach("Grid-1fE", suite, micro_scale)
        result = run_approach(approach, micro_workload, suite.disk)
        assert result.approach == "Grid-1fE"
        assert result.indexing_seconds > 0
        assert result.n_queries == len(micro_workload)
        assert result.total_seconds == pytest.approx(
            result.indexing_seconds + result.querying_seconds
        )
        assert len(result.per_query_seconds()) == len(micro_workload)

    def test_run_odyssey_has_no_indexing_time(self, micro_suite, micro_scale, micro_workload):
        suite = micro_suite.fork()
        approach = make_approach("Odyssey", suite, micro_scale)
        result = run_approach(approach, micro_workload, suite.disk)
        assert result.indexing_seconds == 0.0
        assert result.querying_seconds > 0

    def test_validation_against_oracle(self, micro_suite, micro_scale, micro_workload):
        suite = micro_suite.fork()
        approach = make_approach("RTree-Ain1", suite, micro_scale)
        oracle = BruteForceScan(suite.catalog)
        result = run_approach(
            approach, micro_workload, suite.disk, validate_against=oracle
        )
        assert result.validation_failures == 0

    def test_queries_answered_within_budget(self, micro_suite, micro_scale, micro_workload):
        suite = micro_suite.fork()
        approach = make_approach("Odyssey", suite, micro_scale)
        result = run_approach(approach, micro_workload, suite.disk)
        assert result.queries_answered_within(0.0) == 0
        assert result.queries_answered_within(float("inf")) == result.n_queries
        total = result.indexing_seconds + sum(result.per_query_seconds()[:3])
        assert result.queries_answered_within(total) >= 3


class TestReporting:
    def test_to_jsonable_roundtrips_through_json(self, micro_suite, micro_scale, micro_workload):
        suite = micro_suite.fork()
        approach = make_approach("Grid-1fE", suite, micro_scale)
        result = run_approach(approach, micro_workload, suite.disk)
        payload = json.dumps(reporting.to_jsonable(result))
        decoded = json.loads(payload)
        assert decoded["approach"] == "Grid-1fE"

    def test_save_json(self, tmp_path, micro_suite, micro_scale, micro_workload):
        suite = micro_suite.fork()
        approach = make_approach("Grid-1fE", suite, micro_scale)
        result = run_approach(approach, micro_workload, suite.disk)
        path = reporting.save_json(result, tmp_path / "out" / "result.json")
        assert path.exists()
        assert json.loads(path.read_text())["approach"] == "Grid-1fE"


class TestPerfFormatting:
    @staticmethod
    def _snapshot(scalar_qps):
        phase = lambda qps: {"wall_seconds": 0.0, "queries_per_second": qps}
        return {
            "scale": "tiny",
            "n_queries": 4,
            "batch_size": 2,
            "phases": {
                "build": phase(None),
                "first_touch": phase(10.0),
                "steady_scalar": phase(scalar_qps),
                "steady_columnar": phase(12.0),
                "steady_batch": phase(15.0),
            },
            "speedups": {
                "sequential_columnar_vs_scalar": None,
                "batch_vs_scalar": None,
            },
            "pages": {"raw": 1, "partitions": 0, "merge": 0},
        }

    def test_zero_qps_prints_as_zero_not_missing(self):
        """Regression: truthiness treated a legitimate 0.0 q/s as absent."""
        from repro.bench.perf import format_snapshot_summary

        text = format_snapshot_summary(self._snapshot(0.0))
        scalar_line = next(
            line for line in text.splitlines() if line.startswith("steady_scalar")
        )
        assert scalar_line.rstrip().endswith("0.0")
        assert "-" not in scalar_line

    def test_missing_qps_still_prints_placeholder(self):
        from repro.bench.perf import format_snapshot_summary

        text = format_snapshot_summary(self._snapshot(None))
        scalar_line = next(
            line for line in text.splitlines() if line.startswith("steady_scalar")
        )
        assert scalar_line.rstrip().endswith("-")

    def test_format_serve_phase_digest(self):
        from repro.bench.perf import format_serve_phase

        phase = {
            "offered_qps": 100.0,
            "sustained_qps": 99.5,
            "completed": 200,
            "queries": 200,
            "n_clients": 4,
            "latency_ms": {"p50_ms": 3.0, "p99_ms": 9.0, "max_ms": 12.0},
            "max_batch": 16,
            "max_delay_ms": 5.0,
            "batches": 20,
            "mean_batch_size": 10.0,
            "size_flushes": 12,
            "deadline_flushes": 7,
            "drain_flushes": 1,
        }
        text = format_serve_phase(phase)
        assert "sustained 99.5 q/s" in text
        assert "p99 9.00 ms" in text
        assert "12 size / 7 deadline / 1 drain" in text

    def test_concurrent_batches_phase_formats(self):
        from repro.bench.perf import format_snapshot_summary

        snapshot = self._snapshot(10.0)
        snapshot["phases"]["concurrent_batches"] = {
            "batch_size": 2,
            "threads": 2,
            "single_seconds": 0.10,
            "concurrent_seconds": 0.13,
            "overlap_ratio": 1.3,
            "queries_per_second": 61.5,
        }
        text = format_snapshot_summary(snapshot)
        assert "epoch overlap" in text
        assert "1.30x" in text
        assert "2.0 = serialized" in text


class TestConcurrentBatchesMeasurement:
    def test_measure_concurrent_batches_protocol(self, micro_suite, micro_workload):
        """The shared timing protocol runs both passes and returns sane
        walls (the acceptance *bar* lives in ``benchmarks/test_micro.py``;
        here only the measurement machinery is exercised)."""
        from repro.core.odyssey import SpaceOdyssey
        from repro.bench.perf import measure_concurrent_batches, sequential_pass

        workload = list(micro_workload)[:6]
        engine = SpaceOdyssey(micro_suite.fork().catalog)
        sequential_pass(engine, workload)  # converge
        single, concurrent = measure_concurrent_batches(
            engine, workload, batch_size=3, repeats=1, threads=2
        )
        assert single > 0
        assert concurrent > 0
        # Afterwards the engine has quiesced: no pinned epochs survive the
        # measurement and the chain has collapsed to the current epoch.
        assert engine.epochs.pinned_total() == 0
        assert engine.epochs.chain_length() == 1
