"""Tests for the experiment definitions and the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.bench import experiments, reporting
from repro.bench.scales import SCALES
from repro.cli import main


@pytest.fixture(scope="module")
def micro_scale():
    return SCALES["tiny"].scaled(
        name="micro",
        n_datasets=4,
        objects_per_dataset=500,
        n_queries=12,
        grid_cells_per_dim=4,
    )


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self, micro_scale):
        return experiments.figure4(
            ids_distribution="zipf",
            ranges="clustered",
            scale=micro_scale,
            datasets_queried=(1, 3),
            approaches=("Grid-1fE", "Odyssey"),
        )

    def test_structure(self, result):
        assert [p.datasets_queried for p in result.points] == [1, 3]
        for point in result.points:
            assert set(point.cells) == {"Grid-1fE", "Odyssey"}
            assert point.combinations_queried >= 1
            assert point.odyssey_queries_within_grid_build is not None

    def test_totals_are_consistent(self, result):
        for point in result.points:
            for cell in point.cells.values():
                assert cell.total_seconds == pytest.approx(
                    cell.indexing_seconds + cell.querying_seconds
                )
            assert point.total("Odyssey") > 0

    def test_point_lookup(self, result):
        assert result.point(1).datasets_queried == 1
        with pytest.raises(KeyError):
            result.point(9)

    def test_table_formatting(self, result):
        table = reporting.format_figure4_table(result)
        assert "Grid-1fE" in table
        assert "Odyssey" in table
        assert "[indexing]" in table and "[total]" in table

    def test_invalid_inputs(self, micro_scale):
        with pytest.raises(ValueError):
            experiments.figure4(ranges="spiral", scale=micro_scale, datasets_queried=(1,))
        with pytest.raises(ValueError):
            experiments.figure4(ids_distribution="nope", scale=micro_scale, datasets_queried=(1,))


class TestFigure5:
    def test_figure5a_series(self, micro_scale):
        result = experiments.figure5a(scale=micro_scale, approaches=("Grid-1fE", "Odyssey"))
        assert set(result.series) == {"Grid-1fE", "Odyssey"}
        series = result.get("Odyssey")
        assert len(series.per_query_seconds) == micro_scale.n_queries
        assert series.indexing_seconds == 0.0
        assert series.total_seconds > 0
        summary = reporting.format_figure5_summary(result)
        assert "Odyssey" in summary

    def test_figure5b_uses_uniform_distributions(self, micro_scale):
        result = experiments.figure5b(scale=micro_scale, approaches=("Odyssey",))
        assert result.ranges == "uniform"
        assert result.ids_distribution == "uniform"

    def test_figure5c_structure(self, micro_scale):
        result = experiments.figure5c(scale=micro_scale, datasets_per_query=3)
        assert result.popular_query_count == len(result.with_merging)
        assert len(result.with_merging) == len(result.without_merging)
        assert len(result.popular_combination) == 3
        summary = reporting.format_figure5c_summary(result)
        assert "merging" in summary


class TestCLI:
    def test_fig5a_command(self, capsys, micro_scale, monkeypatch):
        monkeypatch.setitem(SCALES, "micro", micro_scale)
        exit_code = main(["fig5a", "--scale", "micro"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out

    def test_fig4_command_with_output(self, capsys, tmp_path, micro_scale, monkeypatch):
        monkeypatch.setitem(SCALES, "micro", micro_scale)
        output = tmp_path / "fig4.json"
        exit_code = main(
            [
                "fig4",
                "--scale",
                "micro",
                "--ids-dist",
                "heavy_hitter",
                "--datasets-queried",
                "1,3",
                "--output",
                str(output),
            ]
        )
        assert exit_code == 0
        assert output.exists()
        payload = json.loads(output.read_text())
        assert payload["ids_distribution"] == "heavy_hitter"

    def test_bench_command_writes_snapshot(self, capsys, tmp_path, micro_scale, monkeypatch):
        monkeypatch.setitem(SCALES, "micro", micro_scale)
        output = tmp_path / "BENCH_micro.json"
        exit_code = main(
            [
                "bench",
                "--scale",
                "micro",
                "--queries",
                "8",
                "--repeats",
                "1",
                "--json",
                str(output),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "perf snapshot" in out
        payload = json.loads(output.read_text())
        assert payload["kind"] == "repro-perf-snapshot"
        assert payload["scale"] == "micro"
        for phase in ("build", "first_touch", "steady_scalar", "steady_columnar", "steady_batch"):
            assert payload["phases"][phase]["wall_seconds"] >= 0
        assert payload["speedups"]["sequential_columnar_vs_scalar"] > 0
        assert payload["pages"]["raw"] > 0
        serve = payload["phases"]["steady_serve"]
        assert serve["completed"] == serve["queries"] > 0
        assert serve["failed"] == 0
        assert serve["sustained_qps"] > 0
        assert serve["latency_ms"]["p99_ms"] >= serve["latency_ms"]["p50_ms"] >= 0
        assert "serving (open loop)" in out

    def test_bench_command_no_serve_skips_phase(self, capsys, tmp_path, micro_scale, monkeypatch):
        monkeypatch.setitem(SCALES, "micro", micro_scale)
        output = tmp_path / "BENCH_micro.json"
        exit_code = main(
            ["bench", "--scale", "micro", "--queries", "8", "--repeats", "1",
             "--no-serve", "--json", str(output)]
        )
        assert exit_code == 0
        payload = json.loads(output.read_text())
        assert "steady_serve" not in payload["phases"]
        assert "serving (open loop)" not in capsys.readouterr().out

    def test_serve_bench_command_writes_snapshot(self, capsys, tmp_path, micro_scale, monkeypatch):
        monkeypatch.setitem(SCALES, "micro", micro_scale)
        output = tmp_path / "SERVE_micro.json"
        exit_code = main(
            [
                "serve-bench",
                "--scale",
                "micro",
                "--queries",
                "8",
                "--repeats",
                "2",
                "--rate",
                "400",
                "--clients",
                "2",
                "--json",
                str(output),
            ]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "serving (open loop)" in out
        payload = json.loads(output.read_text())
        assert payload["kind"] == "repro-serve-snapshot"
        assert payload["scale"] == "micro"
        serve = payload["serve"]
        assert serve["completed"] == serve["queries"] == 16
        assert serve["failed"] == 0
        assert serve["n_clients"] == 2
        assert serve["offered_qps"] == 400
        assert serve["batches"] >= 1
        assert (
            serve["size_flushes"] + serve["deadline_flushes"] + serve["drain_flushes"]
            == serve["batches"]
        )

    def test_unknown_command_fails(self):
        with pytest.raises(SystemExit):
            main(["figure9000"])

    def test_unknown_scale_fails(self):
        with pytest.raises(SystemExit):
            main(["fig5a", "--scale", "galactic"])
