"""Unit tests for merge files, the merge directory and routing."""

from __future__ import annotations

import pytest

from repro.core.merge import (
    MergeDirectory,
    MergeFileInfo,
    RouteKind,
    choose_route,
    merge_file_name,
)
from repro.storage.pagedfile import PageExtent, StoredRun


def run(pages: int = 1, records: int = 10, start: int = 0) -> StoredRun:
    return StoredRun(extents=(PageExtent(start, pages),), n_records=records)


def info(ids, entries=None, last_used=0) -> MergeFileInfo:
    combo = frozenset(ids)
    result = MergeFileInfo(combination=combo, file_name=merge_file_name(combo), last_used=last_used)
    for key, dataset_id, stored in entries or []:
        result.add_segment(key, dataset_id, stored)
    return result


class TestMergeFileInfo:
    def test_segments_and_pages(self):
        merged = info(
            [1, 2, 3],
            entries=[((0,), 1, run(2)), ((0,), 2, run(3)), ((1,), 1, run(1))],
        )
        assert merged.n_partitions == 2
        assert merged.total_pages == 6
        assert merged.has_segment((0,), 1)
        assert not merged.has_segment((0,), 3)
        assert merged.segment((0,), 2).n_pages == 3

    def test_merge_file_name_is_stable(self):
        assert merge_file_name(frozenset({3, 1, 2})) == merge_file_name(frozenset({2, 3, 1}))


class TestMergeDirectory:
    def test_register_lookup_remove(self):
        directory = MergeDirectory()
        merged = info([1, 2, 3])
        directory.register(merged)
        assert directory.get([3, 2, 1]) is merged
        assert [1, 2, 3] in directory
        assert len(directory) == 1
        directory.remove(frozenset({1, 2, 3}))
        assert directory.get([1, 2, 3]) is None
        with pytest.raises(KeyError):
            directory.remove(frozenset({1, 2, 3}))

    def test_total_pages(self):
        directory = MergeDirectory()
        directory.register(info([1, 2, 3], entries=[((0,), 1, run(2))]))
        directory.register(info([4, 5, 6], entries=[((0,), 4, run(5))]))
        assert directory.total_pages() == 7

    def test_lru_order(self):
        directory = MergeDirectory()
        old = info([1, 2, 3], last_used=1)
        new = info([4, 5, 6], last_used=9)
        directory.register(new)
        directory.register(old)
        assert directory.lru_order() == [old, new]

    def test_find_superset_prefers_smallest(self):
        directory = MergeDirectory()
        directory.register(info([1, 2, 3, 4, 5]))
        directory.register(info([1, 2, 3, 4]))
        superset = directory.find_superset(frozenset({1, 2, 3}))
        assert superset.combination == frozenset({1, 2, 3, 4})

    def test_find_best_subset_prefers_largest(self):
        directory = MergeDirectory()
        directory.register(info([1, 2, 3]))
        directory.register(info([1, 2, 3, 4]))
        subset = directory.find_best_subset(frozenset({1, 2, 3, 4, 5}))
        assert subset.combination == frozenset({1, 2, 3, 4})


class TestRouting:
    def test_exact_route(self):
        directory = MergeDirectory()
        directory.register(info([1, 2, 3]))
        decision = choose_route(directory, frozenset({1, 2, 3}))
        assert decision.kind is RouteKind.EXACT
        assert decision.covered_datasets == frozenset({1, 2, 3})

    def test_superset_route(self):
        directory = MergeDirectory()
        directory.register(info([1, 2, 3, 4]))
        decision = choose_route(directory, frozenset({1, 2, 3}))
        assert decision.kind is RouteKind.SUPERSET
        # Even via a superset file, only the requested datasets are covered.
        assert decision.covered_datasets == frozenset({1, 2, 3})

    def test_subset_route(self):
        directory = MergeDirectory()
        directory.register(info([1, 2, 3]))
        decision = choose_route(directory, frozenset({1, 2, 3, 4, 5}))
        assert decision.kind is RouteKind.SUBSET
        assert decision.covered_datasets == frozenset({1, 2, 3})

    def test_none_route(self):
        decision = choose_route(MergeDirectory(), frozenset({1, 2}))
        assert decision.kind is RouteKind.NONE
        assert decision.merge_info is None
        assert decision.covered_datasets == frozenset()

    def test_exact_preferred_over_superset_and_subset(self):
        directory = MergeDirectory()
        directory.register(info([1, 2, 3]))
        directory.register(info([1, 2, 3, 4]))
        directory.register(info([1, 2]))
        decision = choose_route(directory, frozenset({1, 2, 3}))
        assert decision.kind is RouteKind.EXACT
        assert decision.merge_info.combination == frozenset({1, 2, 3})
