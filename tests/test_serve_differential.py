"""Differential oracle for the serving frontend: dynamically batched
service execution must be indistinguishable from sequential execution of
the same queries in arrival order.

The contract (documented in ``repro/serve/service.py``): sequence numbers
are assigned atomically with FIFO enqueue, the single dispatcher forms
batches of consecutive arrivals, and ``query_batch`` is
sequential-equivalent — so whatever interleaving the client threads and
the flush triggers produce, replaying the accepted queries sequentially
in ``seq`` order on a byte-identical fork must reproduce:

* byte-identical hits for every submission;
* identical post-run adaptive state (trees, merge directory, counters);
* byte-identical on-disk files.
"""

from __future__ import annotations

import threading

import pytest

from repro.bench.runner import generate_workload
from repro.core.config import OdysseyConfig
from repro.core.odyssey import SpaceOdyssey
from repro.data.suite import BenchmarkSuite

from tests.test_batch_differential import adaptive_state, disk_files, packed_hits


@pytest.fixture(scope="module")
def serve_suite(master_suite: BenchmarkSuite) -> BenchmarkSuite:
    return master_suite


def _serve_and_replay(
    suite: BenchmarkSuite,
    workloads,
    config: OdysseyConfig,
    *,
    max_batch: int,
    max_delay_ms: float,
    workers: int | None,
    pipeline: bool | None = None,
) -> None:
    """Serve per-client workloads concurrently, then replay in seq order."""
    served = SpaceOdyssey(suite.fork().catalog, config)
    submissions_per_client = [[] for _ in workloads]
    errors: list[BaseException] = []
    barrier = threading.Barrier(len(workloads))

    with served.serve(
        max_batch=max_batch,
        max_delay_ms=max_delay_ms,
        workers=workers,
        pipeline=pipeline,
    ) as service:

        def client(index: int) -> None:
            try:
                barrier.wait(timeout=60)
                for query in workloads[index]:
                    submission = service.submit(query.box, query.dataset_ids)
                    submissions_per_client[index].append(submission)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(index,))
            for index in range(len(workloads))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "client thread hung"
    assert not errors, f"clients raised: {errors!r}"

    everything = [s for per_client in submissions_per_client for s in per_client]
    seqs = sorted(s.seq for s in everything)
    assert seqs == list(range(len(everything))), "seq numbers not a dense range"
    assert service.stats.completed == len(everything)
    assert service.stats.failed == 0

    # The serial schedule the service promises to be equivalent to: all
    # accepted queries, in arrival (seq) order, on a byte-identical fork.
    replay = SpaceOdyssey(suite.fork().catalog, config)
    for submission in sorted(everything, key=lambda s: s.seq):
        expected = replay.query(submission.box, submission.dataset_ids)
        actual = submission.result(timeout=0)  # already resolved
        assert len(actual) == len(expected), f"hit count differs at seq {submission.seq}"
        assert packed_hits(served, actual) == packed_hits(
            replay, expected
        ), f"hit bytes differ at seq {submission.seq}"

    # Per-client order preservation: a client's submissions carry strictly
    # increasing sequence numbers (FIFO per client).
    for per_client in submissions_per_client:
        client_seqs = [s.seq for s in per_client]
        assert client_seqs == sorted(client_seqs)

    assert adaptive_state(served) == adaptive_state(replay)
    assert disk_files(served) == disk_files(replay)


def _split_workload(workload, n_clients: int):
    queries = list(workload)
    return [queries[index::n_clients] for index in range(n_clients)]


@pytest.mark.parametrize(
    "n_clients,max_batch,workers,pipeline",
    [(1, 4, None, None), (4, 8, 2, None), (4, 8, 2, False)],
)
def test_uniform_serving_matches_sequential_arrival_order(
    serve_suite, n_clients, max_batch, workers, pipeline
):
    """``pipeline=None`` runs the (default) pipelined dispatcher;
    ``pipeline=False`` keeps the classic one-batch-at-a-time path covered."""
    workload = generate_workload(
        serve_suite.universe,
        serve_suite.catalog.dataset_ids(),
        48,
        seed=401,
        volume_fraction=1e-3,
        datasets_per_query=2,
        ids_distribution="zipf",
    )
    _serve_and_replay(
        serve_suite,
        _split_workload(workload, n_clients),
        OdysseyConfig(),
        max_batch=max_batch,
        max_delay_ms=2.0,
        workers=workers,
        pipeline=pipeline,
    )


def test_merge_heavy_serving_matches_sequential_arrival_order(serve_suite):
    """Clustered repeats trigger merges/evictions; the adaptive state and
    on-disk bytes must still replay identically."""
    workload = generate_workload(
        serve_suite.universe,
        serve_suite.catalog.dataset_ids(),
        40,
        seed=402,
        volume_fraction=5e-3,
        datasets_per_query=3,
        ranges="clustered",
        ids_distribution="heavy_hitter",
    )
    config = OdysseyConfig(
        merge_threshold=1,
        min_merge_combination=2,
        merge_partition_min_hits=1,
        merge_only_converged=False,
        merge_space_budget_pages=6,
    )
    _serve_and_replay(
        serve_suite,
        _split_workload(workload, 3),
        config,
        max_batch=8,
        max_delay_ms=1.0,
        workers=2,
    )


def test_concurrent_in_flight_batches_match_sequential_arrival_order(serve_suite):
    """The pipelined dispatcher keeps two batches in flight — one in its
    lock-free read phase while the writer thread commits the previous one
    — and per-client results must still equal sequential arrival-order
    replay.  Tiny batches with no coalescing delay maximise the number of
    overlapping batch pairs; the merge-heavy config makes the overlapped
    read phases actually cross refinement overwrites and merge evictions
    (the MVCC overlay at work), not just quiescent state."""
    workload = generate_workload(
        serve_suite.universe,
        serve_suite.catalog.dataset_ids(),
        60,
        seed=403,
        volume_fraction=5e-3,
        datasets_per_query=2,
        ranges="clustered",
        ids_distribution="heavy_hitter",
    )
    config = OdysseyConfig(
        refinement_threshold=2.0,
        merge_threshold=1,
        min_merge_combination=2,
        merge_partition_min_hits=1,
        merge_only_converged=False,
        merge_space_budget_pages=6,
    )
    _serve_and_replay(
        serve_suite,
        _split_workload(workload, 4),
        config,
        max_batch=3,
        max_delay_ms=0.0,
        workers=None,
        pipeline=True,
    )
