"""Unit tests for the bulk-loaded STR R-tree."""

from __future__ import annotations

import pytest

from repro.baselines.interface import result_keys
from repro.baselines.rtree import NodeEntry, STRRTree, node_entry_codec
from repro.geometry.box import Box

from tests.conftest import make_dataset


@pytest.fixture
def dataset(disk, universe):
    return make_dataset(disk, universe, dataset_id=0, count=800, seed=13)


class TestNodeEntryCodec:
    def test_roundtrip(self):
        codec = node_entry_codec(3)
        entry = NodeEntry(child_page=42, child_is_leaf=True, box=Box((0.0, 1.0, 2.0), (3.0, 4.0, 5.0)))
        assert codec.unpack(codec.pack(entry)) == entry

    def test_internal_entry_roundtrip(self):
        codec = node_entry_codec(2)
        entry = NodeEntry(child_page=7, child_is_leaf=False, box=Box((0.0, 0.0), (1.0, 1.0)))
        decoded = codec.unpack(codec.pack(entry))
        assert decoded.child_is_leaf is False


class TestBuild:
    def test_build_structure(self, disk, universe, dataset):
        tree = STRRTree(disk, "r", universe)
        tree.build([dataset])
        assert tree.is_built
        assert tree.n_objects == dataset.n_objects
        assert tree.height >= 2  # 800 objects / 63 per leaf -> needs internal level
        assert tree.leaf_capacity == 63
        assert tree.fanout == 63

    def test_build_twice_fails(self, disk, universe, dataset):
        tree = STRRTree(disk, "r", universe)
        tree.build([dataset])
        with pytest.raises(RuntimeError):
            tree.build([dataset])

    def test_query_before_build_fails(self, disk, universe):
        tree = STRRTree(disk, "r", universe)
        with pytest.raises(RuntimeError):
            tree.query(Box.cube((1.0, 1.0, 1.0), 1.0))

    def test_empty_build(self, disk, universe):
        from repro.data.dataset import Dataset

        empty = Dataset.create(disk, 0, "empty_r", [], universe)
        tree = STRRTree(disk, "r", universe)
        tree.build([empty])
        assert tree.query(universe) == []

    def test_small_memory_budget_charges_more_io(self, universe):
        from repro.storage.cost_model import DiskModel
        from repro.storage.disk import Disk

        results = {}
        for memory_pages in (4, 4096):
            disk = Disk(model=DiskModel(seek_time_s=0), buffer_pages=0)
            dataset = make_dataset(disk, universe, count=2000, seed=3)
            before = disk.stats_snapshot()
            tree = STRRTree(disk, "r", universe, build_memory_pages=memory_pages)
            tree.build([dataset])
            results[memory_pages] = disk.stats.delta_since(before).io_seconds
        assert results[4] > results[4096]


class TestQuery:
    def test_query_matches_bruteforce(self, disk, universe, dataset):
        tree = STRRTree(disk, "r", universe)
        tree.build([dataset])
        raw = dataset.read_all()
        for center, side in [((50.0, 50.0, 50.0), 25.0), ((20.0, 80.0, 40.0), 10.0), ((5.0, 5.0, 5.0), 3.0)]:
            query = Box.cube(center, side)
            expected = {o.key() for o in raw if o.intersects(query)}
            assert result_keys(tree.query(query)) == expected

    def test_query_covering_universe(self, disk, universe, dataset):
        tree = STRRTree(disk, "r", universe)
        tree.build([dataset])
        assert len(tree.query(universe)) == dataset.n_objects

    def test_query_empty_region(self, disk, universe, dataset):
        tree = STRRTree(disk, "r", universe)
        tree.build([dataset])
        # The universe is [0, 100]^3, so a far-away degenerate query is legal
        # only inside the coordinate space; use a thin slab between objects.
        result = tree.query(Box((0.0, 0.0, 0.0), (0.0001, 0.0001, 0.0001)))
        raw = dataset.read_all()
        expected = {o.key() for o in raw if o.intersects(Box((0.0, 0.0, 0.0), (0.0001, 0.0001, 0.0001)))}
        assert result_keys(result) == expected

    def test_query_reads_node_pages(self, disk, universe, dataset):
        tree = STRRTree(disk, "r", universe)
        tree.build([dataset])
        disk.clear_cache()
        disk.reset_head()
        before = disk.stats_snapshot()
        tree.query(Box.cube((50.0, 50.0, 50.0), 10.0))
        delta = disk.stats.delta_since(before)
        assert delta.pages_read >= 1  # at least the root

    def test_drop(self, disk, universe, dataset):
        tree = STRRTree(disk, "r", universe)
        tree.build([dataset])
        tree.drop()
        assert not tree.is_built
