"""Unit tests for the workload generators (queries, ranges, combinations)."""

from __future__ import annotations

import math
from collections import Counter

import numpy as np
import pytest

from repro.geometry.box import Box
from repro.workload.builder import WorkloadBuilder
from repro.workload.combinations import CombinationDistribution, CombinationGenerator
from repro.workload.query import RangeQuery
from repro.workload.ranges import ClusteredRangeGenerator, UniformRangeGenerator


@pytest.fixture
def universe() -> Box:
    return Box((0.0, 0.0, 0.0), (1000.0, 1000.0, 1000.0))


class TestRangeQuery:
    def test_normalises_dataset_ids(self):
        query = RangeQuery(qid=0, box=Box.unit(3), dataset_ids=(3, 1, 3, 2))
        assert query.dataset_ids == (1, 2, 3)
        assert query.combination == frozenset({1, 2, 3})
        assert query.n_datasets == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            RangeQuery(qid=-1, box=Box.unit(3), dataset_ids=(1,))
        with pytest.raises(ValueError):
            RangeQuery(qid=0, box=Box.unit(3), dataset_ids=())


class TestRangeGenerators:
    def test_uniform_ranges_inside_universe(self, universe):
        generator = UniformRangeGenerator(universe, volume_fraction=1e-4, seed=1)
        for box in generator.ranges(50):
            assert universe.contains_box(box)
            assert box.volume() <= universe.volume() * 1e-4 * 1.01

    def test_fixed_volume(self, universe):
        generator = UniformRangeGenerator(universe, volume_fraction=1e-4, seed=1)
        interior = [
            box
            for box in generator.ranges(200)
            if all(
                lo > u_lo and hi < u_hi
                for lo, hi, u_lo, u_hi in zip(box.lo, box.hi, universe.lo, universe.hi)
            )
        ]
        assert interior, "expected some queries away from the boundary"
        for box in interior:
            assert box.volume() == pytest.approx(universe.volume() * 1e-4, rel=1e-6)

    def test_clustered_ranges_concentrate(self, universe):
        generator = ClusteredRangeGenerator(
            universe, volume_fraction=1e-4, seed=2, n_cluster_centers=3
        )
        centers = generator.cluster_centers
        near = 0
        for box in generator.ranges(200):
            distances = np.linalg.norm(centers - np.asarray(box.center), axis=1)
            if distances.min() < 0.1 * 1000:
                near += 1
        assert near / 200 > 0.8

    def test_explicit_cluster_centers_subsampled(self, universe):
        provided = np.asarray([[100.0, 100.0, 100.0], [900.0, 900.0, 900.0], [500.0, 500.0, 500.0]])
        generator = ClusteredRangeGenerator(
            universe,
            volume_fraction=1e-4,
            seed=3,
            n_cluster_centers=2,
            cluster_centers=provided,
        )
        assert generator.cluster_centers.shape == (2, 3)

    def test_validation(self, universe):
        with pytest.raises(ValueError):
            UniformRangeGenerator(universe, volume_fraction=0, seed=1)
        with pytest.raises(ValueError):
            ClusteredRangeGenerator(universe, 1e-4, seed=1, n_cluster_centers=0)
        with pytest.raises(ValueError):
            ClusteredRangeGenerator(universe, 1e-4, seed=1, sigma_query_sides=0)
        with pytest.raises(ValueError):
            ClusteredRangeGenerator(
                universe, 1e-4, seed=1, cluster_centers=[[1.0, 2.0]]
            )

    def test_reproducible(self, universe):
        a = UniformRangeGenerator(universe, 1e-4, seed=7)
        b = UniformRangeGenerator(universe, 1e-4, seed=7)
        assert list(a.ranges(10)) == list(b.ranges(10))


class TestCombinationGenerator:
    IDS = list(range(10))

    def test_distribution_parsing(self):
        assert CombinationDistribution.from_name("Heavy-Hitter") is CombinationDistribution.HEAVY_HITTER
        assert CombinationDistribution.from_name("zipf") is CombinationDistribution.ZIPF
        with pytest.raises(ValueError):
            CombinationDistribution.from_name("nope")

    def test_combination_space_size(self):
        generator = CombinationGenerator(self.IDS, 5, "uniform", seed=1)
        assert generator.n_possible_combinations == math.comb(10, 5)

    def test_samples_have_requested_size(self):
        generator = CombinationGenerator(self.IDS, 3, "zipf", seed=1)
        for combo in generator.sample_many(100):
            assert len(combo) == 3
            assert set(combo) <= set(self.IDS)

    def test_heavy_hitter_share(self):
        generator = CombinationGenerator(self.IDS, 5, "heavy_hitter", seed=2)
        samples = generator.sample_many(2000)
        counts = Counter(samples)
        top_share = counts.most_common(1)[0][1] / len(samples)
        assert 0.4 < top_share < 0.6  # 50% +/- sampling noise

    def test_zipf_is_heavily_skewed(self):
        generator = CombinationGenerator(self.IDS, 5, "zipf", seed=3)
        samples = generator.sample_many(2000)
        counts = Counter(samples)
        top_share = counts.most_common(1)[0][1] / len(samples)
        assert top_share > 0.45  # 1/zeta(2) ~ 0.61 expected

    def test_self_similar_80_20(self):
        generator = CombinationGenerator(self.IDS, 5, "self_similar", seed=4)
        probabilities = generator.probabilities
        count = len(probabilities)
        top_20_percent = int(count * 0.2)
        assert probabilities[:top_20_percent].sum() == pytest.approx(0.8, abs=0.05)

    def test_uniform_is_flat(self):
        generator = CombinationGenerator(self.IDS, 2, "uniform", seed=5)
        probabilities = generator.probabilities
        assert probabilities.max() == pytest.approx(probabilities.min())

    def test_probabilities_sum_to_one(self):
        for name in ("uniform", "zipf", "self_similar", "heavy_hitter"):
            generator = CombinationGenerator(self.IDS, 4, name, seed=6)
            assert generator.probabilities.sum() == pytest.approx(1.0)

    def test_hot_combination_is_most_sampled(self):
        generator = CombinationGenerator(self.IDS, 5, "zipf", seed=7)
        samples = generator.sample_many(3000)
        most_common = Counter(samples).most_common(1)[0][0]
        assert most_common == generator.hot_combination

    def test_single_dataset_per_query(self):
        generator = CombinationGenerator(self.IDS, 1, "heavy_hitter", seed=8)
        assert all(len(c) == 1 for c in generator.sample_many(50))

    def test_validation(self):
        with pytest.raises(ValueError):
            CombinationGenerator(self.IDS, 0, "uniform", seed=1)
        with pytest.raises(ValueError):
            CombinationGenerator(self.IDS, 11, "uniform", seed=1)
        with pytest.raises(ValueError):
            CombinationGenerator([1, 1, 2], 1, "uniform", seed=1)
        with pytest.raises(ValueError):
            CombinationGenerator(self.IDS, 2, "uniform", seed=1, heavy_hitter_share=1.5)
        with pytest.raises(ValueError):
            CombinationGenerator(self.IDS, 2, "uniform", seed=1, zipf_exponent=0)


class TestWorkloadBuilder:
    def test_build_workload(self, universe):
        ranges = UniformRangeGenerator(universe, 1e-4, seed=1)
        combos = CombinationGenerator(list(range(6)), 3, "zipf", seed=2)
        workload = WorkloadBuilder(ranges, combos).build(50, description="test")
        assert len(workload) == 50
        assert workload.description == "test"
        assert workload.metadata["combination_distribution"] == "zipf"
        assert workload.n_combinations_queried() <= math.comb(6, 3)
        assert workload.datasets_touched() <= set(range(6))
        assert all(q.qid == i for i, q in enumerate(workload))

    def test_queries_for_combination(self, universe):
        ranges = UniformRangeGenerator(universe, 1e-4, seed=1)
        combos = CombinationGenerator(list(range(5)), 2, "heavy_hitter", seed=3)
        workload = WorkloadBuilder(ranges, combos).build(100)
        hot = combos.hot_combination
        hot_queries = workload.queries_for_combination(hot)
        assert len(hot_queries) > 30
        assert all(q.combination == frozenset(hot) for q in hot_queries)

    def test_zero_queries_rejected(self, universe):
        ranges = UniformRangeGenerator(universe, 1e-4, seed=1)
        combos = CombinationGenerator(list(range(4)), 2, "uniform", seed=4)
        with pytest.raises(ValueError):
            WorkloadBuilder(ranges, combos).build(0)
