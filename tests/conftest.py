"""Shared fixtures for the test suite.

The expensive fixture is the synthetic multi-dataset suite; it is built once
per session and *forked* (cheap copy of the in-memory page store) for every
test that mutates on-disk state, so tests stay independent without paying
for data generation repeatedly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset, DatasetCatalog
from repro.data.spatial_object import SpatialObject
from repro.data.suite import BenchmarkSuite, build_benchmark_suite
from repro.geometry.box import Box
from repro.storage.cost_model import DiskModel
from repro.storage.disk import Disk


@pytest.fixture
def model() -> DiskModel:
    """A disk model with easy-to-reason-about numbers."""
    return DiskModel(seek_time_s=1e-3, transfer_rate_bytes_per_s=4096 * 1000)


@pytest.fixture
def disk(model: DiskModel) -> Disk:
    """A fresh in-memory simulated disk without caching."""
    return Disk(model=model, buffer_pages=0)


@pytest.fixture
def cached_disk(model: DiskModel) -> Disk:
    """A fresh in-memory simulated disk with a small buffer pool."""
    return Disk(model=model, buffer_pages=64)


@pytest.fixture
def universe() -> Box:
    """A cubic 3-D universe used by most index tests."""
    return Box((0.0, 0.0, 0.0), (100.0, 100.0, 100.0))


def make_object(
    oid: int,
    dataset_id: int,
    center: tuple[float, ...],
    extent: float = 1.0,
) -> SpatialObject:
    """A small helper to build objects at explicit positions."""
    return SpatialObject(
        oid=oid, dataset_id=dataset_id, box=Box.cube(center, extent)
    )


def make_random_objects(
    universe: Box,
    count: int,
    dataset_id: int = 0,
    seed: int = 0,
    extent_fraction: float = 0.01,
) -> list[SpatialObject]:
    """Uniformly random small objects inside a universe."""
    rng = np.random.default_rng(seed)
    objects = []
    extents = [side * extent_fraction for side in universe.extents]
    for oid in range(count):
        center = tuple(
            float(rng.uniform(lo, hi)) for lo, hi in zip(universe.lo, universe.hi)
        )
        box = Box.from_center(center, extents).clamp(universe)
        objects.append(SpatialObject(oid=oid, dataset_id=dataset_id, box=box))
    return objects


def make_dataset(
    disk: Disk,
    universe: Box,
    dataset_id: int = 0,
    count: int = 300,
    seed: int = 0,
    name: str | None = None,
) -> Dataset:
    """A raw dataset of uniformly random objects on the given disk."""
    objects = make_random_objects(universe, count, dataset_id=dataset_id, seed=seed)
    return Dataset.create(
        disk=disk,
        dataset_id=dataset_id,
        name=name or f"test_{dataset_id}",
        objects=objects,
        universe=universe,
    )


def make_catalog(
    disk: Disk, universe: Box, n_datasets: int = 3, count: int = 300, seed: int = 0
) -> DatasetCatalog:
    """A catalog of several uniformly random datasets."""
    datasets = [
        make_dataset(
            disk, universe, dataset_id=i, count=count, seed=seed + i, name=f"cat_{i}"
        )
        for i in range(n_datasets)
    ]
    return DatasetCatalog(datasets)


@pytest.fixture(scope="session")
def master_suite() -> BenchmarkSuite:
    """The session-wide synthetic neuroscience suite (never mutated directly)."""
    return build_benchmark_suite(
        n_datasets=4,
        objects_per_dataset=900,
        seed=11,
        buffer_pages=0,
        model=DiskModel(seek_time_s=1e-4),
    )


@pytest.fixture
def suite(master_suite: BenchmarkSuite) -> BenchmarkSuite:
    """A fresh fork of the session suite for tests that mutate disk state."""
    return master_suite.fork()
