"""Tests for the report formatting helpers (text tables and JSON dumps)."""

from __future__ import annotations

import json

import pytest

from repro.bench import reporting
from repro.bench.experiments import (
    Figure4Cell,
    Figure4Point,
    Figure4Result,
    Figure5Result,
    Figure5Series,
    Figure5cResult,
)


@pytest.fixture
def figure4_result() -> Figure4Result:
    result = Figure4Result(
        ids_distribution="zipf",
        ranges="clustered",
        scale="small",
        n_queries=100,
        approaches=("Grid-1fE", "Odyssey"),
    )
    point = Figure4Point(datasets_queried=3, combinations_queried=17)
    point.cells["Grid-1fE"] = Figure4Cell("Grid-1fE", indexing_seconds=1.5, querying_seconds=0.5)
    point.cells["Odyssey"] = Figure4Cell("Odyssey", indexing_seconds=0.0, querying_seconds=0.9)
    point.odyssey_queries_within_grid_build = 42
    result.points.append(point)
    return result


@pytest.fixture
def figure5_result() -> Figure5Result:
    result = Figure5Result(
        label="fig5a",
        ranges="clustered",
        ids_distribution="self_similar",
        datasets_per_query=5,
        scale="small",
    )
    result.series["Odyssey"] = Figure5Series(
        approach="Odyssey",
        indexing_seconds=0.0,
        per_query_seconds=[0.5, 0.1, 0.05, 0.04, 0.04],
    )
    return result


class TestFigure4Formatting:
    def test_table_contains_all_sections(self, figure4_result):
        table = reporting.format_figure4_table(figure4_result)
        assert "[indexing]" in table
        assert "[querying]" in table
        assert "[total]" in table
        assert "3 (17)" in table
        assert "42 of 100" in table

    def test_cell_totals(self):
        cell = Figure4Cell("x", indexing_seconds=1.0, querying_seconds=2.5)
        assert cell.total_seconds == pytest.approx(3.5)

    def test_point_lookup_helpers(self, figure4_result):
        point = figure4_result.point(3)
        assert point.total("Grid-1fE") == pytest.approx(2.0)
        assert point.total("Odyssey") == pytest.approx(0.9)


class TestFigure5Formatting:
    def test_summary_lists_series(self, figure5_result):
        text = reporting.format_figure5_summary(figure5_result)
        assert "Odyssey" in text
        assert "fig5a" in text

    def test_series_statistics(self, figure5_result):
        series = figure5_result.get("Odyssey")
        assert series.total_seconds == pytest.approx(0.73)
        assert series.tail_mean(fraction=0.4) == pytest.approx(0.04)

    def test_figure5c_summary_and_gains(self):
        result = Figure5cResult(
            scale="small",
            popular_combination=(0, 1, 2),
            popular_query_count=10,
            with_merging=[0.8, 0.7],
            without_merging=[1.0, 1.0],
            merges_performed=2,
            merge_files=1,
        )
        assert result.average_gain_percent == pytest.approx(25.0)
        assert result.total_gain_percent == pytest.approx(25.0)
        text = reporting.format_figure5c_summary(result)
        assert "25.0%" in text

    def test_figure5c_empty_gain_is_zero(self):
        result = Figure5cResult(
            scale="small", popular_combination=(0, 1, 2), popular_query_count=0
        )
        assert result.average_gain_percent == 0.0
        assert result.total_gain_percent == 0.0


class TestJsonConversion:
    def test_nested_dataclasses_and_sets(self, figure4_result):
        payload = reporting.to_jsonable({"result": figure4_result, "ids": frozenset({1, 2})})
        text = json.dumps(payload)
        decoded = json.loads(text)
        assert decoded["result"]["ids_distribution"] == "zipf"
        assert sorted(decoded["ids"]) == [1, 2]
